"""Tests for critical service localization and deadline propagation."""

import pytest

from repro.core import CriticalServiceLocator, DeadlinePropagator
from repro.core.deadline import propagate_for_trace
from repro.tracing import Span


def chain_trace(trace_id, timings):
    """Build a linear trace. timings: [(service, arrival, departure)]."""
    parent = None
    root = None
    for service, arrival, departure in timings:
        span = Span(trace_id, service, "default", arrival, parent=parent)
        span.started = arrival
        span.departure = departure
        if root is None:
            root = span
        parent = span
    return root


def make_traces(cart_durations):
    """front-end -> cart traces where cart's self-time varies and the
    end-to-end time varies with it (cart drives the variation)."""
    traces = []
    for index, cart_time in enumerate(cart_durations):
        fe_self = 2.0
        total = fe_self + cart_time
        traces.append(chain_trace(index, [
            ("front-end", 0.0, total),
            ("cart", 1.0, 1.0 + cart_time),
        ]))
    return traces


class TestLocator:
    def test_empty_window(self):
        locator = CriticalServiceLocator()
        report = locator.locate([], {"cart": 0.9})
        assert report.critical_service is None

    def test_correlated_service_wins(self):
        traces = make_traces([5.0, 10.0, 20.0, 40.0])
        locator = CriticalServiceLocator()
        report = locator.locate(traces, {"front-end": 0.2, "cart": 0.5})
        assert report.critical_service == "cart"
        assert report.correlations["cart"] > 0.99

    def test_utilization_candidates_preferred(self):
        # Both services correlate, but only cart is near capacity.
        traces = make_traces([5.0, 10.0, 20.0, 40.0])
        locator = CriticalServiceLocator(utilization_threshold=0.7)
        report = locator.locate(
            traces, {"front-end": 0.1, "cart": 0.95})
        assert report.critical_service == "cart"
        assert report.candidates == ("cart",)

    def test_excluded_service_never_nominated(self):
        traces = make_traces([5.0, 10.0, 20.0])
        locator = CriticalServiceLocator(exclude=("cart",))
        report = locator.locate(traces, {})
        assert report.critical_service != "cart"

    def test_dominant_path_frequencies(self):
        traces = make_traces([5.0, 10.0])
        other = chain_trace(99, [("front-end", 0.0, 30.0),
                                 ("catalogue", 1.0, 29.0)])
        locator = CriticalServiceLocator()
        report = locator.locate(traces + [other], {})
        assert report.dominant_path == ("front-end", "cart")
        assert report.path_frequencies[("front-end", "cart")] == 2
        assert report.path_frequencies[("front-end", "catalogue")] == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CriticalServiceLocator(utilization_threshold=0.0)
        with pytest.raises(ValueError):
            CriticalServiceLocator(utilization_threshold=1.5)


class TestDeadlinePropagation:
    def test_single_trace_subtracts_upstream(self):
        # front-end self time = 2 (10 total - 8 cart), SLA 20 ->
        # cart threshold 18.
        root = chain_trace(1, [("front-end", 0.0, 10.0),
                               ("cart", 1.0, 9.0)])
        assert propagate_for_trace(root, "cart", 20.0) == pytest.approx(
            18.0)

    def test_service_not_on_path_returns_none(self):
        root = chain_trace(1, [("front-end", 0.0, 10.0),
                               ("cart", 1.0, 9.0)])
        assert propagate_for_trace(root, "catalogue", 20.0) is None

    def test_root_service_keeps_full_sla(self):
        root = chain_trace(1, [("front-end", 0.0, 10.0),
                               ("cart", 1.0, 9.0)])
        assert propagate_for_trace(root, "front-end", 20.0) == \
            pytest.approx(20.0)

    def test_window_mean(self):
        traces = [
            chain_trace(1, [("front-end", 0.0, 10.0), ("cart", 1.0, 9.0)]),
            chain_trace(2, [("front-end", 0.0, 12.0), ("cart", 2.0, 8.0)]),
        ]
        # Upstream self times: 2 and 6 -> mean 4 -> threshold 16.
        propagator = DeadlinePropagator(sla=20.0)
        deadline = propagator.propagate(traces, "cart")
        assert deadline.threshold == pytest.approx(16.0)
        assert deadline.upstream_budget == pytest.approx(4.0)
        assert deadline.samples == 2

    def test_no_applicable_traces_full_sla(self):
        propagator = DeadlinePropagator(sla=20.0)
        deadline = propagator.propagate([], "cart")
        assert deadline.threshold == 20.0
        assert deadline.samples == 0

    def test_floor_prevents_starvation(self):
        # Upstream eats nearly the whole SLA: threshold clamps at floor.
        root = chain_trace(1, [("front-end", 0.0, 100.0),
                               ("cart", 98.0, 99.0)])
        propagator = DeadlinePropagator(sla=20.0, floor_fraction=0.1)
        deadline = propagator.propagate([root], "cart")
        assert deadline.threshold == pytest.approx(2.0)

    def test_paper_example(self):
        """§3.2 worked example: SLA 150 ms, front-end processing 10 ms
        -> Cart threshold 140 ms."""
        root = chain_trace(1, [("front-end", 0.000, 0.100),
                               ("cart", 0.005, 0.095)])
        # front-end self time = 100 - 90 = 10 ms.
        propagator = DeadlinePropagator(sla=0.150)
        deadline = propagator.propagate([root], "cart")
        assert deadline.threshold == pytest.approx(0.140)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DeadlinePropagator(sla=0.0)
        with pytest.raises(ValueError):
            DeadlinePropagator(sla=1.0, floor_fraction=1.0)
