"""Unit tests for the DES kernel: environment, events, processes."""

import pytest

from repro.sim import (
    Environment,
    EventAlreadyTriggered,
    Interrupt,
    SimulationError,
    UnhandledProcessError,
)


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=12.5).now == 12.5


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(3.0)
        log.append(env.now)
        yield env.timeout(2.0)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [3.0, 5.0]


def test_timeout_carries_value():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10.0)

    env.process(proc(env))
    env.run(until=25.0)
    assert env.now == 25.0


def test_run_until_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_events_process_in_time_order():
    env = Environment()
    order = []

    def make(delay, tag):
        def proc(env):
            yield env.timeout(delay)
            order.append(tag)
        return proc

    for delay, tag in [(3, "c"), (1, "a"), (2, "b")]:
        env.process(make(delay, tag)(env))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_within_priority():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ["first", "second", "third"]:
        env.process(proc(env, tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_process_returns_value_to_waiter():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(2.0)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        results.append((env.now, value))

    env.process(parent(env))
    env.run()
    assert results == [(2.0, 42)]


def test_run_until_event_returns_its_value():
    env = Environment()

    def child(env):
        yield env.timeout(4.0)
        return "payload"

    proc = env.process(child(env))
    assert env.run(until=proc) == "payload"
    assert env.now == 4.0


def test_event_succeed_twice_raises():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        event.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_failed_event_raises_in_waiting_process():
    env = Environment()
    caught = []

    def proc(env):
        event = env.event()
        env.call_at(1.0, lambda: event.fail(ValueError("boom")))
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    env.run()
    assert caught == ["boom"]


def test_crashing_process_without_waiter_raises_unhandled():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise RuntimeError("crash")

    env.process(proc(env))
    with pytest.raises(UnhandledProcessError):
        env.run()


def test_crashing_process_with_waiter_propagates_to_waiter():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(1.0)
        raise RuntimeError("child crash")

    def parent(env):
        try:
            yield env.process(child(env))
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["child crash"]


def test_yield_non_event_raises():
    env = Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()


def test_interrupt_waiting_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
            log.append("finished")
        except Interrupt as interrupt:
            log.append(("interrupted", env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(5.0)
        victim.interrupt(cause="state change")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [("interrupted", 5.0, "state change")]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_all_of_waits_for_every_event():
    env = Environment()
    done = []

    def proc(env):
        events = [env.timeout(d, value=d) for d in (1.0, 3.0, 2.0)]
        results = yield env.all_of(events)
        done.append((env.now, sorted(results.values())))

    env.process(proc(env))
    env.run()
    assert done == [(3.0, [1.0, 2.0, 3.0])]


def test_any_of_fires_on_first_event():
    env = Environment()
    done = []

    def proc(env):
        events = [env.timeout(d, value=d) for d in (5.0, 2.0, 9.0)]
        results = yield env.any_of(events)
        done.append((env.now, list(results.values())))

    env.process(proc(env))
    env.run()
    assert done == [(2.0, [2.0])]


def test_call_at_runs_callback_at_absolute_time():
    env = Environment()
    hits = []
    env.call_at(7.5, lambda: hits.append(env.now))
    env.run()
    assert hits == [7.5]


def test_call_at_past_raises():
    env = Environment(initial_time=3.0)
    with pytest.raises(ValueError):
        env.call_at(1.0, lambda: None)


def test_active_process_identity():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1.0)
        seen.append(env.active_process)

    handle = env.process(proc(env))
    env.run()
    assert seen == [handle, handle]
    assert env.active_process is None


def test_nested_processes_three_deep():
    env = Environment()

    def leaf(env):
        yield env.timeout(1.0)
        return 1

    def middle(env):
        value = yield env.process(leaf(env))
        yield env.timeout(1.0)
        return value + 1

    def root(env):
        value = yield env.process(middle(env))
        return value + 1

    proc = env.process(root(env))
    assert env.run(until=proc) == 3
    assert env.now == 2.0


def test_waiting_on_already_processed_event():
    env = Environment()
    results = []

    def proc(env):
        event = env.event()
        event.succeed("early")
        yield env.timeout(1.0)  # let the event process first
        value = yield event     # now it is already processed
        results.append(value)

    env.process(proc(env))
    env.run()
    assert results == ["early"]
