"""Integration tests: full stack (topology + workload + controllers).

These run small but complete closed-loop experiments — the same wiring
the benchmark harness uses — and assert the paper's qualitative claims
at miniature scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_scenario,
    social_network_drift_scenario,
    sock_shop_cart_scenario,
)
from repro.workloads import WorkloadTrace, big_spike, steep_tri_phase

pytestmark = pytest.mark.integration


def flat_trace(users, duration):
    return WorkloadTrace("flat", duration, users, users, lambda u: 1.0)


class TestSockShopScenario:
    def test_runs_and_collects_series(self):
        trace = flat_trace(150, 30.0)
        scenario = sock_shop_cart_scenario(trace=trace, controller="sora",
                                           autoscaler="firm")
        result = run_scenario(scenario, duration=30.0)
        assert result.response_times.size > 1000
        assert "cart.threads.allocation" in result.samples
        assert result.goodput() > 0
        assert result.throughput() >= result.goodput()

    def test_sora_beats_no_adaptation_under_burst(self):
        """Miniature Table 2: Sora+FIRM must beat FIRM alone on a trace
        whose burst exceeds the initial thread allocation."""
        results = {}
        for controller in ("none", "sora"):
            trace = steep_tri_phase(duration=150.0, peak_users=420,
                                    min_users=80)
            scenario = sock_shop_cart_scenario(
                trace=trace, controller=controller, autoscaler="firm")
            results[controller] = run_scenario(scenario, duration=150.0)
        assert results["sora"].goodput() > results["none"].goodput()

    def test_deterministic_given_seed(self):
        outputs = []
        for _ in range(2):
            trace = big_spike(duration=40.0, peak_users=200, min_users=50)
            scenario = sock_shop_cart_scenario(
                trace=trace, controller="sora", autoscaler="firm", seed=9)
            result = run_scenario(scenario, duration=40.0)
            outputs.append((result.response_times.sum(),
                            result.response_times.size))
        assert outputs[0] == outputs[1]

    def test_seed_changes_outcome(self):
        outputs = []
        for seed in (1, 2):
            trace = big_spike(duration=30.0, peak_users=150, min_users=50)
            scenario = sock_shop_cart_scenario(
                trace=trace, controller="none", autoscaler="none",
                seed=seed)
            result = run_scenario(scenario, duration=30.0)
            outputs.append(result.response_times.sum())
        assert outputs[0] != outputs[1]

    def test_firm_scales_cart_only(self):
        trace = flat_trace(430, 90.0)
        scenario = sock_shop_cart_scenario(trace=trace, controller="none",
                                           autoscaler="firm")
        result = run_scenario(scenario, duration=90.0)
        assert result.scale_events, "overload must trigger FIRM"
        assert all(e.service == "cart" for e in result.scale_events)
        assert all(e.kind == "vertical" for e in result.scale_events)

    def test_conscale_adapts_but_ignores_latency(self):
        trace = flat_trace(420, 90.0)
        scenario = sock_shop_cart_scenario(
            trace=trace, controller="conscale", autoscaler="vpa")
        result = run_scenario(scenario, duration=90.0)
        # ConScale adapts (throughput knee) ...
        assert result.adaptation_actions
        # ... and its estimates carry no latency threshold.
        assert all(a.threshold == float("inf")
                   for a in result.adaptation_actions)


class TestSocialNetworkScenario:
    def test_drift_scenario_runs(self):
        trace = flat_trace(300, 60.0)
        scenario = social_network_drift_scenario(
            trace=trace, controller="sora", autoscaler="hpa",
            drift_at=30.0)
        result = run_scenario(scenario, duration=60.0)
        assert result.response_times.size > 5000
        key = "home-timeline.poststorage->post-storage.allocation"
        assert key in result.samples

    def test_sora_improves_goodput_after_drift(self):
        results = {}
        for controller in ("none", "sora"):
            trace = flat_trace(450, 120.0)
            scenario = social_network_drift_scenario(
                trace=trace, controller=controller, autoscaler="hpa",
                drift_at=40.0)
            results[controller] = run_scenario(scenario, duration=120.0)
        assert results["sora"].goodput() > results["none"].goodput()

    def test_heavy_phase_slower_than_light(self):
        trace = flat_trace(300, 80.0)
        scenario = social_network_drift_scenario(
            trace=trace, controller="none", autoscaler="none",
            drift_at=40.0)
        result = run_scenario(scenario, duration=80.0)
        light = result.response_times[result.completion_times < 40.0]
        heavy = result.response_times[result.completion_times > 45.0]
        assert np.percentile(heavy, 95) > 2 * np.percentile(light, 95)


class TestResultApi:
    def test_summary_and_series_helpers(self):
        trace = flat_trace(100, 20.0)
        scenario = sock_shop_cart_scenario(trace=trace, controller="none",
                                           autoscaler="none")
        result = run_scenario(scenario, duration=20.0)
        row = result.summary_row()
        assert set(row) == {"requests", "throughput_rps", "goodput_rps",
                            "p50_ms", "p95_ms", "p99_ms"}
        times, gp = result.goodput_series(interval=5.0)
        assert len(times) == 4
        times, rt = result.response_time_series(interval=5.0)
        assert len(rt) == 4
        with pytest.raises(KeyError):
            result.series("bogus")

    def test_goodput_threshold_monotone(self):
        trace = flat_trace(100, 20.0)
        scenario = sock_shop_cart_scenario(trace=trace, controller="none",
                                           autoscaler="none")
        result = run_scenario(scenario, duration=20.0)
        assert result.goodput(0.05) <= result.goodput(0.5)
