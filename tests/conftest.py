"""Shared pytest configuration, fixtures, and topology builders."""

import pytest

from repro.app import Application, Call, Compute, Microservice, Operation
from repro.sim import Constant, Environment, RandomStreams


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "integration: full-stack closed-loop experiments (slower)")
    config.addinivalue_line(
        "markers",
        "slow: long-running checks (full conformance family, benchmark "
        "smoke); deselected by default, run with -m slow")
    config.addinivalue_line(
        "markers",
        "conformance: theory-conformance harness runs")


def build_chain(env, streams, depth, demand_ms, threads, cores=2.0):
    """A linear chain of ``depth`` services with given per-hop demand.

    The entry service gets a thread pool of ``threads`` (``None`` =
    unlimited async admission); downstream services are async.
    """
    app = Application(env)
    names = [f"svc{i}" for i in range(depth)]
    for index, name in enumerate(names):
        pool = threads if index == 0 else None
        service = Microservice(env, name, streams.stream(name),
                               cores=cores, thread_pool_size=pool)
        steps = [Compute(Constant(demand_ms / 1000.0))]
        if index + 1 < depth:
            steps.append(Call(names[index + 1]))
        service.add_operation(Operation("default", steps))
        app.add_service(service)
    app.set_entrypoint("go", names[0], "default")
    return app


@pytest.fixture
def env():
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def streams():
    """Deterministically seeded random streams (seed 0)."""
    return RandomStreams(0)


@pytest.fixture
def make_chain(env, streams):
    """Factory for canned linear-chain applications on the shared env."""
    def _make(depth=2, demand_ms=5.0, threads=4, cores=2.0):
        return build_chain(env, streams, depth, demand_ms, threads,
                           cores=cores)
    return _make
