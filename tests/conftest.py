"""Shared pytest configuration."""

def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "integration: full-stack closed-loop experiments (slower)")
