"""Tests for the sequential hill-climbing tuner baseline."""

import pytest

from repro.app import Application, Call, Compute, Microservice, Operation
from repro.core import HillClimbConfig, HillClimbController, \
    ThreadPoolTarget
from repro.sim import Constant, Environment, Exponential, RandomStreams
from repro.workloads import OpenLoopDriver


def build_app(env, streams, *, threads=3, demand=0.012):
    app = Application(env)
    svc = Microservice(env, "svc", streams.stream("svc"), cores=2.0,
                       thread_pool_size=threads, cpu_overhead=0.02)
    backend = Microservice(env, "backend", streams.stream("be"),
                           cores=4.0)
    backend.add_operation(Operation("default", [Compute(Constant(0.004))]))
    svc.add_operation(Operation("default", [
        Compute(Exponential(demand)), Call("backend")]))
    app.add_service(svc)
    app.add_service(backend)
    app.set_entrypoint("go", "svc", "default")
    return app


class TestHillClimbConfig:
    @pytest.mark.parametrize("kwargs", [
        {"evaluation_period": 0.0},
        {"step_factor": 1.0},
        {"min_allocation": 0},
        {"min_allocation": 9, "max_allocation": 3},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HillClimbConfig(**kwargs)


class TestHillClimbController:
    def make(self, env, streams, app, *, sla=0.3, **kwargs):
        target = ThreadPoolTarget(app.service("svc"))
        controller = HillClimbController(
            env, app, target, sla=sla, rng=streams.stream("hc"),
            **kwargs)
        return controller, target

    def test_requires_positive_sla(self):
        env = Environment()
        streams = RandomStreams(1)
        app = build_app(env, streams)
        target = ThreadPoolTarget(app.service("svc"))
        with pytest.raises(ValueError):
            HillClimbController(env, app, target, sla=0.0,
                                rng=streams.stream("hc"))

    def test_climbs_out_of_under_allocation(self):
        env = Environment()
        streams = RandomStreams(1)
        app = build_app(env, streams, threads=2)
        # Generous SLA: the gradient the tuner follows is throughput
        # (2 threads cap ~125/s < the offered 140/s; 3+ do not).
        controller, target = self.make(env, streams, app, sla=1.0)
        controller.start()
        driver = OpenLoopDriver(env, app, "go", rate=140.0,
                                rng=streams.stream("arr"),
                                duration=240.0)
        driver.start()
        env.run(until=240.0)
        # The tuner must escape the under-allocation and spend the bulk
        # of its trials in the healthy region (it random-walks across
        # the flat plateau above, so the *endpoint* is not meaningful).
        allocations = [allocation for _t, allocation, _g
                       in controller.trials]
        assert max(allocations) > 2
        assert sum(a > 2 for a in allocations) >= 0.6 * len(allocations)
        assert controller.actions
        assert len(controller.trials) >= 10

    def test_reverts_bad_moves(self):
        env = Environment()
        streams = RandomStreams(1)
        app = build_app(env, streams, threads=8)
        controller, _target = self.make(env, streams, app)
        controller.start()
        driver = OpenLoopDriver(env, app, "go", rate=120.0,
                                rng=streams.stream("arr"),
                                duration=300.0)
        driver.start()
        env.run(until=300.0)
        # At least one action must be a revert (after == earlier before).
        transitions = [(a.before, a.after) for a in controller.actions]
        assert transitions, "tuner never moved"
        reverts = [1 for (b1, a1), (b2, a2) in
                   zip(transitions, transitions[1:]) if a2 == b1]
        # Not guaranteed every run, but over 20 trials on a noisy system
        # hill climbing always backtracks at least once.
        assert reverts, f"no backtracking in {transitions}"

    def test_respects_bounds(self):
        env = Environment()
        streams = RandomStreams(1)
        app = build_app(env, streams, threads=3)
        controller, target = self.make(
            env, streams, app,
            config=HillClimbConfig(min_allocation=2, max_allocation=6))
        controller.start()
        driver = OpenLoopDriver(env, app, "go", rate=150.0,
                                rng=streams.stream("arr"),
                                duration=200.0)
        driver.start()
        env.run(until=200.0)
        assert all(2 <= a.after <= 6 for a in controller.actions)

    def test_start_idempotent(self):
        env = Environment()
        streams = RandomStreams(1)
        app = build_app(env, streams)
        controller, _t = self.make(env, streams, app)
        controller.start()
        controller.start()
        env.run(until=20.0)
        # One loop only: exactly one trial per evaluation period.
        assert len(controller.trials) == 1
