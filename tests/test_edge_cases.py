"""Edge-case tests for kernel, resources, and metrics internals."""

import pytest

from repro.app.service import ServiceMetrics
from repro.resources import ProcessorSharingCpu, SoftResourcePool
from repro.sim import NORMAL, URGENT, Environment
from repro.sim.events import Condition


class TestEnginePriorities:
    def test_urgent_processes_before_normal_at_same_time(self):
        env = Environment()
        order = []
        event_normal = env.event()
        event_urgent = env.event()
        event_normal.add_callback(lambda e: order.append("normal"))
        event_urgent.add_callback(lambda e: order.append("urgent"))
        event_normal._ok = True
        event_normal._value = None
        event_urgent._ok = True
        event_urgent._value = None
        env.schedule(event_normal, delay=1.0, priority=NORMAL)
        env.schedule(event_urgent, delay=1.0, priority=URGENT)
        env.run()
        assert order == ["urgent", "normal"]

    def test_peek_empty_heap(self):
        assert Environment().peek() == float("inf")

    def test_peek_returns_next_time(self):
        env = Environment()
        env.timeout(5.0)
        assert env.peek() == 5.0

    def test_run_until_event_that_never_fires(self):
        env = Environment()
        never = env.event()

        def proc(env):
            yield env.timeout(1.0)

        env.process(proc(env))
        with pytest.raises(RuntimeError):
            env.run(until=never)

    def test_schedule_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.schedule(env.event(), delay=-1.0)

    def test_condition_mixed_environments_rejected(self):
        env_a, env_b = Environment(), Environment()
        with pytest.raises(ValueError):
            Condition(env_a, [env_a.event(), env_b.event()], needed=2)

    def test_empty_all_of_succeeds_immediately(self):
        env = Environment()
        condition = env.all_of([])
        assert condition.triggered

    def test_interrupt_cause_carried(self):
        from repro.sim import Interrupt
        env = Environment()
        seen = {}

        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                seen["cause"] = interrupt.cause

        proc = env.process(victim(env))

        def killer(env):
            yield env.timeout(1.0)
            proc.interrupt(cause={"reason": "test"})

        env.process(killer(env))
        env.run()
        assert seen["cause"] == {"reason": "test"}


class TestCpuEdgeCases:
    def test_set_overhead_at_runtime(self):
        env = Environment()
        cpu = ProcessorSharingCpu(env, cores=1, overhead=0.0)
        done = []

        def jobs(env):
            a = cpu.submit(1.0)
            b = cpu.submit(1.0)
            yield env.all_of([a, b])
            done.append(env.now)

        def tweak(env):
            yield env.timeout(1.0)
            cpu.set_overhead(1.0)  # halves effective rate (n=2, c=1)

        env.process(jobs(env))
        env.process(tweak(env))
        env.run()
        # Without overhead both finish at t=2; the mid-flight overhead
        # change must push completion later.
        assert done[0] > 2.0

    def test_set_overhead_negative_rejected(self):
        env = Environment()
        cpu = ProcessorSharingCpu(env, cores=1)
        with pytest.raises(ValueError):
            cpu.set_overhead(-0.5)

    def test_fractional_cores(self):
        env = Environment()
        cpu = ProcessorSharingCpu(env, cores=0.5)
        finished = []

        def job(env):
            yield cpu.submit(1.0)
            finished.append(env.now)

        env.process(job(env))
        env.run()
        assert finished[0] == pytest.approx(2.0)  # half-speed core


class TestPoolEdgeCases:
    def test_mean_in_use_with_duration(self):
        env = Environment()
        pool = SoftResourcePool(env, capacity=2)

        def holder(env):
            yield pool.acquire()
            yield env.timeout(4.0)
            pool.release()

        env.process(holder(env))
        env.run(until=8.0)
        assert pool.mean_in_use(duration=8.0) == pytest.approx(0.5)

    def test_resize_invalid(self):
        env = Environment()
        pool = SoftResourcePool(env, capacity=2)
        with pytest.raises(ValueError):
            pool.resize(0)

    def test_available_never_negative_after_shrink(self):
        env = Environment()
        pool = SoftResourcePool(env, capacity=3)
        for _ in range(3):
            pool.acquire()
        pool.resize(1)
        assert pool.available == 0


class TestServiceMetricsEdgeCases:
    def test_out_of_order_record_keeps_sorted(self):
        metrics = ServiceMetrics()
        metrics.record(5.0, 0.1)
        metrics.record(3.0, 0.2)  # late arrival
        metrics.record(7.0, 0.3)
        times, _latencies = metrics.completions()
        assert list(times) == [3.0, 5.0, 7.0]
        assert metrics.processing_times(4.0, 8.0).tolist() == [0.1, 0.3]

    def test_goodput_empty_window(self):
        metrics = ServiceMetrics()
        assert metrics.goodput(0.0, 10.0, threshold=1.0) == 0.0
        assert metrics.throughput(5.0, 5.0) == 0.0
