"""Tests for the matrix runner and sweep/matrix persistence.

Covers the spec/result round trips, a real (tiny) matrix run with the
byte-identical re-run check, the results-directory layout with its
queryable index, and the ``SweepResult`` JSON round trip including the
degenerate all-zero case fixed in PR 2.
"""

import json
import os

import pytest

from repro.experiments.matrix import (
    CellResult,
    CellSpec,
    MatrixResult,
    WorkloadSpec,
    default_matrix,
    run_cell,
    run_matrix,
)
from repro.experiments.persistence import load_result
from repro.experiments.sweep import SweepResult, sweep
from repro.scenarios import ZooParams

TINY = WorkloadSpec(trace="slowly_varying", duration=12.0,
                    peak_users=15, min_users=5)


def tiny_cell(**overrides) -> CellSpec:
    defaults = dict(params=ZooParams(archetype="cache_aside"),
                    workload=TINY, fault="none", controller="none",
                    autoscaler="none", seed=3)
    defaults.update(overrides)
    return CellSpec(**defaults)


class TestSpecs:
    def test_workload_spec_validates(self):
        with pytest.raises(ValueError):
            WorkloadSpec(trace="slowly_varying", duration=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec(trace="slowly_varying", min_users=50,
                         peak_users=10)

    def test_cell_spec_round_trip(self):
        cell = tiny_cell(fault="interference", controller="sora")
        rebuilt = CellSpec.from_dict(
            json.loads(json.dumps(cell.to_dict())))
        assert rebuilt == cell
        assert rebuilt.cell_id == cell.cell_id

    def test_cell_ids_encode_the_axes(self):
        cell = tiny_cell(fault="crash", controller="sora",
                         autoscaler="hpa", seed=7)
        assert cell.cell_id == \
            "cache_aside-slowly_varying-crash-sora+hpa-s7"

    def test_default_matrix_dimensions(self):
        cells = default_matrix()
        assert len(cells) == 24  # 3 x 2 x 2 x 2
        assert len({c.cell_id for c in cells}) == 24


class TestRunCell:
    def test_cell_runs_and_persists(self, tmp_path):
        out = str(tmp_path / "cells")
        result = run_cell(tiny_cell(), out_dir=out)
        assert result.submitted > 0
        assert result.requests + result.failed <= result.submitted
        assert len(result.fingerprint) == 32
        full = load_result(os.path.join(str(tmp_path), result.path))
        assert full.total_submitted == result.submitted
        # The per-cell decision log rides along with the result.
        assert full.obs is not None

    def test_cell_result_round_trip(self, tmp_path):
        result = run_cell(tiny_cell())
        rebuilt = CellResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.replay_ok


class TestRunMatrix:
    def test_matrix_run_persists_queryable_results(self, tmp_path):
        out = str(tmp_path / "matrix")
        cells = [tiny_cell(controller=c, fault=f)
                 for c in ("none", "sora")
                 for f in ("none", "interference")]
        matrix = run_matrix(cells, out, rerun_check=True)
        assert len(matrix) == 4
        assert matrix.replay_failures == []
        assert all(r.rerun_fingerprint == r.fingerprint
                   for r in matrix.cells)
        # Queryable layout: per-cell JSONs + JSON/HTML index.
        assert sorted(os.listdir(out)) == ["cells", "index.html",
                                           "index.json"]
        assert len(os.listdir(os.path.join(out, "cells"))) == 4
        html = open(os.path.join(out, "index.html")).read()
        for cell in cells:
            assert cell.cell_id in html

    def test_matrix_round_trip_identical_summary(self, tmp_path):
        out = str(tmp_path / "matrix")
        matrix = run_matrix([tiny_cell()], out)
        reloaded = MatrixResult.load(os.path.join(out, "index.json"))
        assert reloaded.to_dict() == matrix.to_dict()
        assert reloaded.summary_table() == matrix.summary_table()

    def test_duplicate_cells_rejected(self, tmp_path):
        cell = tiny_cell()
        with pytest.raises(ValueError, match="duplicate"):
            run_matrix([cell, cell], str(tmp_path))

    def test_distinct_seeds_distinct_fingerprints(self):
        first = run_cell(tiny_cell(seed=1))
        second = run_cell(tiny_cell(seed=2))
        assert first.fingerprint != second.fingerprint


class TestSweepPersistence:
    def test_round_trip_identical_summary(self):
        result = sweep([2, 4, 8], lambda v: float(v * v))
        rebuilt = SweepResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert rebuilt.metric_by_value == result.metric_by_value
        assert rebuilt.best == result.best
        assert rebuilt.margin == result.margin
        assert rebuilt.normalized() == result.normalized()

    def test_degenerate_all_zero_round_trip(self):
        # The PR-2 degenerate case: every grid point measured 0.0.
        result = sweep([1, 2, 3], lambda v: 0.0)
        assert result.degenerate
        rebuilt = SweepResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert rebuilt.degenerate
        assert rebuilt.normalized() == {1: 0.0, 2: 0.0, 3: 0.0}
        assert rebuilt.margin == 1.0
        assert rebuilt.is_tie

    def test_infinite_margin_survives_json(self):
        # Only one point above zero => margin inf, stored strict-JSON.
        result = sweep([1, 2], lambda v: 1.0 if v == 1 else 0.0)
        assert result.margin == float("inf")
        payload = json.dumps(result.to_dict())
        assert "Infinity" not in payload  # strict JSON stays loadable
        rebuilt = SweepResult.from_dict(json.loads(payload))
        assert rebuilt.margin == float("inf")
