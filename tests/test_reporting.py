"""Tests for the text reporting utilities."""

import numpy as np

from repro.experiments import ascii_table, ratio, series_table, sparkline


class TestAsciiTable:
    def test_basic_alignment(self):
        table = ascii_table(["name", "value"],
                            [["a", 1], ["long-name", 22.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[2:])
        assert "long-name" in lines[3]

    def test_title(self):
        table = ascii_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        table = ascii_table(["v"], [[1234.5678], [0.123456], [float("nan")]])
        assert "1235" in table
        assert "0.123" in table
        assert "-" in table.splitlines()[-1]

    def test_empty_rows(self):
        table = ascii_table(["a", "b"], [])
        assert len(table.splitlines()) == 2


class TestSeriesTable:
    def test_resamples_onto_grid(self):
        times = np.arange(0.0, 10.0, 0.5)
        table = series_table(
            {"v": (times, times * 2)}, step=5.0, until=10.0)
        lines = table.splitlines()
        assert lines[0].startswith("t[s]")
        assert len(lines) == 2 + 3  # header, sep, t=0,5,10

    def test_empty_series_shows_nan(self):
        table = series_table(
            {"v": (np.array([]), np.array([]))}, step=5.0, until=5.0)
        assert "-" in table

    def test_nearest_sample_used_for_gaps(self):
        times = np.array([0.0])
        values = np.array([42.0])
        table = series_table({"v": (times, values)}, step=10.0,
                             until=10.0)
        assert table.count("42") == 2  # t=0 and nearest at t=10


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat(self):
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"

    def test_shape(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_downsamples_long_series(self):
        assert len(sparkline(list(range(1000)), width=30)) == 30

    def test_ignores_nan(self):
        assert len(sparkline([1.0, float("nan"), 2.0])) == 2


class TestRatio:
    def test_normal(self):
        assert ratio(4.0, 2.0) == 2.0

    def test_zero_denominator(self):
        assert ratio(1.0, 0.0) == 0.0
