"""Timer-wheel scheduler: equivalence with the heap, by construction.

The wheel is only allowed into the kernel under one contract: the
processed event stream must be **byte-identical** to the heap
scheduler's on every workload — same events, same order, same times,
same replay fingerprints. These tests hold that contract three ways:

- unit tests on :class:`~repro.sim.wheel.TimerWheel` itself (ordering
  across buckets, the far heap, cursor advancement);
- a Hypothesis property over random workloads mixing timeouts,
  process spawns and cancellation-heavy interrupts (the Quorum /
  Hedge / timeout machinery all cancels via the same
  ``remove_callback`` path);
- the scenario-zoo golden set: every archetype, full scenario runs,
  fingerprints compared digest-for-digest.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import run_scenario
from repro.scenarios import ARCHETYPES, ZooParams, zoo_scenario
from repro.sim import Environment
from repro.sim.engine import SCHEDULERS
from repro.sim.wheel import TimerWheel
from repro.validation.fingerprint import RunRecorder
from repro.workloads import build_trace


class TestTimerWheel:
    def test_empty(self):
        wheel = TimerWheel()
        assert len(wheel) == 0
        assert wheel.peek() == float("inf")
        with pytest.raises(IndexError):
            wheel.pop()

    def test_orders_like_a_heap(self):
        entries = []
        state = 12345
        for k in range(5000):
            state = (state * 1103515245 + 12345) % 2147483648
            when = (state % 1_000_000) / 61.0  # spans many rotations
            entries.append((when, 1, k, None))
        wheel = TimerWheel()
        for entry in entries:
            wheel.push(entry)
        assert len(wheel) == len(entries)
        drained = [wheel.pop() for _ in range(len(entries))]
        assert drained == sorted(entries)
        assert len(wheel) == 0

    def test_interleaved_push_pop(self):
        """Pushes landing at or behind the cursor still order correctly."""
        wheel = TimerWheel()
        shadow = []
        state = 99
        out_wheel, out_shadow = [], []
        for k in range(4000):
            state = (state * 1103515245 + 12345) % 2147483648
            if shadow and state % 3 == 0:
                out_wheel.append(wheel.pop())
                out_shadow.append(heapq.heappop(shadow))
            else:
                base = out_shadow[-1][0] if out_shadow else 0.0
                when = base + (state % 10_000) / 97.0
                entry = (when, 1, k, None)
                wheel.push(entry)
                heapq.heappush(shadow, entry)
        while shadow:
            out_wheel.append(wheel.pop())
            out_shadow.append(heapq.heappop(shadow))
        assert out_wheel == out_shadow

    def test_equal_times_order_by_priority_then_serial(self):
        wheel = TimerWheel()
        entries = [(1.0, 1, 3, None), (1.0, 0, 4, None),
                   (1.0, 1, 1, None), (1.0, 0, 2, None)]
        for entry in entries:
            wheel.push(entry)
        assert [wheel.pop() for _ in range(4)] == sorted(entries)

    def test_far_future_entries(self):
        """Entries beyond one rotation park in the far heap and still
        come out in global order (the epoch-aliasing regression)."""
        wheel = TimerWheel(width=0.001, slots=64)
        # One rotation is 64 ms; these span thousands of rotations.
        entries = [(float(k % 7) * 13.0 + k * 1e-4, 1, k, None)
                   for k in range(500)]
        for entry in entries:
            wheel.push(entry)
        assert [wheel.pop() for _ in range(len(entries))] == \
            sorted(entries)


class TestSchedulerFlag:
    def test_default_is_heap(self):
        assert Environment().scheduler == "heap"

    def test_explicit_wheel(self):
        assert Environment(scheduler="wheel").scheduler == "wheel"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            Environment(scheduler="btree")

    def test_env_var_selects_wheel(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "wheel")
        assert Environment().scheduler == "wheel"

    def test_schedulers_tuple(self):
        assert SCHEDULERS == ("heap", "wheel")


def _scripted_digest(scheduler: str, script) -> tuple[str, int]:
    """Run a scripted workload on one scheduler; return its digest."""
    env = Environment(scheduler=scheduler)
    recorder = RunRecorder(env, keep_events=False)
    spawned = []

    def worker(delays):
        try:
            for delay in delays:
                yield env.timeout(delay)
        except BaseException:
            # Interrupted mid-wait: die quietly (the cancellation
            # itself — remove_callback on the pending Timeout — is
            # what the scheduler equivalence must survive).
            return

    def spawner():
        for delay, kind in script:
            if kind == 0:
                yield env.timeout(delay)
            elif kind == 1:
                spawned.append(env.process(
                    worker([delay, delay / 2, delay * 3])))
            elif kind == 2 and spawned:
                victim = spawned.pop()
                # Only interrupt processes that have started (are
                # waiting on a target): interrupting before bootstrap
                # double-resumes on any scheduler — a documented
                # Process.interrupt precondition, not a wheel concern.
                if victim.is_alive and victim._target is not None:
                    victim.interrupt("cancelled")
                yield env.timeout(delay / 7)
            else:
                # Far-future hop: lands in the wheel's far heap, then
                # must interleave correctly with near entries.
                yield env.timeout(delay * 1000.0)

    env.process(spawner())
    env.run()
    fingerprint = recorder.finish()
    return fingerprint.digest, recorder.n_events


class TestWheelHeapEquivalence:
    @given(script=st.lists(
        st.tuples(
            st.floats(min_value=1e-6, max_value=50.0,
                      allow_nan=False, allow_infinity=False),
            st.integers(min_value=0, max_value=3)),
        min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_random_workloads_byte_identical(self, script):
        heap_digest, heap_events = _scripted_digest("heap", script)
        wheel_digest, wheel_events = _scripted_digest("wheel", script)
        assert heap_events == wheel_events
        assert heap_digest == wheel_digest

    @pytest.mark.parametrize("archetype", sorted(ARCHETYPES))
    def test_zoo_golden_set_byte_identical(self, archetype,
                                           monkeypatch):
        """Full scenario runs — Quorum, Hedge, cache-aside fallthrough,
        degraded fan-out — fingerprint identically on both schedulers."""
        digests = {}
        for scheduler in SCHEDULERS:
            monkeypatch.setenv("REPRO_SCHEDULER", scheduler)
            trace = build_trace("big_spike", duration=8.0,
                                peak_users=40, min_users=15)
            scenario = zoo_scenario(ZooParams(archetype=archetype),
                                    trace=trace, seed=5)
            assert scenario.env.scheduler == scheduler
            recorder = RunRecorder(scenario.env, keep_events=False)
            run_scenario(scenario, duration=8.0)
            fingerprint = recorder.finish(scenario.app)
            digests[scheduler] = (fingerprint.digest,
                                  recorder.n_events)
        assert digests["wheel"] == digests["heap"]
        # A trivial run would vacuously pass: insist the scenario
        # actually exercised the kernel.
        assert digests["heap"][1] > 1000
