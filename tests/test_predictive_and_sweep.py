"""Tests for the predictive autoscaler and the sweep utility."""

import pytest

from repro.app import Application, Compute, Microservice, Operation
from repro.autoscalers import PredictiveAutoscaler
from repro.core import MonitoringModule
from repro.experiments import sweep
from repro.sim import Environment, Exponential, RandomStreams
from repro.workloads import OpenLoopDriver


def loaded_app(env, streams, demand=0.02):
    app = Application(env)
    svc = Microservice(env, "svc", streams.stream("svc"), cores=2.0,
                       thread_pool_size=32)
    svc.add_operation(Operation("default", [
        Compute(Exponential(demand))]))
    app.add_service(svc)
    app.set_entrypoint("go", "svc", "default")
    return app


class TestPredictiveAutoscaler:
    def test_validation(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        monitoring = MonitoringModule(env, app)
        svc = app.service("svc")
        with pytest.raises(ValueError):
            PredictiveAutoscaler(env, svc, monitoring,
                                 target_utilization=0.0)
        with pytest.raises(ValueError):
            PredictiveAutoscaler(env, svc, monitoring, horizon=0.0)
        with pytest.raises(ValueError):
            PredictiveAutoscaler(env, svc, monitoring, min_replicas=3,
                                 max_replicas=1)

    def test_scales_ahead_of_rising_load(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        monitoring = MonitoringModule(env, app)
        scaler = PredictiveAutoscaler(env, app.service("svc"),
                                      monitoring,
                                      target_utilization=0.5,
                                      max_replicas=4)
        monitoring.start()
        scaler.start()
        # Ramp: 20 -> 90 req/s over 120 s (capacity of one replica at
        # 50% target is ~50 req/s).
        driver = OpenLoopDriver(
            env, app, "go",
            rate=lambda t: 20.0 + 70.0 * min(1.0, t / 120.0),
            rng=streams.stream("arr"), duration=120.0)
        driver.start()
        env.run(until=120.0)
        assert app.service("svc").replica_count >= 2
        assert scaler.scale_log
        # The forecast-based trigger fires while utilization is still
        # below the target at the trigger instant (it scaled *ahead*).
        first = scaler.scale_log[0]
        assert first.kind == "horizontal"

    def test_forecast_on_flat_series(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        monitoring = MonitoringModule(env, app)
        scaler = PredictiveAutoscaler(env, app.service("svc"),
                                      monitoring)
        monitoring.start()
        driver = OpenLoopDriver(env, app, "go", rate=30.0,
                                rng=streams.stream("arr"), duration=60.0)
        driver.start()
        env.run(until=60.0)
        forecast = scaler.forecast_utilization()
        actual = monitoring.utilization_over("svc", 30.0)
        assert forecast == pytest.approx(actual, abs=0.15)

    def test_scale_down_requires_stabilization(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        app.service("svc").scale_replicas(3)
        monitoring = MonitoringModule(env, app)
        scaler = PredictiveAutoscaler(env, app.service("svc"),
                                      monitoring,
                                      scale_down_stabilization=45.0)
        monitoring.start()
        scaler.start()
        driver = OpenLoopDriver(env, app, "go", rate=5.0,
                                rng=streams.stream("arr"),
                                duration=120.0)
        driver.start()
        env.run(until=30.0)
        assert app.service("svc").replica_count == 3
        env.run(until=120.0)
        assert app.service("svc").replica_count < 3


class TestSweep:
    def test_finds_argmax(self):
        result = sweep([1, 2, 3, 4], lambda v: -((v - 3) ** 2))
        assert result.best == 3
        assert result.metric_by_value[3] == 0.0

    def test_margin_over_runner_up(self):
        result = sweep([1, 2], {1: 100.0, 2: 50.0}.get)
        assert result.margin == pytest.approx(2.0)
        assert not result.is_tie

    def test_tie_detection(self):
        result = sweep([1, 2, 3], lambda v: 10.0)
        assert result.is_tie

    def test_normalized(self):
        result = sweep([1, 2], {1: 50.0, 2: 100.0}.get)
        assert result.normalized() == {1: 0.5, 2: 1.0}

    def test_empty_grid(self):
        with pytest.raises(ValueError):
            sweep([], lambda v: 0.0)

    def test_all_zero_metric(self):
        result = sweep([1, 2], lambda v: 0.0)
        assert result.margin == 1.0
