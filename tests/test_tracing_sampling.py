"""Trace samplers, streaming analytics, and fingerprint identity.

Covers the scale-proof analytics contracts:

* head/tail sampler semantics (retention guarantees, coverage stats);
* warehouse integration — ``total_recorded`` and the streaming
  aggregator see *every* finished trace, the ring only the sampled-in;
* streaming P² self-time quantiles vs the exhaustive per-trace walk;
* replay-fingerprint identity: sampled, unsampled, and obs-disabled
  runs of the same seeded scenario are byte-identical;
* ring-buffer eviction keeps the per-service indexes consistent under
  both schedulers.
"""

import numpy as np
import pytest

import repro.obs as obs_mod
from repro.experiments import sock_shop_cart_scenario
from repro.sim import Environment, RandomStreams
from repro.tracing import (
    CriticalPathAggregator,
    HeadSampler,
    Span,
    TailSampler,
    TraceWarehouse,
    extract_critical_path,
    sampler_stream,
)
from repro.validation.fingerprint import RunRecorder
from repro.workloads import OpenLoopDriver, WorkloadTrace

from tests.conftest import build_chain


def make_trace(trace_id=1, duration=0.1, cancelled_leaf=False):
    """A two-span tree finishing at ``duration`` seconds."""
    root = Span(trace_id=trace_id, service="front", operation="op",
                arrival=0.0)
    root.started = 0.0
    child = Span(trace_id=trace_id, service="back", operation="op",
                 arrival=duration * 0.2, parent=root)
    child.started = child.arrival
    child.departure = duration * 0.6
    child.cancelled = cancelled_leaf
    root.departure = duration
    return root


def rng(seed=0):
    return np.random.default_rng(seed)


class TestHeadSampler:
    def test_rate_bounds_are_absolute(self):
        sampler = HeadSampler(0.0, rng())
        assert not any(sampler.sample(make_trace(i)) for i in range(50))
        sampler = HeadSampler(1.0, rng())
        assert all(sampler.sample(make_trace(i)) for i in range(50))
        assert sampler.kept_by_reason == {"head": 50}

    def test_decisions_are_rng_deterministic(self):
        def decisions(seed):
            sampler = HeadSampler(0.3, rng(seed))
            return [sampler.sample(make_trace(i)) for i in range(200)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_head_sampling_downsamples_the_tail_too(self):
        # The failure mode tail sampling fixes: a head sampler drops
        # SLO violators along with the bulk.
        sampler = HeadSampler(0.5, rng(3), slo_threshold=0.05)
        for index in range(400):
            sampler.sample(make_trace(index, duration=0.1))
        assert sampler.slo_violating_total == 400
        assert 0.0 < sampler.slo_retention < 1.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            HeadSampler(1.5, rng())


class TestTailSampler:
    def test_slo_violators_always_kept(self):
        sampler = TailSampler(0.0, rng(), slo_threshold=0.05)
        assert sampler.sample(make_trace(duration=0.1))
        assert not sampler.sample(make_trace(duration=0.01))
        assert sampler.kept_by_reason == {"slo": 1}
        assert sampler.slo_retention == 1.0

    def test_cancelled_spans_anywhere_keep_the_trace(self):
        sampler = TailSampler(0.0, rng(), slo_threshold=10.0)
        assert sampler.sample(make_trace(duration=0.01,
                                         cancelled_leaf=True))
        assert not sampler.sample(make_trace(duration=0.01))
        assert sampler.kept_by_reason == {"cancelled": 1}

    def test_flag_predicate_keeps_the_trace(self):
        flagged = {3, 5}
        sampler = TailSampler(0.0, rng(),
                              keep_if=lambda r: r.trace_id in flagged)
        kept = [i for i in range(8)
                if sampler.sample(make_trace(i, duration=0.01))]
        assert kept == [3, 5]
        assert sampler.kept_by_reason == {"flagged": 2}

    def test_retention_reasons_rank_slo_first(self):
        # A violating trace with a cancelled span books under "slo".
        sampler = TailSampler(0.0, rng(), slo_threshold=0.05)
        sampler.sample(make_trace(duration=0.1, cancelled_leaf=True))
        assert sampler.kept_by_reason == {"slo": 1}

    def test_bulk_rate_bounds(self):
        sampler = TailSampler(1.0, rng(), slo_threshold=10.0)
        assert all(sampler.sample(make_trace(i, duration=0.01))
                   for i in range(20))
        assert sampler.kept_by_reason == {"bulk": 20}
        assert sampler.stored_fraction == 1.0

    def test_coverage_snapshot_shape(self):
        sampler = TailSampler(0.25, rng(), slo_threshold=0.05)
        for index in range(40):
            sampler.sample(make_trace(index,
                                      duration=0.1 if index < 4 else 0.01))
        snap = sampler.coverage()
        assert snap["sampler"] == "tail"
        assert snap["rate"] == 0.25
        assert snap["total"] == 40
        assert snap["kept"] == sum(snap["kept_by_reason"].values())
        assert snap["slo_violating"] == {
            "total": 4, "kept": 4, "retention": 1.0}

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            TailSampler(-0.1, rng())


class TestWarehouseSampling:
    def run_chain(self, warehouse, requests=60):
        env = Environment()
        streams = RandomStreams(5)
        app = build_chain(env, streams, depth=3, demand_ms=2.0,
                          threads=4)
        app.warehouse = warehouse
        for _ in range(requests):
            app.submit("go")
        env.run()
        return app

    def test_aggregator_sees_every_trace_ring_stores_the_sample(self):
        warehouse = TraceWarehouse(
            sampler=TailSampler(0.0, rng(), slo_threshold=1e9),
            analytics=CriticalPathAggregator())
        app = self.run_chain(warehouse)
        assert warehouse.total_recorded == 60
        assert warehouse.analytics.traces_observed == 60
        assert len(warehouse) == 0  # rate 0, nothing violates
        assert warehouse.spans_for("svc0") == []

    def test_unsampled_warehouse_stores_everything(self):
        warehouse = TraceWarehouse(analytics=CriticalPathAggregator())
        self.run_chain(warehouse)
        assert len(warehouse) == warehouse.total_recorded == 60
        assert warehouse.analytics.traces_observed == 60

    def test_coverage_merges_sampler_and_analytics(self):
        warehouse = TraceWarehouse(
            sampler=TailSampler(1.0, rng(), slo_threshold=1e9),
            analytics=CriticalPathAggregator())
        self.run_chain(warehouse)
        snap = warehouse.coverage()
        assert snap["sampler"] == "tail"
        assert snap["total_recorded"] == snap["stored"] == 60
        assert snap["analytics_traces_observed"] == 60

    def test_coverage_without_sampler(self):
        warehouse = TraceWarehouse()
        self.run_chain(warehouse, requests=5)
        assert warehouse.coverage() == {
            "total_recorded": 5, "stored": 5, "sampler": "none"}


class TestStreamingVsExhaustive:
    """Streaming P² self-time quantiles track the exhaustive walk."""

    @pytest.fixture(scope="class")
    def populated(self):
        env = Environment()
        streams = RandomStreams(11)
        app = build_chain(env, streams, depth=3, demand_ms=3.0,
                          threads=6)
        app.warehouse = TraceWarehouse(
            analytics=CriticalPathAggregator())
        driver = OpenLoopDriver(env, app, "go", 150.0,
                                streams.stream("openloop"),
                                duration=10.0)
        driver.start()
        env.run(until=15.0)
        return app.warehouse

    def exhaustive(self, warehouse):
        durations = []
        self_times = {}
        for root in warehouse.traces(0.0, float("inf")):
            path = extract_critical_path(root)
            durations.append(path.duration)
            for span in path.spans:
                self_times.setdefault(span.service, []).append(
                    span.self_time())
        return durations, self_times

    def test_self_time_p99_within_five_percent(self, populated):
        _durations, self_times = self.exhaustive(populated)
        analytics = populated.analytics
        checked = 0
        for service, values in self_times.items():
            if len(values) < 100:
                continue
            exact = float(np.percentile(values, 99))
            estimate = analytics.self_time[service].quantile(0.99)
            assert estimate == pytest.approx(exact, rel=0.05), service
            checked += 1
        assert checked >= 3, "chain run produced too few samples"

    def test_duration_p99_within_five_percent(self, populated):
        durations, _self_times = self.exhaustive(populated)
        exact = float(np.percentile(durations, 99))
        assert populated.analytics.duration.quantile(0.99) == \
            pytest.approx(exact, rel=0.05)

    def test_counts_and_paths_match_exhaustive(self, populated):
        durations, self_times = self.exhaustive(populated)
        analytics = populated.analytics
        assert analytics.traces_observed == len(durations)
        for service, values in self_times.items():
            assert analytics.self_time[service].count == len(values)
        # One linear chain: a single dominant critical-path pattern.
        top = analytics.paths.top(1)[0]
        assert top["count"] == len(durations)
        assert top["services"] == ["svc0", "svc1", "svc2"]


class TestFingerprintIdentity:
    """Sampling is an observability concern: simulated outcomes are
    byte-identical with sampling on, off, or observability disabled."""

    def digest(self, mode):
        obs = (obs_mod.NULL if mode == "disabled"
               else obs_mod.Observability(telemetry=False))
        trace = WorkloadTrace("flat", 20.0, 30, 10, lambda u: 1.0)
        scenario = sock_shop_cart_scenario(
            trace=trace, controller="none", autoscaler="none", obs=obs)
        recorder = RunRecorder(scenario.env, keep_events=False)
        if mode in ("head", "tail"):
            cls = HeadSampler if mode == "head" else TailSampler
            scenario.app.warehouse.attach(
                sampler=cls(0.1, sampler_stream(scenario.streams),
                            slo_threshold=scenario.sla),
                analytics=CriticalPathAggregator())
            obs.attach_trace_analytics(scenario.app.warehouse)
        for driver in scenario.drivers:
            driver.start()
        scenario.env.run(until=25.0)
        stored = len(scenario.app.warehouse)
        total = scenario.app.warehouse.total_recorded
        return recorder.finish(scenario.app).digest, stored, total

    def test_sampled_runs_are_byte_identical(self):
        baseline, stored_all, total = self.digest("unsampled")
        assert total > 50 and stored_all == total
        for mode in ("disabled", "head", "tail"):
            digest, stored, mode_total = self.digest(mode)
            assert digest == baseline, mode
            assert mode_total == total, mode
            if mode in ("head", "tail"):
                # The sampler really dropped traces — identity is not
                # vacuous — yet the fingerprint (which folds in
                # total_recorded) never moved.
                assert 0 < stored < total, mode


class TestEvictionConsistency:
    """Per-service indexes track the ring exactly through eviction."""

    @pytest.mark.parametrize("scheduler", ["heap", "wheel"])
    def test_indexes_match_ring_after_overflow(self, scheduler):
        env = Environment(scheduler=scheduler)
        streams = RandomStreams(3)
        app = build_chain(env, streams, depth=3, demand_ms=2.0,
                          threads=4)
        app.warehouse = TraceWarehouse(max_traces=16)
        for _ in range(100):
            app.submit("go")
        env.run()

        warehouse = app.warehouse
        assert warehouse.total_recorded == 100
        assert len(warehouse) == 16
        kept = warehouse.traces(0.0, float("inf"))
        kept_spans = {id(span) for root in kept
                      for span in root.walk()}
        for service in warehouse.services():
            indexed = warehouse.spans_for(service)
            # Exactly one span per stored trace in a linear chain, all
            # belonging to live (non-evicted) traces, sorted by
            # departure.
            assert len(indexed) == 16, (scheduler, service)
            assert all(id(span) in kept_spans for span in indexed)
            departures = [span.departure for span in indexed]
            assert departures == sorted(departures)

    @pytest.mark.parametrize("scheduler", ["heap", "wheel"])
    def test_eviction_composes_with_sampling(self, scheduler):
        env = Environment(scheduler=scheduler)
        streams = RandomStreams(3)
        app = build_chain(env, streams, depth=2, demand_ms=2.0,
                          threads=4)
        app.warehouse = TraceWarehouse(
            max_traces=8,
            sampler=TailSampler(0.5, rng(1), slo_threshold=1e9))
        for _ in range(80):
            app.submit("go")
        env.run()
        warehouse = app.warehouse
        assert warehouse.total_recorded == 80
        assert warehouse.sampler.kept > 8  # eviction actually ran
        assert len(warehouse) == 8
        kept_spans = {id(span)
                      for root in warehouse.traces(0.0, float("inf"))
                      for span in root.walk()}
        for service in warehouse.services():
            assert all(id(span) in kept_spans
                       for span in warehouse.spans_for(service))
