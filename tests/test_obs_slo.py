"""Tests for SLO specs, error-budget accounting, and burn-rate alerts."""

import math

import pytest

from repro.obs import DecisionLog
from repro.obs.slo import DEFAULT_RULES, BurnRateRule, SLOMonitor, SLOSpec


def _monitor(objective=0.99, threshold=0.4, **kwargs) -> SLOMonitor:
    return SLOMonitor(SLOSpec("test", threshold, objective), **kwargs)


def _feed(monitor, start, end, rate, bad_fraction, step=0.25):
    """Deterministic traffic: ``rate`` req/s, a fixed bad share."""
    t = start
    bad_accum = 0.0
    while t < end:
        count = int(rate * step)
        bad_accum += count * bad_fraction
        bad = int(bad_accum)
        bad_accum -= bad
        monitor.observe_counts(t, count - bad, bad)
        t += step


class TestSpecValidation:
    def test_error_budget(self):
        assert SLOSpec("s", 0.4, 0.99).error_budget == pytest.approx(0.01)

    def test_rejects_bad_objective(self):
        for objective in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="objective"):
                SLOSpec("s", 0.4, objective)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="latency_threshold"):
            SLOSpec("s", 0.0)

    def test_rule_rejects_inverted_windows(self):
        with pytest.raises(ValueError, match="short_window"):
            BurnRateRule("r", 2.0, long_window=10.0, short_window=60.0)

    def test_monitor_rejects_duplicate_rules(self):
        rules = (BurnRateRule("r", 2.0, 60.0, 10.0),
                 BurnRateRule("r", 4.0, 60.0, 10.0))
        with pytest.raises(ValueError, match="duplicate"):
            _monitor(rules=rules)

    def test_spec_round_trip(self):
        spec = SLOSpec("cart-rt", 0.4, 0.999)
        assert SLOSpec.from_dict(spec.to_dict()) == spec


class TestAccounting:
    def test_observe_classifies_by_threshold_and_ok(self):
        monitor = _monitor(threshold=0.4)
        assert monitor.observe(1.0, 0.39) is True
        assert monitor.observe(1.1, 0.41) is False
        # Failure is bad regardless of latency.
        assert monitor.observe(1.2, 0.01, ok=False) is False
        assert monitor.good_total == 1
        assert monitor.bad_total == 2
        assert monitor.compliance() == pytest.approx(1 / 3)

    def test_compliance_nan_before_traffic(self):
        assert math.isnan(_monitor().compliance())

    def test_window_counts_exclude_old_buckets(self):
        monitor = _monitor(bucket_width=1.0)
        monitor.observe_counts(0.5, 10, 0)
        monitor.observe_counts(50.5, 0, 10)
        good, bad = monitor.window_counts(now=60.0, window=10.0)
        assert (good, bad) == (0.0, 10.0)
        good, bad = monitor.window_counts(now=60.0, window=120.0)
        assert (good, bad) == (10.0, 10.0)

    def test_burn_rate_is_bad_fraction_over_budget(self):
        monitor = _monitor(objective=0.99)
        # 5% bad over the window = 5x the 1% budget.
        monitor.observe_counts(10.0, 95, 5)
        assert monitor.burn_rate(now=10.0, window=60.0) == pytest.approx(5.0)
        # All traffic sits inside the budget window too: 5x burn means
        # the budget is overspent fourfold.
        assert monitor.budget_remaining(now=10.0) == pytest.approx(-4.0)

    def test_memory_is_bounded(self):
        monitor = _monitor(bucket_width=1.0)
        for t in range(100_000):
            monitor.observe_counts(float(t), 1, 0)
        assert len(monitor._buckets) <= monitor._buckets.maxlen
        assert monitor.good_total == 100_000

    def test_no_traffic_burns_nothing(self):
        monitor = _monitor()
        assert monitor.burn_rate(0.0, 60.0) == 0.0
        assert monitor.budget_remaining(0.0) == 1.0


class TestAlerting:
    def test_fast_burn_fires_and_clears(self):
        # Fast-burn rule alone: a hard outage would legitimately trip
        # the slow-burn rule too, which is not under test here.
        monitor = _monitor(objective=0.99, rules=DEFAULT_RULES[:1])
        log = DecisionLog()
        # Healthy traffic for the long window, then a hard outage.
        _feed(monitor, 0.0, 100.0, rate=40, bad_fraction=0.0)
        assert monitor.evaluate(100.0, log) == []
        _feed(monitor, 100.0, 115.0, rate=40, bad_fraction=0.5)
        fired = monitor.evaluate(115.0, log)
        assert [r.rule for r in fired] == ["fast-burn"]
        assert fired[0].phase == "fire"
        assert fired[0].severity == "page"
        assert fired[0].burn_short >= 8.0
        assert monitor.active_alerts() == ["fast-burn"]
        # Steady-state firing produces no duplicate edges.
        assert monitor.evaluate(115.5, log) == []
        # Recovery: the short window drains first and clears the alert.
        _feed(monitor, 115.0, 140.0, rate=40, bad_fraction=0.0)
        cleared = monitor.evaluate(140.0, log)
        assert [(r.rule, r.phase) for r in cleared] == [
            ("fast-burn", "clear")]
        assert monitor.active_alerts() == []
        assert monitor.alerts_fired == 1
        assert [r.phase for r in log.records("alert")] == ["fire", "clear"]

    def test_slow_burn_needs_sustained_overspend(self):
        monitor = _monitor(objective=0.99)
        # 3% bad = 3x burn: above slow-burn's 2x, below fast-burn's 8x.
        _feed(monitor, 0.0, 200.0, rate=40, bad_fraction=0.03)
        fired = monitor.evaluate(200.0)
        assert [r.rule for r in fired] == ["slow-burn"]
        assert fired[0].severity == "ticket"

    def test_short_window_gates_stale_incidents(self):
        # A burst that saturates the long window but ended long ago
        # must not fire: the short window says it is over.
        monitor = _monitor(objective=0.99)
        _feed(monitor, 0.0, 10.0, rate=40, bad_fraction=1.0)
        _feed(monitor, 10.0, 55.0, rate=40, bad_fraction=0.0)
        burn_long = monitor.burn_rate(55.0, 60.0)
        assert burn_long >= 8.0  # evidence present in the long window
        assert monitor.evaluate(55.0) == []  # but nothing fires

    def test_alert_record_round_trips_through_log(self):
        monitor = _monitor(rules=DEFAULT_RULES[:1])
        _feed(monitor, 0.0, 20.0, rate=40, bad_fraction=1.0)
        (record,) = monitor.evaluate(20.0)
        from repro.obs import record_from_dict
        clone = record_from_dict(record.to_dict())
        assert clone.rule == record.rule
        assert clone.phase == "fire"
        assert clone.kind == "alert"


class TestPersistence:
    def test_state_round_trip_preserves_windows_and_alerts(self):
        monitor = _monitor(objective=0.995, bucket_width=0.5)
        _feed(monitor, 0.0, 120.0, rate=20, bad_fraction=0.04)
        monitor.evaluate(120.0)
        clone = SLOMonitor.from_state_dict(monitor.state_dict())
        assert clone.spec == monitor.spec
        assert clone.rules == monitor.rules
        assert clone.good_total == monitor.good_total
        assert clone.bad_total == monitor.bad_total
        assert clone.active_alerts() == monitor.active_alerts()
        assert clone.alerts_fired == monitor.alerts_fired
        for window in (10.0, 30.0, 60.0, 180.0):
            assert clone.burn_rate(120.0, window) == pytest.approx(
                monitor.burn_rate(120.0, window))

    def test_default_rules_are_the_workbook_pair(self):
        names = {rule.name: rule for rule in DEFAULT_RULES}
        assert names["fast-burn"].factor > names["slow-burn"].factor
        assert names["fast-burn"].severity == "page"
        assert names["slow-burn"].severity == "ticket"
