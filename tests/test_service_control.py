"""Control-plane service: domain, adapters, pipeline, audit replay.

Covers the transport-free layers of ``repro.service``: the strict
ingest taxonomy (reusing the OpenMetrics parser's error messages), the
online localization → propagation → SCG pipeline over streaming state,
back-pressure when ingestion outpaces the control cadence, and the
byte-identity of audit-log replay.
"""

import json
import typing as _t

import numpy as np
import pytest

from repro.core.scg import ScatterModelConfig
from repro.service import (
    AuditJournal,
    ControlPlane,
    IngestError,
    ServiceConfig,
    parse_metrics_snapshot,
    parse_trace_batch,
    read_journal,
    render_snapshot,
    replay_journal,
    verify_replay,
)
from repro.tracing.export import export_traces
from repro.tracing.span import Span


def small_config(**overrides) -> ServiceConfig:
    """A config whose scatter model converges on few snapshots."""
    defaults = dict(
        exclude=("front-end",),
        scatter=ScatterModelConfig(min_samples=20, min_distinct=4,
                                   quantum=1.0))
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def synthetic_trace(index: int, arrival: float,
                    cart_self: float = 0.2) -> Span:
    """front-end -> cart trace with cart dominating the self time."""
    root = Span(trace_id=index + 1, service="front-end",
                operation="request", arrival=arrival)
    root.started = arrival
    child = Span(trace_id=index + 1, service="cart",
                 operation="cart", arrival=arrival + 0.01, parent=root)
    child.started = child.arrival + 0.002
    child.departure = child.arrival + cart_self + 0.01 * (index % 5)
    root.departure = child.departure + 0.01
    return root


def knee_snapshots(plane: ControlPlane, count: int = 40,
                   knee: float = 10.0) -> None:
    """Feed snapshots tracing a saturating goodput curve for cart."""
    rng = np.random.default_rng(11)
    for index in range(count):
        q = 1.0 + (index % 20)
        rate = max(0.0, 30.0 * q / (1.0 + q / knee)
                   + rng.normal(0.0, 1.5))
        plane.ingest_metrics(render_snapshot(
            float(index + 1), {"cart": 0.92, "front-end": 0.30},
            {"cart": q}, {"cart": rate}, {"cart": 5}))
        if plane.pending >= plane.config.max_pending:
            plane.tick()


# ----------------------------------------------------------------------
# Domain validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("overrides", [
    {"sla": 0.0},
    {"cadence": -1.0},
    {"window": 0.0},
    {"trace_window": 0},
    {"max_pending": 0},
    {"decide_top_k": -1},
    {"min_allocation": 9, "max_allocation": 3},
    {"latency_slo": 0.0},
])
def test_config_rejects_bad_values(overrides):
    with pytest.raises(ValueError):
        ServiceConfig(**overrides)


def test_config_round_trips_to_json():
    config = small_config()
    payload = json.loads(json.dumps(config.to_dict()))
    assert payload["sla"] == config.sla
    assert payload["families"]["concurrency"] == "sora_concurrency"
    assert payload["scatter"]["min_samples"] == 20


# ----------------------------------------------------------------------
# Ingest adapters: strict taxonomy
# ----------------------------------------------------------------------
def test_snapshot_round_trips_through_strict_parser():
    config = small_config()
    text = render_snapshot(12.5, {"cart": 0.9, "front-end": 0.2},
                           {"cart": 3.5}, {"cart": 120.0},
                           {"cart": 5})
    snapshot = parse_metrics_snapshot(text, config)
    assert snapshot.time == 12.5
    assert snapshot.series["cart"].concurrency == 3.5
    assert snapshot.series["cart"].rate == 120.0
    assert snapshot.series["cart"].allocation == 5
    # front-end is utilization-only: screened, never estimated.
    assert np.isnan(snapshot.series["front-end"].concurrency)


@pytest.mark.parametrize("text,code,fragment", [
    ("sora_concurrency 1\n# EOF\n", "bad-openmetrics",
     "without # TYPE"),
    ("# TYPE sora_concurrency gauge\nsora_concurrency{broken 1\n# EOF\n",
     "bad-openmetrics", "bad sample"),
    ("# TYPE sora_concurrency gauge\nsora_concurrency 1\n",
     "bad-openmetrics", "missing # EOF terminator"),
    ("# EOF\nmore\n", "bad-openmetrics", "content after # EOF"),
    ("# TYPE other gauge\nother 1\n# EOF\n", "missing-family",
     "sora_concurrency"),
    ('# TYPE sora_concurrency gauge\nsora_concurrency{pod="x"} 1\n'
     "# EOF\n", "missing-label", "'service'"),
])
def test_snapshot_rejection_taxonomy(text, code, fragment):
    with pytest.raises(IngestError) as excinfo:
        parse_metrics_snapshot(text, small_config())
    assert excinfo.value.code == code
    assert fragment in excinfo.value.detail
    assert excinfo.value.to_dict()["error"] == code


@pytest.mark.parametrize("body,code", [
    ("{not json", "bad-json"),
    ("[1, 2, 3]", "bad-jaeger"),
    ('{"nope": []}', "bad-jaeger"),
])
def test_trace_batch_rejection_taxonomy(body, code):
    with pytest.raises(IngestError) as excinfo:
        parse_trace_batch(body)
    assert excinfo.value.code == code


def test_trace_batch_without_root_span_is_rejected():
    document = json.loads(export_traces([synthetic_trace(0, 1.0)]))
    for span in document["data"][0]["spans"]:
        span["references"] = [{"refType": "CHILD_OF",
                               "traceID": span["traceID"],
                               "spanID": span["spanID"]}]
    with pytest.raises(IngestError) as excinfo:
        parse_trace_batch(json.dumps(document))
    assert excinfo.value.code == "bad-jaeger"
    assert "no root span" in excinfo.value.detail


def test_trace_batch_round_trip():
    roots = [synthetic_trace(i, 0.5 * i) for i in range(6)]
    parsed = parse_trace_batch(export_traces(roots))
    assert [r.trace_id for r in parsed] == [r.trace_id for r in roots]
    assert export_traces(parsed) == export_traces(roots)


# ----------------------------------------------------------------------
# Pipeline: localization -> propagation -> estimation
# ----------------------------------------------------------------------
def test_round_produces_scg_recommendation():
    plane = ControlPlane(small_config())
    knee_snapshots(plane)
    plane.ingest_traces(export_traces(
        [synthetic_trace(i, 0.5 * i) for i in range(30)]))
    record = plane.tick()
    assert record.critical_service == "cart"
    assert record.controller == "service"
    assert record.wall_ms is None  # wall clocks never enter the log
    rec = plane.recommendations["cart"]
    assert rec.method in ("knee", "argmax")
    assert 1 <= rec.allocation <= plane.config.max_allocation
    # Upstream front-end self time shrinks cart's propagated budget.
    assert rec.threshold < plane.config.sla
    assert rec.threshold >= (plane.config.sla
                             * plane.config.floor_fraction)
    status = plane.status()
    assert status["recommendations"] == 1
    assert status["recommendation_latency"]["count"] >= 1
    assert status["decisions_per_sec"] is None or \
        status["decisions_per_sec"] > 0
    assert status["slo"]["observed"] >= 1


def test_utilization_only_series_are_screened_not_estimated():
    plane = ControlPlane(small_config())
    knee_snapshots(plane)
    # cart-db appears with utilization only (no pair telemetry): it
    # may win the correlation ranking but must never be "decided".
    roots = []
    for index in range(20):
        root = synthetic_trace(index, 0.7 * index)
        cart = root.children[0]
        db = Span(trace_id=root.trace_id, service="cart-db",
                  operation="query",
                  arrival=_t.cast(float, cart.started) + 0.001,
                  parent=cart)
        db.started = db.arrival
        db.departure = db.arrival + 0.12 + 0.01 * (index % 5)
        roots.append(root)
    plane.ingest_traces(export_traces(roots))
    plane.ingest_metrics(render_snapshot(
        1000.0, {"cart-db": 0.99, "cart": 0.9}, {"cart": 5.0},
        {"cart": 80.0}))
    record = plane.tick()
    decided = {decision.target for decision in record.decisions}
    assert "cart-db" not in decided
    assert decided <= {"cart"}


def test_no_signal_round_holds_without_decisions():
    plane = ControlPlane(small_config())
    record = plane.tick(now=5.0)
    assert record.decisions == ()
    assert record.critical_service is None
    assert plane.recommendations == {}


def test_rounds_advance_logical_clock_monotonically():
    plane = ControlPlane(small_config())
    plane.ingest_metrics(render_snapshot(
        10.0, {"cart": 0.5}, {"cart": 1.0}, {"cart": 5.0}))
    assert plane.now == 10.0
    plane.tick(now=4.0)  # stale tick cannot rewind the clock
    assert plane.now == 10.0


# ----------------------------------------------------------------------
# Back-pressure
# ----------------------------------------------------------------------
def test_backpressure_when_ingestion_outpaces_cadence():
    plane = ControlPlane(small_config(max_pending=3))
    snapshot = render_snapshot(1.0, {"cart": 0.5}, {"cart": 1.0},
                               {"cart": 5.0})
    for _ in range(3):
        plane.ingest_metrics(snapshot)
    with pytest.raises(IngestError) as excinfo:
        plane.ingest_metrics(snapshot)
    assert excinfo.value.code == "backpressure"
    # A control round drains the queue and re-opens ingestion.
    plane.tick()
    assert plane.pending == 0
    plane.ingest_metrics(snapshot)
    assert plane.pending == 1


def test_series_limit_is_enforced():
    plane = ControlPlane(small_config(max_series=2))
    plane.ingest_metrics(render_snapshot(
        1.0, {}, {"a": 1.0, "b": 1.0}, {"a": 5.0, "b": 5.0}))
    with pytest.raises(IngestError) as excinfo:
        plane.ingest_metrics(render_snapshot(
            2.0, {}, {"c": 1.0}, {"c": 5.0}))
    assert excinfo.value.code == "series-limit"


def test_stale_snapshot_is_rejected_before_any_mutation():
    plane = ControlPlane(small_config())
    plane.ingest_metrics(render_snapshot(
        10.0, {"cart": 0.9}, {"cart": 3.0}, {"cart": 20.0}))
    pending = plane.pending
    # "aaa" sorts before "cart": under a partial apply it would have
    # been tracked before the time regression on cart blew up.
    with pytest.raises(IngestError) as excinfo:
        plane.ingest_metrics(render_snapshot(
            5.0, {}, {"aaa": 1.0, "cart": 4.0},
            {"aaa": 2.0, "cart": 21.0}))
    assert excinfo.value.code == "stale-snapshot"
    assert "cart" in excinfo.value.detail
    # Nothing mutated: no new series, no queued snapshot, no samples.
    assert "aaa" not in plane._series
    assert plane.pending == pending
    assert plane._series["cart"].snapshots == 1
    assert plane.now == 10.0
    # Ingestion at a non-regressing time still works afterwards.
    plane.ingest_metrics(render_snapshot(
        10.0, {}, {"cart": 5.0}, {"cart": 22.0}))
    assert plane._series["cart"].snapshots == 2


def test_stale_utilization_only_snapshot_still_enriches():
    # Utilization-only readings append no time-series samples, so a
    # regressing clock must not reject them.
    plane = ControlPlane(small_config())
    plane.ingest_metrics(render_snapshot(
        10.0, {"cart": 0.5}, {"cart": 3.0}, {"cart": 20.0}))
    plane.ingest_metrics(render_snapshot(
        5.0, {"cart": 0.8, "cart-db": 0.99}, {"other": 1.0},
        {"other": 2.0}))
    assert plane._series["cart"].utilization == 0.8
    assert plane._series["cart"].snapshots == 1


# ----------------------------------------------------------------------
# Audit replay byte-identity
# ----------------------------------------------------------------------
def drive_with_journal(journal: AuditJournal,
                       config: ServiceConfig) -> ControlPlane:
    """A small live session, journaling every accepted stimulus."""
    plane = ControlPlane(config)
    rng = np.random.default_rng(3)
    for index in range(30):
        q = 1.0 + (index % 15)
        rate = max(0.0, 25.0 * q / (1.0 + q / 8.0)
                   + rng.normal(0.0, 1.0))
        body = render_snapshot(float(index + 1), {"cart": 0.9},
                               {"cart": q}, {"cart": rate},
                               {"cart": 4})
        plane.ingest_metrics(body)
        journal.record("metrics", plane.now, body)
        if index % 9 == 8:
            batch = export_traces(
                [synthetic_trace(index * 10 + j, index + 0.1 * j)
                 for j in range(5)])
            plane.ingest_traces(batch)
            journal.record("traces", plane.now, batch)
        if index % 10 == 9:
            record = plane.tick(now=plane.now + config.cadence)
            journal.record("tick", record.time)
    return plane


def test_audit_replay_is_byte_identical(tmp_path):
    config = small_config()
    journal_path = tmp_path / "journal.jsonl"
    decisions_path = tmp_path / "decisions.jsonl"
    journal = AuditJournal(journal_path)
    plane = drive_with_journal(journal, config)
    journal.close()
    decisions_path.write_text(plane.decisions_jsonl(),
                              encoding="utf-8")
    assert plane.rounds == 3 and plane.decisions_made >= 1

    entries = read_journal(journal_path)
    assert len(entries) == len(journal)
    replayed = replay_journal(entries, config)
    assert replayed.decisions_jsonl() == plane.decisions_jsonl()

    identical, detail = verify_replay(journal_path, decisions_path,
                                      config)
    assert identical, detail
    assert "byte-identical" in detail


def test_replay_detects_tampered_decisions(tmp_path):
    config = small_config()
    journal_path = tmp_path / "journal.jsonl"
    decisions_path = tmp_path / "decisions.jsonl"
    journal = AuditJournal(journal_path)
    plane = drive_with_journal(journal, config)
    journal.close()
    tampered = plane.decisions_jsonl().replace(
        '"controller": "service"', '"controller": "rogue"', 1)
    decisions_path.write_text(tampered, encoding="utf-8")
    identical, detail = verify_replay(journal_path, decisions_path,
                                      config)
    assert not identical
    assert "divergence" in detail or "length mismatch" in detail


def test_journal_rejects_unknown_entry_kind(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text(json.dumps({"kind": "mystery", "time": 1.0}) + "\n",
                    encoding="utf-8")
    with pytest.raises(ValueError, match="unknown journal entry"):
        read_journal(path)
