"""Chaos testing: every perturbation at once, invariants must hold.

One Sock Shop run under load while vertical scaling, horizontal
scaling, pool resizing, demand drift, and request interruption all
happen concurrently. The system must conserve requests, keep pool
accounting consistent, and remain deterministic.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.app.topologies import build_sock_shop
from repro.sim import Environment, Interrupt, RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace


def chaotic_run(seed, *, duration=40.0, interrupt_some=False):
    env = Environment()
    streams = RandomStreams(seed)
    app = build_sock_shop(env, streams, cart_threads=6)
    cart = app.service("cart")
    rng = streams.stream("chaos")
    trace = WorkloadTrace("flat", duration, 150, 150, lambda u: 1.0)
    driver = ClosedLoopDriver(env, app, "cart", trace,
                              streams.stream("drv"), ramp_up=3.0)

    def chaos(env):
        while env.now < duration - 5.0:
            yield env.timeout(float(rng.uniform(2.0, 5.0)))
            action = int(rng.integers(5))
            if action == 0:
                cart.set_cores(float(rng.choice([1.0, 2.0, 4.0])))
            elif action == 1:
                cart.scale_replicas(int(rng.integers(1, 4)))
            elif action == 2:
                cart.set_thread_pool_size(int(rng.integers(2, 20)))
            elif action == 3:
                cart.demand_scale = float(rng.uniform(0.5, 2.5))
            else:
                app.service("cart-db").demand_scale = \
                    float(rng.uniform(0.5, 2.0))

    interrupted = []

    def sniper(env):
        while env.now < duration - 5.0:
            yield env.timeout(float(rng.uniform(1.0, 3.0)))
            request, process = app.submit("cart")
            yield env.timeout(0.002)
            if process.is_alive:
                process.interrupt(cause="chaos")
                interrupted.append(request)

    env.process(chaos(env), name="chaos")
    if interrupt_some:
        env.process(sniper(env), name="sniper")
    driver.start()
    env.run()  # to exhaustion: the population drains after the trace
    return env, app, cart, interrupted


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 1000))
def test_conservation_under_chaos(seed):
    env, app, cart, _ = chaotic_run(seed)
    # Everything submitted either completed or is no longer in flight.
    assert app.in_flight == 0
    assert app.latency["cart"].total == app.total_submitted
    # Pool accounting clean on every replica that still exists.
    for replica in cart.replicas:
        assert replica.server_pool.in_use == 0
        assert replica.active_requests == 0


def test_interrupts_do_not_corrupt_accounting():
    env, app, cart, interrupted = chaotic_run(99, interrupt_some=True)
    assert interrupted, "sniper never fired"
    completed = app.latency["cart"].total
    # Interrupted requests never complete; everything else does.
    assert completed == app.total_submitted - len(interrupted)
    assert app.in_flight == 0
    for replica in cart.replicas:
        assert replica.server_pool.in_use == 0


def test_chaos_is_deterministic():
    def fingerprint(seed):
        _env, app, _cart, _ = chaotic_run(seed)
        times, latencies = app.latency["cart"].window()
        return (times.size, float(np.sum(times)),
                float(np.sum(latencies)))

    assert fingerprint(7) == fingerprint(7)


def test_unhandled_interrupt_does_not_kill_simulation():
    # The sniper interrupts requests nobody waits on; the run must
    # proceed to completion regardless.
    env, app, _cart, interrupted = chaotic_run(3, interrupt_some=True)
    assert env.now > 40.0
    assert app.latency["cart"].total > 1000
