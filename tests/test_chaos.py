"""Chaos testing: every perturbation at once, invariants must hold.

One Sock Shop run under load while vertical scaling, horizontal
scaling, pool resizing, demand drift, and request interruption all
happen concurrently. The system must conserve requests, keep pool
accounting consistent, and remain deterministic.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.app.topologies import build_sock_shop
from repro.faults import FaultInjector, FaultPlan
from repro.sim import Environment, Interrupt, RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace

#: Structured chaos layered on top of the random kind below: every
#: fault kind fires at least once inside the 40 s run.
FAULT_PLAN = FaultPlan.from_dict({"faults": [
    {"kind": "crash", "service": "cart-db", "at": 8.0, "mode": "drop",
     "restart_after": 3.0},
    {"kind": "interference", "service": "cart", "at": 14.0,
     "duration": 6.0, "demand_factor": 2.0, "core_steal": 0.25},
    {"kind": "edge-latency", "caller": "cart", "callee": "cart-db",
     "at": 18.0, "duration": 5.0, "delay": 0.01, "jitter": 0.5},
    {"kind": "edge-failure", "caller": "front-end", "callee": "cart",
     "at": 24.0, "duration": 4.0, "probability": 0.3},
    {"kind": "blackout", "service": "cart", "at": 29.0, "duration": 4.0,
     "replicas": 2},
]})


def chaotic_run(seed, *, duration=40.0, interrupt_some=False,
                fault_plan=None):
    env = Environment()
    streams = RandomStreams(seed)
    app = build_sock_shop(env, streams, cart_threads=6)
    cart = app.service("cart")
    rng = streams.stream("chaos")
    trace = WorkloadTrace("flat", duration, 150, 150, lambda u: 1.0)
    driver = ClosedLoopDriver(env, app, "cart", trace,
                              streams.stream("drv"), ramp_up=3.0)

    def chaos(env):
        while env.now < duration - 5.0:
            yield env.timeout(float(rng.uniform(2.0, 5.0)))
            action = int(rng.integers(5))
            if action == 0:
                cart.set_cores(float(rng.choice([1.0, 2.0, 4.0])))
            elif action == 1:
                cart.scale_replicas(int(rng.integers(1, 4)))
            elif action == 2:
                cart.set_thread_pool_size(int(rng.integers(2, 20)))
            elif action == 3:
                cart.demand_scale = float(rng.uniform(0.5, 2.5))
            else:
                app.service("cart-db").demand_scale = \
                    float(rng.uniform(0.5, 2.0))

    interrupted = []

    def sniper(env):
        while env.now < duration - 5.0:
            yield env.timeout(float(rng.uniform(1.0, 3.0)))
            request, process = app.submit("cart")
            yield env.timeout(0.002)
            if process.is_alive:
                process.interrupt(cause="chaos")
                interrupted.append(request)

    env.process(chaos(env), name="chaos")
    if interrupt_some:
        env.process(sniper(env), name="sniper")
    if fault_plan is not None:
        FaultInjector(env, app, fault_plan, streams).start()
    driver.start()
    env.run()  # to exhaustion: the population drains after the trace
    return env, app, cart, interrupted


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 1000))
def test_conservation_under_chaos(seed):
    env, app, cart, _ = chaotic_run(seed)
    # Everything submitted either completed or is no longer in flight.
    assert app.in_flight == 0
    assert app.latency["cart"].total == app.total_submitted
    # Pool accounting clean on every replica that still exists.
    for replica in cart.replicas:
        assert replica.server_pool.in_use == 0
        assert replica.active_requests == 0


def test_interrupts_do_not_corrupt_accounting():
    env, app, cart, interrupted = chaotic_run(99, interrupt_some=True)
    assert interrupted, "sniper never fired"
    completed = app.latency["cart"].total
    # Interrupted requests never complete; everything else does.
    assert completed == app.total_submitted - len(interrupted)
    assert app.in_flight == 0
    for replica in cart.replicas:
        assert replica.server_pool.in_use == 0


def test_chaos_is_deterministic():
    def fingerprint(seed):
        _env, app, _cart, _ = chaotic_run(seed)
        times, latencies = app.latency["cart"].window()
        return (times.size, float(np.sum(times)),
                float(np.sum(latencies)))

    assert fingerprint(7) == fingerprint(7)


def test_unhandled_interrupt_does_not_kill_simulation():
    # The sniper interrupts requests nobody waits on; the run must
    # proceed to completion regardless.
    env, app, _cart, interrupted = chaotic_run(3, interrupt_some=True)
    assert env.now > 40.0
    assert app.latency["cart"].total > 1000


# ----------------------------------------------------------------------
# Structured chaos: the same invariants with a FaultPlan layered on top
# ----------------------------------------------------------------------
@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 1000))
def test_conservation_under_fault_plan(seed):
    env, app, cart, _ = chaotic_run(seed, fault_plan=FAULT_PLAN)
    assert app.in_flight == 0
    # Fault-failed requests are accounted, never lost.
    assert app.latency["cart"].total + app.failed_total == \
        app.total_submitted
    assert app.failed_total > 0  # the crash window guarantees some
    for replica in cart.replicas:
        assert replica.server_pool.in_use == 0
        assert replica.active_requests == 0
    for service in app.services.values():
        assert not service._inflight
        for pool in service.client_pools.values():
            assert pool.in_use == 0


def test_fault_plan_with_sniper_interrupts():
    env, app, cart, interrupted = chaotic_run(
        99, interrupt_some=True, fault_plan=FAULT_PLAN)
    assert interrupted, "sniper never fired"
    completed = app.latency["cart"].total
    # Sniper-interrupted requests die uncounted; fault-failed requests
    # land in failed_total; everything else completes.
    assert completed + app.failed_total == \
        app.total_submitted - len(interrupted)
    assert app.in_flight == 0
    for replica in cart.replicas:
        assert replica.server_pool.in_use == 0


def test_fault_plan_chaos_is_deterministic():
    def fingerprint(seed):
        _env, app, _cart, _ = chaotic_run(seed, fault_plan=FAULT_PLAN)
        times, latencies = app.latency["cart"].window()
        return (times.size, app.failed_total, float(np.sum(times)),
                float(np.sum(latencies)))

    assert fingerprint(7) == fingerprint(7)
