"""HTTP layer of the control-plane service.

Exercises :class:`repro.service.ControllerService` over real sockets
with a hand-rolled ``asyncio`` HTTP/1.1 client (the test image has no
async pytest plugin, so every scenario is a coroutine run under
``asyncio.run``): lifecycle happy path, the typed rejection mapping
(400 with the strict parser's taxonomy, 429 + ``Retry-After`` under
back-pressure), self-telemetry round-tripping through the strict
OpenMetrics parser, and on-disk artifact flushing at shutdown.
"""

import asyncio
import json

import numpy as np

from repro.core.scg import ScatterModelConfig
from repro.obs import parse_openmetrics
from repro.service import (
    ControllerService,
    ServiceConfig,
    render_snapshot,
    verify_replay,
)
from repro.tracing.export import export_traces
from repro.tracing.span import Span


def service_config(**overrides) -> ServiceConfig:
    """Service config sized for handfuls of snapshots."""
    defaults = dict(
        exclude=("front-end",),
        scatter=ScatterModelConfig(min_samples=20, min_distinct=4,
                                   quantum=1.0))
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def trace_batch(count: int = 12, start: float = 0.0) -> str:
    """front-end -> cart traces as a Jaeger-shaped document."""
    roots = []
    for index in range(count):
        arrival = start + 0.5 * index
        root = Span(trace_id=index + 1, service="front-end",
                    operation="request", arrival=arrival)
        root.started = arrival
        child = Span(trace_id=index + 1, service="cart",
                     operation="cart", arrival=arrival + 0.01,
                     parent=root)
        child.started = child.arrival + 0.002
        child.departure = child.arrival + 0.2 + 0.01 * (index % 5)
        root.departure = child.departure + 0.01
        roots.append(root)
    return export_traces(roots)


def knee_snapshot(index: int) -> str:
    """One scrape along a saturating goodput curve for cart."""
    rng = np.random.default_rng(100 + index)
    q = 1.0 + (index % 20)
    rate = max(0.0, 30.0 * q / (1.0 + q / 10.0)
               + rng.normal(0.0, 1.5))
    return render_snapshot(float(index + 1),
                           {"cart": 0.92, "front-end": 0.30},
                           {"cart": q}, {"cart": rate}, {"cart": 5})


async def request(port: int, method: str, path: str,
                  body: str | bytes | None = None,
                  content_type: str = "text/plain"
                  ) -> tuple[int, dict, str]:
    """One raw HTTP/1.1 exchange; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = (body.encode("utf-8") if isinstance(body, str)
               else body or b"")
    head = [f"{method} {path} HTTP/1.1", "Host: test",
            "Connection: close"]
    if payload or method == "POST":
        head.append(f"Content-Type: {content_type}")
        head.append(f"Content-Length: {len(payload)}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii")
                 + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head_bytes, _sep, body_bytes = raw.partition(b"\r\n\r\n")
    lines = head_bytes.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _sep2, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body_bytes.decode("utf-8")


async def started_service(config: ServiceConfig,
                          **kwargs) -> ControllerService:
    """A bound service on an ephemeral port, cadence timer off."""
    service = ControllerService(config, port=0, cadence=0.0, **kwargs)
    await service.start()
    return service


def test_happy_path_serves_scg_recommendation(tmp_path):
    journal = tmp_path / "journal.jsonl"
    decisions = tmp_path / "decisions.jsonl"
    config = service_config()

    async def scenario() -> None:
        service = await started_service(
            config, journal_path=journal, decisions_path=decisions)
        port = service.port
        assert port != 0

        status, _headers, body = await request(port, "GET", "/healthz")
        assert status == 200 and json.loads(body)["status"] == "ok"
        status, _headers, body = await request(port, "GET", "/config")
        assert status == 200
        assert json.loads(body)["families"]["rate"] == "sora_goodput"

        for index in range(40):
            status, _headers, body = await request(
                port, "POST", "/ingest/openmetrics",
                knee_snapshot(index),
                content_type="application/openmetrics-text")
            assert status == 202, body
        status, _headers, body = await request(
            port, "POST", "/ingest/jaeger", trace_batch(),
            content_type="application/json")
        assert status == 202
        assert json.loads(body)["traces"] == 12

        status, _headers, body = await request(
            port, "POST", "/control/tick")
        assert status == 200
        reply = json.loads(body)
        assert reply["round"]["critical_service"] == "cart"
        rec = reply["recommendations"]["cart"]
        assert rec["method"] in ("knee", "argmax")
        assert rec["allocation"] >= 1

        status, _headers, body = await request(
            port, "GET", "/recommendations/cart")
        assert status == 200
        assert json.loads(body)["service"] == "cart"
        status, _headers, body = await request(port, "GET", "/status")
        payload = json.loads(body)
        assert payload["rounds"] == 1
        assert payload["recommendation_latency"]["count"] >= 1
        assert payload["slo"]["observed"] >= 1

        status, headers, body = await request(
            port, "GET", "/decisions")
        assert status == 200
        assert headers["content-type"] == "application/x-ndjson"
        assert body == service.plane.decisions_jsonl()
        status, _headers, body = await request(port, "GET", "/report")
        assert status == 200 and "sora-service" in body

        status, _headers, body = await request(
            port, "POST", "/admin/shutdown")
        assert status == 200
        await asyncio.wait_for(service.serve_until_shutdown(), 10.0)

    asyncio.run(scenario())
    # Artifacts were flushed at shutdown and replay is byte-exact.
    identical, detail = verify_replay(journal, decisions, config)
    assert identical, detail


def test_rejections_map_ingest_taxonomy_onto_http():
    async def scenario() -> None:
        service = await started_service(service_config())
        port = service.port
        try:
            status, _headers, body = await request(
                port, "POST", "/ingest/openmetrics",
                "sora_concurrency 1\n# EOF\n")
            assert status == 400
            payload = json.loads(body)
            assert payload["error"] == "bad-openmetrics"
            assert "without # TYPE" in payload["detail"]

            status, _headers, body = await request(
                port, "POST", "/ingest/openmetrics",
                "# TYPE sora_concurrency gauge\nsora_concurrency 1\n")
            assert status == 400
            assert ("missing # EOF terminator"
                    in json.loads(body)["detail"])

            status, _headers, body = await request(
                port, "POST", "/ingest/jaeger", "{nope")
            assert status == 400
            assert json.loads(body)["error"] == "bad-json"

            # A time-regressing snapshot is rejected atomically: 400,
            # no state change, not journaled.
            status, _headers, _body = await request(
                port, "POST", "/ingest/openmetrics",
                render_snapshot(10.0, {"cart": 0.5}, {"cart": 1.0},
                                {"cart": 5.0}))
            assert status == 202
            status, _headers, body = await request(
                port, "POST", "/ingest/openmetrics",
                render_snapshot(4.0, {"cart": 0.5}, {"cart": 2.0},
                                {"cart": 6.0}))
            assert status == 400
            assert json.loads(body)["error"] == "stale-snapshot"

            # Rejected payloads never reach state or the journal.
            assert service.plane.snapshots_ingested == 1
            assert len(service.journal) == 1

            status, _headers, body = await request(
                port, "GET", "/nope")
            assert status == 404
            status, _headers, body = await request(
                port, "GET", "/recommendations/ghost")
            assert status == 404
            status, _headers, body = await request(
                port, "DELETE", "/status")
            assert status == 405
        finally:
            await service.stop()

    asyncio.run(scenario())


def test_backpressure_returns_429_with_retry_after():
    async def scenario() -> None:
        service = await started_service(
            service_config(max_pending=2))
        port = service.port
        try:
            snapshot = render_snapshot(1.0, {"cart": 0.5},
                                       {"cart": 1.0}, {"cart": 5.0})
            for _ in range(2):
                status, _headers, _body = await request(
                    port, "POST", "/ingest/openmetrics", snapshot)
                assert status == 202
            status, headers, body = await request(
                port, "POST", "/ingest/openmetrics", snapshot)
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert json.loads(body)["error"] == "backpressure"
            # A control round drains the queue and re-opens ingestion.
            status, _headers, _body = await request(
                port, "POST", "/control/tick")
            assert status == 200
            status, _headers, _body = await request(
                port, "POST", "/ingest/openmetrics", snapshot)
            assert status == 202
        finally:
            await service.stop()

    asyncio.run(scenario())


def test_metrics_endpoint_round_trips_strict_parser():
    async def scenario() -> None:
        service = await started_service(service_config())
        port = service.port
        try:
            for index in range(3):
                await request(port, "POST", "/ingest/openmetrics",
                              knee_snapshot(index))
            await request(port, "POST", "/control/tick")
            status, headers, body = await request(
                port, "GET", "/metrics")
            assert status == 200
            assert headers["content-type"].startswith(
                "application/openmetrics-text")
            families = parse_openmetrics(body)
            assert "repro_service_snapshots" in families
            assert "repro_service_rounds" in families
            assert "repro_slo_compliance" in families
        finally:
            await service.stop()

    asyncio.run(scenario())


def test_malformed_http_head_is_rejected_not_fatal():
    async def scenario() -> None:
        service = await started_service(service_config())
        port = service.port
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b"NOT-EVEN-HTTP\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            assert b"400" in raw.split(b"\r\n", 1)[0]
            # The server survives and keeps answering.
            status, _headers, _body = await request(
                port, "GET", "/healthz")
            assert status == 200
        finally:
            await service.stop()

    asyncio.run(scenario())


def test_oversized_request_head_returns_413():
    async def scenario() -> None:
        service = await started_service(service_config())
        port = service.port
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b"GET /healthz HTTP/1.1\r\nHost: test\r\n"
                         b"X-Pad: " + b"a" * (80 * 1024)
                         + b"\r\nConnection: close\r\n\r\n")
            try:
                await writer.drain()
            except ConnectionError:
                pass  # server may answer and close mid-send
            raw = await reader.read()
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
            assert b"413" in raw.split(b"\r\n", 1)[0]
            status, _headers, _body = await request(
                port, "GET", "/healthz")
            assert status == 200
        finally:
            await service.stop()

    asyncio.run(scenario())


def test_cadence_loop_survives_tick_failure():
    async def scenario() -> None:
        service = ControllerService(service_config(), port=0,
                                    cadence=0.01)
        ticks = []

        def exploding_tick() -> dict:
            ticks.append(1)
            raise RuntimeError("persistence blew up")

        service._tick = exploding_tick  # type: ignore[method-assign]
        await service.start()
        try:
            for _ in range(200):
                if len(ticks) >= 2:
                    break
                await asyncio.sleep(0.01)
            # The loop logged and kept going past the failures...
            assert len(ticks) >= 2
            assert service._cadence_task is not None
            assert not service._cadence_task.done()
            # ...and the HTTP API never stopped serving.
            status, _headers, _body = await request(
                service.port, "GET", "/healthz")
            assert status == 200
        finally:
            # stop() must swallow the task's stored state cleanly.
            await service.stop()

    asyncio.run(scenario())


def test_internal_errors_return_generic_500_body():
    async def scenario() -> None:
        service = await started_service(service_config())
        port = service.port

        def boom() -> dict:
            raise RuntimeError("/secret/path leaked from the server")

        service.plane.status = boom  # type: ignore[method-assign]
        try:
            status, _headers, body = await request(
                port, "GET", "/status")
            assert status == 500
            payload = json.loads(body)
            assert payload == {"error": "internal",
                               "detail": "internal server error"}
            assert "secret" not in body
            status, _headers, _body = await request(
                port, "GET", "/healthz")
            assert status == 200
        finally:
            await service.stop()

    asyncio.run(scenario())
