"""Property tests holding every generated scenario to the invariants.

Arbitrary valid parameter draws must always yield schedulable DAGs,
structurally deterministic builds, byte-identical same-seed replays,
and request conservation (``completed + failed == submitted``) under
fault plans — the same standards the hand-built topologies earned in
earlier PRs, enforced over the whole generator parameter space.
"""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings

from repro.scenarios import (
    ZOO_FAULT_KINDS,
    build_topology,
    structural_diff,
    topology_fingerprint,
    topology_to_dict,
    zoo_fault_plan,
)
from repro.sim import Environment, RandomStreams
from repro.validation import InvariantChecker, RunRecorder
from repro.validation.strategies import zoo_params
from repro.workloads import OpenLoopDriver

RELAXED = settings(max_examples=30, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])
SIMULATING = settings(max_examples=8, deadline=None,
                      suppress_health_check=[HealthCheck.too_slow])


@given(params=zoo_params())
@RELAXED
def test_every_draw_builds_a_schedulable_dag(params):
    app = build_topology(Environment(), RandomStreams(3), params).app
    app.validate()  # entrypoints resolve, no dangling calls
    graph = app.call_graph()
    assert nx.is_directed_acyclic_graph(graph)
    # The entry reaches every service: nothing unreachable/dead.
    reachable = nx.descendants(graph, "gateway") | {"gateway"}
    assert reachable == set(app.services)


@given(params=zoo_params())
@RELAXED
def test_same_params_build_identical_structures(params):
    first = build_topology(Environment(), RandomStreams(11), params).app
    second = build_topology(Environment(), RandomStreams(11), params).app
    assert structural_diff(topology_to_dict(first),
                           topology_to_dict(second)) == []
    assert topology_fingerprint(first) == topology_fingerprint(second)


def _run_once(params, fault_kind, seed, duration=3.0, check=False):
    """One short, drained open-loop run; returns (digest, app)."""
    env = Environment()
    streams = RandomStreams(seed)
    topology = build_topology(env, streams, params)
    app = topology.app
    if fault_kind != "none":
        from repro.faults import FaultInjector

        plan = zoo_fault_plan(params, fault_kind, at=0.5, duration=1.0)
        FaultInjector(env, app, plan, streams).start()
    checker = InvariantChecker(env, app).arm() if check else None
    recorder = RunRecorder(env, keep_events=False)
    driver = OpenLoopDriver(env, app, "zoo", 40.0,
                            streams.stream("driver"), duration=duration)
    driver.start()
    env.run(until=duration + 8.0)
    if checker is not None:
        checker.verify_quiescent()
    return recorder.finish(app).digest, app


@given(params=zoo_params())
@SIMULATING
def test_same_seed_runs_are_byte_identical(params):
    first, _ = _run_once(params, "none", seed=7)
    second, _ = _run_once(params, "none", seed=7)
    assert first == second


@pytest.mark.parametrize("fault_kind",
                         [k for k in ZOO_FAULT_KINDS if k != "none"])
@given(params=zoo_params())
@SIMULATING
def test_conservation_under_fault_plans(fault_kind, params):
    if fault_kind == "blackout" and params.replicas < 2:
        params = type(params).from_dict(
            {**params.to_dict(), "replicas": 2})
    digest, app = _run_once(params, fault_kind, seed=13, check=True)
    completed = sum(log.total for log in app.latency.values())
    assert completed + app.failed_total == app.total_submitted
    assert app.in_flight == 0
    # Determinism holds under injected faults too.
    rerun, _ = _run_once(params, fault_kind, seed=13)
    assert rerun == digest
