"""Tests for targets, the concurrency estimator, and monitoring."""

import pytest

from repro.app import Application, Call, Compute, Microservice, Operation
from repro.core import (
    ClientPoolTarget,
    ConcurrencyEstimator,
    EstimatorConfig,
    MonitoringModule,
    SCGModel,
    ThreadPoolTarget,
)
from repro.sim import Constant, Environment, Exponential, RandomStreams
from repro.workloads import OpenLoopDriver


def build_app(env, streams, *, threads=4, conns=None, demand=0.01):
    app = Application(env)
    svc = Microservice(env, "svc", streams.stream("svc"), cores=2.0,
                       thread_pool_size=threads)
    backend = Microservice(env, "backend", streams.stream("be"), cores=4.0)
    backend.add_operation(Operation("default", [Compute(Constant(0.002))]))
    steps = [Compute(Exponential(demand))]
    if conns is not None:
        svc.add_client_pool("db", conns)
        steps.append(Call("backend", via_pool="db"))
    else:
        steps.append(Call("backend"))
    svc.add_operation(Operation("default", steps))
    app.add_service(svc)
    app.add_service(backend)
    app.set_entrypoint("go", "svc", "default")
    return app


class TestThreadPoolTarget:
    def test_requires_thread_pool(self):
        env = Environment()
        svc = Microservice(env, "async", RandomStreams(0).stream("x"))
        with pytest.raises(ValueError):
            ThreadPoolTarget(svc)

    def test_allocation_and_apply(self):
        env = Environment()
        streams = RandomStreams(0)
        app = build_app(env, streams, threads=4)
        target = ThreadPoolTarget(app.service("svc"))
        assert target.name == "svc.threads"
        assert target.allocation() == 4
        target.apply(9)
        assert target.allocation() == 9
        assert app.service("svc").thread_pool_size == 9

    def test_total_allocation_scales_with_replicas(self):
        env = Environment()
        streams = RandomStreams(0)
        app = build_app(env, streams, threads=4)
        app.service("svc").scale_replicas(3)
        target = ThreadPoolTarget(app.service("svc"))
        assert target.total_allocation() == 12

    def test_apply_invalid(self):
        env = Environment()
        app = build_app(env, RandomStreams(0))
        with pytest.raises(ValueError):
            ThreadPoolTarget(app.service("svc")).apply(0)

    def test_concurrency_integral_advances_under_load(self):
        env = Environment()
        streams = RandomStreams(0)
        app = build_app(env, streams)
        target = ThreadPoolTarget(app.service("svc"))
        before = target.concurrency_integral()
        driver = OpenLoopDriver(env, app, "go", rate=100.0,
                                rng=streams.stream("arr"), duration=5.0)
        driver.start()
        env.run()
        assert target.concurrency_integral() > before


class TestClientPoolTarget:
    def test_requires_existing_pool(self):
        env = Environment()
        streams = RandomStreams(0)
        app = build_app(env, streams, conns=3)
        with pytest.raises(ValueError):
            ClientPoolTarget(app.service("svc"), "nope",
                             app.service("backend"))

    def test_apply_multiplies_by_downstream_replicas(self):
        env = Environment()
        streams = RandomStreams(0)
        app = build_app(env, streams, conns=3)
        backend = app.service("backend")
        backend.scale_replicas(4)
        target = ClientPoolTarget(app.service("svc"), "db", backend)
        target.apply(5)
        assert target.pool.capacity == 20
        assert target.allocation() == 5
        assert target.total_allocation() == 20

    def test_completions_come_from_downstream(self):
        env = Environment()
        streams = RandomStreams(0)
        app = build_app(env, streams, conns=3)
        target = ClientPoolTarget(app.service("svc"), "db",
                                  app.service("backend"))
        driver = OpenLoopDriver(env, app, "go", rate=50.0,
                                rng=streams.stream("arr"), duration=5.0)
        driver.start()
        env.run()
        latencies = target.completion_latencies(0.0, env.now + 1.0)
        assert latencies.size == app.service("backend").metrics.\
            total_completed


class TestEstimatorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EstimatorConfig(sampling_interval=0.0)
        with pytest.raises(ValueError):
            EstimatorConfig(window=0.05, sampling_interval=0.1)
        with pytest.raises(ValueError):
            EstimatorConfig(update_period=0.0)


class TestConcurrencyEstimator:
    def test_produces_estimates_under_load(self):
        env = Environment()
        streams = RandomStreams(1)
        # Bursty load so the observed concurrency spans many levels.
        app = build_app(env, streams, threads=8, demand=0.02)
        target = ThreadPoolTarget(app.service("svc"))
        estimator = ConcurrencyEstimator(
            env, target, SCGModel(), threshold_provider=lambda: 0.3,
            config=EstimatorConfig(window=30.0, update_period=5.0))
        estimator.start()
        driver = OpenLoopDriver(
            env, app, "go",
            rate=lambda t: 110.0 if (t % 20.0) < 10.0 else 25.0,
            rng=streams.stream("arr"), duration=60.0)
        driver.start()
        env.run(until=62.0)
        assert estimator.latest is not None
        assert estimator.recommendation() >= 1
        assert len(estimator.history) >= 1

    def test_no_data_yields_none(self):
        env = Environment()
        streams = RandomStreams(1)
        app = build_app(env, streams)
        target = ThreadPoolTarget(app.service("svc"))
        estimator = ConcurrencyEstimator(
            env, target, SCGModel(), threshold_provider=lambda: 0.3)
        estimator.start()
        env.run(until=20.0)
        assert estimator.estimate_now() is None
        assert estimator.recommendation() is None

    def test_sct_mode_uses_throughput(self):
        env = Environment()
        streams = RandomStreams(1)
        app = build_app(env, streams, threads=8, demand=0.02)
        target = ThreadPoolTarget(app.service("svc"))
        from repro.core import SCTModel
        estimator = ConcurrencyEstimator(
            env, target, SCTModel(), threshold_provider=None,
            config=EstimatorConfig(window=30.0, update_period=5.0))
        estimator.start()
        driver = OpenLoopDriver(
            env, app, "go",
            rate=lambda t: 110.0 if (t % 20.0) < 10.0 else 25.0,
            rng=streams.stream("arr"), duration=60.0)
        driver.start()
        env.run(until=62.0)
        assert estimator.latest is not None
        assert estimator.latest.threshold is None


class TestMonitoringModule:
    def test_utilization_tracks_load(self):
        env = Environment()
        streams = RandomStreams(1)
        app = build_app(env, streams, threads=16, demand=0.02)
        monitoring = MonitoringModule(env, app, interval=1.0)
        monitoring.start()
        # Saturating: 2 cores, demand 20ms -> capacity ~100/s at rate 90.
        driver = OpenLoopDriver(env, app, "go", rate=90.0,
                                rng=streams.stream("arr"), duration=30.0)
        driver.start()
        env.run(until=32.0)
        utilization = monitoring.utilization_over("svc", 20.0)
        assert 0.5 < utilization <= 1.05
        assert monitoring.utilization_over("backend", 20.0) < 0.3

    def test_idle_utilization_zero(self):
        env = Environment()
        app = build_app(env, RandomStreams(1))
        monitoring = MonitoringModule(env, app, interval=1.0)
        monitoring.start()
        env.run(until=10.0)
        assert monitoring.utilization_over("svc", 5.0) == 0.0

    def test_utilizations_covers_all_services(self):
        env = Environment()
        app = build_app(env, RandomStreams(1))
        monitoring = MonitoringModule(env, app, interval=1.0)
        monitoring.start()
        env.run(until=3.0)
        assert set(monitoring.utilizations(2.0)) == {"svc", "backend"}

    def test_retention_prunes_warehouse(self):
        env = Environment()
        streams = RandomStreams(1)
        app = build_app(env, streams)
        monitoring = MonitoringModule(env, app, interval=1.0,
                                      retention=10.0)
        monitoring.start()
        driver = OpenLoopDriver(env, app, "go", rate=50.0,
                                rng=streams.stream("arr"), duration=40.0)
        driver.start()
        env.run(until=45.0)
        # Only ~10s of traces retained out of 40s of traffic.
        assert len(app.warehouse) < 50 * 15

    def test_invalid_parameters(self):
        env = Environment()
        app = build_app(env, RandomStreams(1))
        with pytest.raises(ValueError):
            MonitoringModule(env, app, interval=0.0)
        with pytest.raises(ValueError):
            MonitoringModule(env, app, retention=0.0)
