"""Tests for samplers, latency summaries, goodput split, and MAPE."""

import numpy as np
import pytest

from repro.metrics import (
    ConcurrencyGoodputSampler,
    GoodputSplit,
    IntervalSampler,
    LatencySummary,
    TimeSeries,
    bucketed_percentile,
    bucketed_rate,
    goodput_split,
    mape,
    response_time_histogram,
)
from repro.sim import Environment


class TestTimeSeries:
    def test_append_and_window(self):
        series = TimeSeries()
        for t in [1.0, 2.0, 3.0]:
            series.append(t, t * 10)
        times, values = series.window(1.5, 3.0)
        assert list(times) == [2.0]
        assert list(values) == [20.0]

    def test_append_out_of_order_rejected(self):
        series = TimeSeries()
        series.append(2.0, 1.0)
        with pytest.raises(ValueError):
            series.append(1.0, 1.0)

    def test_latest(self):
        series = TimeSeries()
        series.append(1.0, 5.0)
        series.append(2.0, 7.0)
        assert series.latest() == (2.0, 7.0)

    def test_latest_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().latest()

    def test_prune(self):
        series = TimeSeries()
        for t in [1.0, 2.0, 3.0]:
            series.append(t, t)
        series.prune(2.5)
        assert len(series) == 1


class TestIntervalSampler:
    def test_samples_at_interval(self):
        env = Environment()
        counter = {"n": 0}

        def probe():
            counter["n"] += 1
            return counter["n"]

        sampler = IntervalSampler(env, probe, interval=1.0)
        sampler.start()
        env.run(until=5.5)
        times, values = sampler.series.window()
        assert list(times) == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert list(values) == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]

    def test_stop_halts_sampling(self):
        env = Environment()
        sampler = IntervalSampler(env, lambda: 1.0, interval=1.0)
        sampler.start()

        def stopper(env):
            yield env.timeout(2.5)
            sampler.stop()

        env.process(stopper(env))
        env.run(until=10.0)
        assert len(sampler.series) == 3  # t=0,1,2

    def test_start_is_idempotent(self):
        env = Environment()
        sampler = IntervalSampler(env, lambda: 1.0, interval=1.0)
        sampler.start()
        sampler.start()
        env.run(until=2.5)
        assert len(sampler.series) == 3

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            IntervalSampler(Environment(), lambda: 0.0, interval=0.0)


class TestConcurrencyGoodputSampler:
    def make_sampler(self, env, completions, threshold=0.1):
        """completions: list of (time, latency) tuples. The concurrency
        integral grows at 4 token-seconds per second -> mean Q of 4."""
        def source(since, until):
            return np.asarray([lat for t, lat in completions
                               if since <= t < until])

        return ConcurrencyGoodputSampler(
            env, concurrency_integral=lambda: 4.0 * env.now,
            completion_source=source,
            threshold_provider=lambda: threshold,
            interval=1.0)

    def test_goodput_counts_only_within_threshold(self):
        env = Environment()
        completions = [(0.2, 0.05), (0.4, 0.5), (0.6, 0.09)]
        sampler = self.make_sampler(env, completions, threshold=0.1)
        sampler.start()
        env.run(until=1.5)
        _q, gp = sampler.pairs()
        _q2, tp = sampler.pairs(use_threshold=False)
        assert gp[0] == pytest.approx(2.0)  # 2 good / 1s
        assert tp[0] == pytest.approx(3.0)  # 3 total / 1s

    def test_concurrency_recorded(self):
        env = Environment()
        sampler = self.make_sampler(env, [])
        sampler.start()
        env.run(until=2.5)
        q, gp = sampler.pairs()
        assert list(q) == [4.0, 4.0]
        assert list(gp) == [0.0, 0.0]

    def test_prune(self):
        env = Environment()
        sampler = self.make_sampler(env, [])
        sampler.start()
        env.run(until=5.5)
        sampler.prune(3.0)
        q, _gp = sampler.pairs()
        assert len(q) == 3  # samples at t=3,4,5


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.from_values([])
        assert summary.count == 0
        assert summary.p99 == 0.0

    def test_percentiles(self):
        values = np.arange(1, 101, dtype=float)
        summary = LatencySummary.from_values(values)
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == pytest.approx(50.5)
        assert summary.p99 == pytest.approx(99.01)
        assert summary.maximum == 100.0

    def test_scaled(self):
        summary = LatencySummary.from_values([0.1, 0.2]).scaled(1000)
        assert summary.mean == pytest.approx(150.0)
        assert summary.count == 2


class TestGoodputSplit:
    def test_split(self):
        split = goodput_split([0.1, 0.2, 0.3, 0.4], threshold=0.25,
                              duration=2.0)
        assert split.goodput == pytest.approx(1.0)
        assert split.badput == pytest.approx(1.0)
        assert split.throughput == pytest.approx(2.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            goodput_split([0.1], threshold=0.2, duration=0.0)

    def test_empty_latencies(self):
        split = goodput_split([], threshold=0.2, duration=1.0)
        assert split == GoodputSplit(0.0, 0.0, 0.2)


class TestBucketing:
    def test_bucketed_rate(self):
        times = np.array([0.1, 0.2, 1.5, 2.9])
        centers, rates = bucketed_rate(times, interval=1.0, since=0.0,
                                       until=3.0)
        assert list(centers) == [0.5, 1.5, 2.5]
        assert list(rates) == [2.0, 1.0, 1.0]

    def test_bucketed_rate_with_predicate(self):
        times = np.array([0.1, 0.2, 0.3])
        good = np.array([True, False, True])
        _c, rates = bucketed_rate(times, interval=1.0, since=0.0,
                                  until=1.0, predicate=good)
        assert rates[0] == pytest.approx(2.0)

    def test_bucketed_percentile(self):
        times = np.array([0.5, 0.6, 1.5])
        values = np.array([10.0, 20.0, 30.0])
        centers, p = bucketed_percentile(times, values, interval=1.0,
                                         since=0.0, until=3.0, q=50)
        assert p[0] == pytest.approx(15.0)
        assert p[1] == pytest.approx(30.0)
        assert np.isnan(p[2])

    def test_histogram_clips_to_maximum(self):
        latencies = np.array([0.05, 0.15, 5.0])
        centers, counts = response_time_histogram(
            latencies, bin_width=0.1, maximum=1.0)
        assert counts.sum() == 3
        assert counts[-1] == 1  # the 5.0 clipped into the last bin


class TestMape:
    def test_basic(self):
        assert mape([100, 200], [110, 180]) == pytest.approx(10.0)

    def test_perfect(self):
        assert mape([5, 10], [5, 10]) == 0.0

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            mape([1, 2], [1])

    def test_empty(self):
        with pytest.raises(ValueError):
            mape([], [])

    def test_zero_actual(self):
        with pytest.raises(ValueError):
            mape([0.0], [1.0])
