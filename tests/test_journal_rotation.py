"""Journal lifecycle: rotation, tamper chaining, compaction.

The replay contract — feeding the journal back through a fresh plane
reproduces the decision JSONL byte-for-byte — must survive the two
lifecycle mechanisms a long-running service needs: size/age rotation
into numbered segments, and checkpoint compaction that collapses
closed segments while keeping every decision. The tamper chain has to
hold *across* segment boundaries: a line forged so it is internally
consistent is still caught by the first line of the next segment.
"""

import json

import pytest

from repro.core.scg import ScatterModelConfig
from repro.obs.registry import MetricsRegistry
from repro.service import (
    AuditJournal,
    ControlPlane,
    ServiceConfig,
    journal_segments,
    read_journal,
    render_snapshot,
    replay_journal,
    verify_chain,
    verify_replay,
)
from repro.service.audit import _chain_hash


def rotation_config(**overrides) -> ServiceConfig:
    defaults = dict(
        decide_top_k=0,
        scatter=ScatterModelConfig(min_samples=8, min_distinct=4,
                                   quantum=1.0))
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def drive(plane: ControlPlane, journal: AuditJournal,
          rounds: int = 25, per_round: int = 4) -> None:
    """Journal a deterministic cart workload the way the API does:
    record each stimulus only after the plane accepted it."""
    clock = 0.0
    step = 0
    for _round in range(rounds):
        for _scrape in range(per_round):
            clock += 1.0
            step += 1
            q = 1.0 + (step % 12)
            rate = 30.0 * q / (1.0 + q / 8.0)
            body = render_snapshot(clock, {"cart": 0.92}, {"cart": q},
                                   {"cart": rate}, {"cart": 4})
            plane.ingest_metrics(body)
            journal.record("metrics", clock, body)
        record = plane.tick(now=clock)
        journal.record("tick", record.time)


def journaled_run(tmp_path, **journal_kwargs
                  ) -> tuple[ControlPlane, AuditJournal]:
    plane = ControlPlane(rotation_config())
    if journal_kwargs.pop("compact", False):
        journal_kwargs["compact"] = True
        journal_kwargs["checkpoint_provider"] = lambda: (
            plane.checkpoint(), plane.decisions_jsonl().splitlines())
    journal = AuditJournal(tmp_path / "journal.jsonl",
                           **journal_kwargs)
    drive(plane, journal)
    journal.close()
    return plane, journal


# ----------------------------------------------------------------------
# Construction guards
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    {"segment_bytes": -1},
    {"segment_age": -0.5},
    {"compact": True},  # requires a checkpoint_provider
])
def test_invalid_lifecycle_options_rejected(tmp_path, kwargs):
    with pytest.raises(ValueError):
        AuditJournal(tmp_path / "journal.jsonl", **kwargs)


# ----------------------------------------------------------------------
# Rotation
# ----------------------------------------------------------------------
def test_size_rotation_replays_byte_identical(tmp_path):
    plane, journal = journaled_run(tmp_path, segment_bytes=4096)
    base = tmp_path / "journal.jsonl"
    segments = journal_segments(base)
    assert len(segments) >= 3, "workload must span several segments"
    assert journal.rotations == len(segments)
    assert segments[0].name == "journal.00001.jsonl"

    ok, detail = verify_chain(base)
    assert ok, detail
    # Stitched read covers every recorded entry, in order.
    entries = read_journal(base)
    assert len(entries) == len(journal.entries)
    assert [e.time for e in entries] == [
        e.time for e in journal.entries]

    decisions = tmp_path / "decisions.jsonl"
    decisions.write_text(plane.decisions_jsonl(), encoding="utf-8")
    identical, detail = verify_replay(base, decisions,
                                      rotation_config())
    assert identical, detail


def test_logical_age_rotation(tmp_path):
    plane = ControlPlane(rotation_config())
    journal = AuditJournal(tmp_path / "journal.jsonl",
                           segment_age=10.0)
    drive(plane, journal, rounds=10)
    journal.close()
    segments = journal_segments(tmp_path / "journal.jsonl")
    # 40s of logical time at a 10s span threshold -> several segments.
    assert len(segments) >= 3
    for segment in segments:
        times = [json.loads(line)["time"] for line in
                 segment.read_text().splitlines()]
        assert max(times) - min(times) <= 10.0 + 1e-9


def test_health_and_registry_counters(tmp_path):
    registry = MetricsRegistry()
    plane = ControlPlane(rotation_config())
    journal = AuditJournal(tmp_path / "journal.jsonl",
                           segment_bytes=4096, registry=registry)
    drive(plane, journal)
    health = journal.health()
    assert health["rotations"] == journal.rotations > 0
    assert health["segments"] == len(
        journal_segments(tmp_path / "journal.jsonl")) + 1
    assert health["chain_head"] == journal.chain_head[:16]
    assert (registry.counter("journal.rotations").value
            == float(journal.rotations))
    assert (registry.gauge("journal.segments").snapshot()["value"]
            == float(health["segments"]))
    journal.close()


# ----------------------------------------------------------------------
# Tamper detection
# ----------------------------------------------------------------------
def test_bitflip_in_closed_segment_detected(tmp_path):
    journaled_run(tmp_path, segment_bytes=4096)
    base = tmp_path / "journal.jsonl"
    victim = journal_segments(base)[1]
    text = victim.read_text(encoding="utf-8")
    victim.write_text(text.replace('"kind": "metrics"',
                                   '"kind": "traces"', 1),
                      encoding="utf-8")
    ok, detail = verify_chain(base)
    assert not ok
    assert victim.name in detail


def test_forged_line_caught_across_segment_boundary(tmp_path):
    """Re-chain a tampered final line so it is self-consistent; the
    mismatch must then surface at the next segment's first line."""
    journaled_run(tmp_path, segment_bytes=4096)
    base = tmp_path / "journal.jsonl"
    segments = journal_segments(base)
    victim = segments[1]
    lines = victim.read_text(encoding="utf-8").splitlines()
    previous = (json.loads(lines[-2])["chain"] if len(lines) > 1
                else "")
    forged = json.loads(lines[-1])
    forged.pop("chain")
    forged["time"] = forged["time"] + 1000.0
    forged["chain"] = _chain_hash(
        previous, json.dumps({k: v for k, v in forged.items()
                              if k != "chain"}, sort_keys=True))
    lines[-1] = json.dumps(forged, sort_keys=True)
    victim.write_text("\n".join(lines) + "\n", encoding="utf-8")

    ok, detail = verify_chain(base)
    assert not ok
    successor = segments[2]
    assert detail.startswith(f"{successor.name}:1")


def test_truncated_segment_detected(tmp_path):
    journaled_run(tmp_path, segment_bytes=4096)
    base = tmp_path / "journal.jsonl"
    victim = journal_segments(base)[0]
    lines = victim.read_text(encoding="utf-8").splitlines()
    victim.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
    ok, _detail = verify_chain(base)
    assert not ok


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
def test_compaction_preserves_every_decision(tmp_path):
    plane, journal = journaled_run(tmp_path, segment_bytes=4096,
                                   compact=True)
    base = tmp_path / "journal.jsonl"
    assert journal.compactions > 0
    assert journal.entries_dropped > 0
    # Everything before the newest checkpoint has been unlinked.
    segments = journal_segments(base)
    assert len(segments) == 1
    checkpoint_lines = segments[0].read_text().splitlines()
    assert len(checkpoint_lines) == 1
    payload = json.loads(checkpoint_lines[0])
    assert payload["kind"] == "checkpoint"
    body = json.loads(payload["body"])

    live = plane.decisions_jsonl()
    live_lines = live.splitlines()
    # The checkpoint carries every decision made before the cut,
    # verbatim — compaction never drops a decision line.
    assert body["decisions"] == live_lines[:len(body["decisions"])]

    ok, detail = verify_chain(base)
    assert ok, detail
    decisions = tmp_path / "decisions.jsonl"
    decisions.write_text(live, encoding="utf-8")
    identical, detail = verify_replay(base, decisions,
                                      rotation_config())
    assert identical, detail


def test_compacted_and_uncompacted_replays_agree(tmp_path):
    plain_plane, _plain = journaled_run(
        tmp_path / "plain", segment_bytes=4096)
    compact_plane, _compact = journaled_run(
        tmp_path / "compact", segment_bytes=4096, compact=True)
    # Identical stimuli -> identical live decisions either way.
    assert (plain_plane.decisions_jsonl()
            == compact_plane.decisions_jsonl())
    replayed_plain = replay_journal(
        read_journal(tmp_path / "plain" / "journal.jsonl"),
        rotation_config())
    replayed_compact = replay_journal(
        read_journal(tmp_path / "compact" / "journal.jsonl"),
        rotation_config())
    assert (replayed_plain.decisions_jsonl()
            == replayed_compact.decisions_jsonl()
            == plain_plane.decisions_jsonl())


def test_compacted_replay_continues_live(tmp_path):
    """A replayed-from-checkpoint plane keeps producing the same
    decisions as the original when both see the same new stimuli."""
    plane = ControlPlane(rotation_config())
    journal = AuditJournal(
        tmp_path / "journal.jsonl", segment_bytes=4096, compact=True,
        checkpoint_provider=lambda: (
            plane.checkpoint(), plane.decisions_jsonl().splitlines()))
    drive(plane, journal, rounds=20)
    journal.close()
    twin = replay_journal(read_journal(tmp_path / "journal.jsonl"),
                          rotation_config())
    clock = plane.now
    for index in range(8):
        clock += 1.0
        q = 2.0 + (index % 9)
        body = render_snapshot(clock, {"cart": 0.92}, {"cart": q},
                               {"cart": 30.0 * q / (1.0 + q / 8.0)},
                               {"cart": 4})
        plane.ingest_metrics(body)
        twin.ingest_metrics(body)
    plane.tick(now=clock)
    twin.tick(now=clock)
    assert twin.decisions_jsonl() == plane.decisions_jsonl()
