"""Tests for run fingerprinting and the deterministic-replay checker."""

import pytest

from repro.sim import Environment
from repro.tracing import Span
from repro.validation import (
    Fingerprint,
    RunRecorder,
    check_replay,
    diff_fingerprints,
    fingerprint_traces,
    run_fingerprint,
)

SHORT = 10.0  # simulated seconds — thousands of events, sub-second wall


def _finished_trace(offset: float = 0.0) -> Span:
    root = Span(trace_id=1, service="a", operation="op",
                arrival=0.0 + offset)
    root.started = 0.0 + offset
    child = Span(trace_id=1, service="b", operation="op",
                 arrival=0.1 + offset, parent=root)
    child.started = 0.12 + offset
    child.departure = 0.3 + offset
    root.departure = 0.5 + offset
    return root


class TestFingerprint:
    def test_same_seed_same_digest(self):
        a = run_fingerprint("tandem_balanced", seed=5, duration=SHORT)
        b = run_fingerprint("tandem_balanced", seed=5, duration=SHORT)
        assert a.same_digest(b)
        assert a.n_events == b.n_events > 0

    def test_different_seed_different_digest(self):
        a = run_fingerprint("tandem_balanced", seed=5, duration=SHORT)
        b = run_fingerprint("tandem_balanced", seed=6, duration=SHORT)
        assert not a.same_digest(b)

    def test_recorder_counts_events(self):
        env = Environment()
        recorder = RunRecorder(env)
        env.call_at(1.0, lambda: None)
        env.call_at(2.0, lambda: None)
        env.run()
        fingerprint = recorder.finish()
        assert fingerprint.n_events == 2
        assert fingerprint.final_time == 2.0

    def test_trace_digest_ignores_span_ids(self):
        # Two structurally identical traces built separately get
        # different span_id counter values but must fingerprint equal.
        assert fingerprint_traces([_finished_trace()]) == \
            fingerprint_traces([_finished_trace()])
        assert fingerprint_traces([_finished_trace()]) != \
            fingerprint_traces([_finished_trace(offset=1.0)])


class TestDiff:
    def test_equal_fingerprints_diff_to_none(self):
        a = run_fingerprint("single_light", seed=3, duration=SHORT)
        assert diff_fingerprints(("x", a), ("y", a)) is None

    def test_digest_only_fallback(self):
        a = Fingerprint(digest="aa", n_events=1, final_time=1.0,
                        summary=(), events=None)
        b = Fingerprint(digest="bb", n_events=1, final_time=1.0,
                        summary=(), events=None)
        report = diff_fingerprints(("x", a), ("y", b))
        assert report.index == -1

    def test_prefix_stream_points_past_shorter(self):
        events = (("0x1p+0", "Event", ""), ("0x1p+1", "Event", ""))
        a = Fingerprint(digest="aa", n_events=2, final_time=2.0,
                        summary=(), events=events)
        b = Fingerprint(digest="bb", n_events=1, final_time=1.0,
                        summary=(), events=events[:1])
        report = diff_fingerprints(("x", a), ("y", b))
        assert report.index == 1
        assert report.left == events[1]
        assert report.right is None
        assert "<stream ended>" in report.render()


class TestReplay:
    def test_replay_holds_in_process(self):
        result = check_replay("tandem_balanced", seed=11,
                              duration=SHORT, across_processes=False)
        assert result.identical
        assert len(result.fingerprints) == 2
        assert "identical" in result.render()

    def test_injected_perturbation_is_detected(self):
        result = check_replay("tandem_balanced", seed=11,
                              duration=SHORT, perturb_at=3.0)
        assert not result.identical
        report = result.divergence
        assert report is not None
        # The report names the first moved event, at or after the
        # injection time.
        moved = report.left or report.right
        assert moved is not None
        assert float.fromhex(moved[0]) >= 3.0 - 1e-9
        assert "first divergence at event #" in result.render()

    def test_perturbed_run_keeps_label(self):
        result = check_replay("single_light", seed=2, duration=SHORT,
                              perturb_at=2.0)
        labels = [label for label, _fp in result.fingerprints]
        assert labels == ["run-1", "run-perturbed"]


@pytest.mark.slow
class TestCrossProcess:
    def test_replay_holds_across_spawned_process(self):
        result = check_replay("tandem_balanced", seed=11,
                              duration=SHORT, across_processes=True)
        assert result.identical
        labels = [label for label, _fp in result.fingerprints]
        assert "subprocess" in labels
