"""Tests for the unified hardware+soft controller extension."""

import pytest

from repro.app import Application, Call, Compute, Microservice, Operation
from repro.core import (
    MonitoringModule,
    ThreadPoolTarget,
    UnifiedConfig,
    UnifiedSoraController,
)
from repro.sim import Constant, Environment, Exponential, RandomStreams
from repro.workloads import OpenLoopDriver


def build_app(env, streams, *, threads=4, demand=0.012, cores=2.0):
    app = Application(env)
    svc = Microservice(env, "svc", streams.stream("svc"), cores=cores,
                       thread_pool_size=threads, cpu_overhead=0.02)
    backend = Microservice(env, "backend", streams.stream("be"),
                           cores=4.0)
    backend.add_operation(Operation("default", [Compute(Constant(0.003))]))
    svc.add_operation(Operation("default", [
        Compute(Exponential(demand)), Call("backend")]))
    app.add_service(svc)
    app.add_service(backend)
    app.set_entrypoint("go", "svc", "default")
    return app


class TestUnifiedConfig:
    @pytest.mark.parametrize("kwargs", [
        {"min_cores": 0.0},
        {"min_cores": 8.0, "max_cores": 2.0},
        {"step": 0.0},
        {"utilization_low": 0.9, "utilization_high": 0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            UnifiedConfig(**kwargs)


class TestUnifiedController:
    def make(self, env, streams, app, **kwargs):
        monitoring = MonitoringModule(env, app)
        target = ThreadPoolTarget(app.service("svc"))
        return UnifiedSoraController(env, app, monitoring, [target],
                                     sla=0.3, **kwargs), target

    def test_scales_hardware_under_sustained_overload(self):
        env = Environment()
        streams = RandomStreams(7)
        # 2 cores, 12ms demand -> ~165/s capacity; rate 190 saturates.
        app = build_app(env, streams, threads=8)
        controller, _target = self.make(
            env, streams, app,
            unified_config=UnifiedConfig(max_cores=4.0))
        controller.start()
        driver = OpenLoopDriver(env, app, "go", rate=190.0,
                                rng=streams.stream("arr"),
                                duration=120.0)
        driver.start()
        env.run(until=120.0)
        assert controller.hardware_log, "expected a vertical scale-up"
        assert app.service("svc").cores_per_replica > 2.0
        # The joint actuation also bootstrapped the pool upward.
        bootstraps = [a for a in controller.actions
                      if a.trigger == "bootstrap"]
        assert bootstraps

    def test_no_hardware_scaling_when_idle(self):
        env = Environment()
        streams = RandomStreams(7)
        app = build_app(env, streams)
        controller, _target = self.make(env, streams, app)
        controller.start()
        driver = OpenLoopDriver(env, app, "go", rate=10.0,
                                rng=streams.stream("arr"),
                                duration=60.0)
        driver.start()
        env.run(until=60.0)
        scale_ups = [e for e in controller.hardware_log
                     if e.after > e.before]
        assert not scale_ups

    def test_scales_down_after_calm(self):
        env = Environment()
        streams = RandomStreams(7)
        app = build_app(env, streams, cores=4.0)
        controller, _target = self.make(
            env, streams, app,
            unified_config=UnifiedConfig(min_cores=1.0,
                                         scale_down_stabilization=30.0))
        controller.start()
        driver = OpenLoopDriver(env, app, "go", rate=10.0,
                                rng=streams.stream("arr"),
                                duration=150.0)
        driver.start()
        env.run(until=150.0)
        assert app.service("svc").cores_per_replica < 4.0

    def test_rejects_external_autoscaler(self):
        env = Environment()
        streams = RandomStreams(7)
        app = build_app(env, streams)
        # autoscaler kwarg is silently dropped (the controller owns
        # hardware itself) rather than wired.
        controller, _t = self.make(env, streams, app)
        assert controller.autoscaler is None
