"""Tests for repro.faults: plans, injectors, and resilience policies.

Covers the determinism contract (same seed => same faulted run; empty
plan => byte-identical to no injector at all), request conservation
under every fault kind, and the call-layer policies (retry, timeout,
breaker, shedding, graceful degradation).
"""

import json

import pytest

from repro.app.topologies import build_sock_shop
from repro.faults import (
    BlackoutFault,
    CallPolicy,
    CircuitBreaker,
    CircuitBreakerPolicy,
    CrashFault,
    EdgeFailureFault,
    EdgeLatencyFault,
    FaultInjector,
    FaultPlan,
    InterferenceFault,
    RetryPolicy,
    spec_from_dict,
)
from repro.sim import Environment, RandomStreams
from repro.validation.fingerprint import RunRecorder
from repro.workloads import ClosedLoopDriver, WorkloadTrace


def _flat(duration, users=100):
    return WorkloadTrace("flat", duration, users, users, lambda u: 1.0)


def _sock_shop_run(seed, plan, *, duration=30.0, users=100,
                   policies=None, record=False):
    """One Sock Shop cart run under ``plan``; returns accounting."""
    env = Environment()
    streams = RandomStreams(seed)
    app = build_sock_shop(env, streams, cart_threads=6)
    recorder = RunRecorder(env, keep_events=False) if record else None
    for (caller, callee), policy in (policies or {}).items():
        app.service(caller).set_call_policy(
            callee, policy,
            rng=streams.stream(f"resilience.{caller}.{callee}"))
    injector = FaultInjector(env, app, plan, streams)
    driver = ClosedLoopDriver(env, app, "cart", _flat(duration, users),
                              streams.stream("drv"), ramp_up=2.0)
    injector.start()
    driver.start()
    env.run()  # to exhaustion: the closed loop drains after the trace
    fingerprint = recorder.finish(app) if recorder else None
    return env, app, injector, fingerprint


def _assert_no_leaks(app):
    assert app.in_flight == 0
    assert app.latency["cart"].total + app.failed_total == \
        app.total_submitted
    for service in app.services.values():
        assert not service._inflight
        for pool in service.client_pools.values():
            assert pool.in_use == 0
            assert pool.queue_length == 0


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(faults=(
            CrashFault(service="cart", at=5.0, mode="drop",
                       restart_after=2.0),
            InterferenceFault(service="cart-db", at=1.0, duration=4.0,
                              demand_factor=3.0, core_steal=0.5),
            EdgeLatencyFault(caller="cart", callee="cart-db", at=2.0,
                             delay=0.01, jitter=0.25),
            EdgeFailureFault(caller="front-end", callee="cart", at=3.0,
                             duration=1.0, probability=0.5),
            BlackoutFault(service="cart", at=4.0, duration=2.0),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan
        # Bare list form is accepted too.
        specs = json.loads(plan.to_json())["faults"]
        assert FaultPlan.from_dict(specs) == plan

    def test_plan_truthiness(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0
        plan = FaultPlan(faults=(CrashFault(service="x", at=0.0),))
        assert plan and len(plan) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            spec_from_dict({"kind": "meteor", "service": "cart", "at": 1})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            spec_from_dict({"kind": "crash", "service": "cart",
                            "at": 1.0, "blast_radius": 3})

    @pytest.mark.parametrize("bad", [
        dict(kind="crash", service="s", at=-1.0),
        dict(kind="crash", service="s", at=1.0, mode="explode"),
        dict(kind="interference", service="s", at=0.0, demand_factor=0.0),
        dict(kind="interference", service="s", at=0.0, core_steal=1.0),
        dict(kind="edge-latency", caller="a", callee="b", at=0.0,
             delay=0.0),
        dict(kind="edge-failure", caller="a", callee="b", at=0.0,
             probability=1.5),
        dict(kind="blackout", service="s", at=0.0, duration=0.0),
    ])
    def test_bad_values_rejected(self, bad):
        with pytest.raises(ValueError):
            spec_from_dict(bad)

    def test_validate_rejects_unknown_service(self):
        env = Environment()
        app = build_sock_shop(env, RandomStreams(1))
        plan = FaultPlan(faults=(CrashFault(service="nonesuch", at=1.0),))
        with pytest.raises(ValueError, match="unknown service"):
            plan.validate(app)
        injector = FaultInjector(env, app, plan, RandomStreams(1))
        with pytest.raises(ValueError, match="unknown service"):
            injector.start()


# ----------------------------------------------------------------------
# Injectors (through full Sock Shop runs)
# ----------------------------------------------------------------------
class TestInjectors:
    def test_crash_drain_fails_requests_then_recovers(self):
        plan = FaultPlan(faults=(
            CrashFault(service="cart-db", at=10.0, restart_after=5.0),))
        _env, app, injector, _ = _sock_shop_run(3, plan)
        _assert_no_leaks(app)
        assert app.failed_total > 0
        times = [r.time for r in injector.log]
        assert times == [10.0, 15.0]
        # Completions resume after the restart.
        post, _lat = app.latency["cart"].window(15.0, 30.0)
        assert post.size > 0

    def test_crash_drop_interrupts_inflight(self):
        plan = FaultPlan(faults=(
            CrashFault(service="cart-db", at=10.0, mode="drop",
                       restart_after=5.0),))
        _env, app, injector, _ = _sock_shop_run(3, plan)
        _assert_no_leaks(app)
        inject = injector.log[0]
        assert inject.detail["mode"] == "drop"
        assert inject.detail["dropped"] > 0

    def test_permanent_crash_conserves_requests(self):
        plan = FaultPlan(faults=(CrashFault(service="cart-db", at=8.0),))
        _env, app, _, _ = _sock_shop_run(5, plan, duration=20.0)
        _assert_no_leaks(app)
        # Nothing completes after the unrecovered crash.
        post, _lat = app.latency["cart"].window(9.0, 25.0)
        assert post.size == 0
        assert app.failed_total > 0

    def test_interference_restores_demand_and_cores(self):
        env = Environment()
        streams = RandomStreams(2)
        app = build_sock_shop(env, streams)
        cart = app.service("cart")
        base_demand, base_cores = cart.demand_scale, cart.cores_per_replica
        plan = FaultPlan(faults=(
            InterferenceFault(service="cart", at=5.0, duration=10.0,
                              demand_factor=2.5, core_steal=0.5),))
        FaultInjector(env, app, plan, streams).start()
        env.run(until=6.0)
        assert cart.demand_scale == pytest.approx(base_demand * 2.5)
        assert cart.cores_per_replica == pytest.approx(base_cores * 0.5)
        env.run(until=16.0)
        assert cart.demand_scale == pytest.approx(base_demand)
        assert cart.cores_per_replica == pytest.approx(base_cores)

    def test_persistent_interference_never_recovers(self):
        env = Environment()
        streams = RandomStreams(2)
        app = build_sock_shop(env, streams)
        plan = FaultPlan(faults=(
            InterferenceFault(service="cart", at=1.0, demand_factor=4.0),))
        injector = FaultInjector(env, app, plan, streams)
        injector.start()
        env.run(until=50.0)
        assert [r.phase for r in injector.log] == ["inject"]
        assert app.service("cart").demand_scale == pytest.approx(4.0)

    def test_edge_latency_slows_the_edge(self):
        window = (8.0, 18.0)
        plan = FaultPlan(faults=(
            EdgeLatencyFault(caller="front-end", callee="cart",
                             at=window[0], duration=10.0, delay=0.2,
                             jitter=0.5),))
        _env, app, _, _ = _sock_shop_run(4, plan)
        _assert_no_leaks(app)
        # Completions in (fault_at + 1, fault_end) were issued inside
        # the window; pre-fault in-flight stragglers are excluded.
        _t0, during = app.latency["cart"].window(window[0] + 1.0,
                                                 window[1])
        _t1, after = app.latency["cart"].window(20.0, 30.0)
        assert during.size and after.size
        assert during.min() >= 0.2 * 0.5
        assert during.mean() > after.mean() + 0.05

    def test_edge_failure_fails_requests_only_in_window(self):
        plan = FaultPlan(faults=(
            EdgeFailureFault(caller="front-end", callee="cart", at=10.0,
                             duration=8.0, probability=1.0),))
        _env, app, _, _ = _sock_shop_run(6, plan)
        _assert_no_leaks(app)
        assert app.failed_total > 0
        during, _lat = app.latency["cart"].window(10.0, 18.0)
        assert during.size == 0  # probability 1.0: nothing gets through
        post, _lat = app.latency["cart"].window(18.0, 30.0)
        assert post.size > 0

    def test_blackout_dips_replicas_and_restores(self):
        env = Environment()
        streams = RandomStreams(2)
        app = build_sock_shop(env, streams)
        cart = app.service("cart")
        cart.scale_replicas(3)
        plan = FaultPlan(faults=(
            BlackoutFault(service="cart", at=5.0, duration=5.0,
                          replicas=2),))
        FaultInjector(env, app, plan, streams).start()
        env.run(until=6.0)
        assert cart.replica_count == 1
        env.run(until=11.0)
        assert cart.replica_count == 3

    def test_blackout_always_leaves_one_replica(self):
        env = Environment()
        streams = RandomStreams(2)
        app = build_sock_shop(env, streams)  # 1 cart replica
        plan = FaultPlan(faults=(
            BlackoutFault(service="cart", at=1.0, duration=2.0,
                          replicas=5),))
        injector = FaultInjector(env, app, plan, streams)
        injector.start()
        env.run(until=5.0)
        assert app.service("cart").replica_count == 1
        assert injector.log[0].detail["replicas_down"] == 0

    def test_start_is_idempotent(self):
        env = Environment()
        streams = RandomStreams(2)
        app = build_sock_shop(env, streams)
        plan = FaultPlan(faults=(CrashFault(service="cart", at=1.0),))
        injector = FaultInjector(env, app, plan, streams)
        injector.start()
        injector.start()
        env.run(until=2.0)
        assert len(injector.log) == 1


# ----------------------------------------------------------------------
# Resilience policies
# ----------------------------------------------------------------------
class TestResilience:
    def test_retry_masks_transient_edge_failures(self):
        plan = FaultPlan(faults=(
            EdgeFailureFault(caller="cart", callee="cart-db", at=8.0,
                             duration=10.0, probability=0.4),))
        policy = CallPolicy(retry=RetryPolicy(max_attempts=5,
                                              base_backoff=0.005))
        _env, app, _, _ = _sock_shop_run(
            7, plan, policies={("cart", "cart-db"): policy})
        _assert_no_leaks(app)
        stats = app.service("cart").call_policy_stats("cart-db")
        assert stats["injected"] > 0
        assert stats["retries"] > 0
        # Retries absorb (nearly) everything at p=0.4 with 5 attempts.
        assert stats["failures"] < stats["injected"] / 10
        assert app.failed_total == stats["failures"]

    def test_timeout_cuts_slow_calls(self):
        plan = FaultPlan(faults=(
            InterferenceFault(service="cart-db", at=8.0, duration=10.0,
                              demand_factor=60.0),))
        policy = CallPolicy(timeout=0.08,
                            retry=RetryPolicy(max_attempts=2,
                                              base_backoff=0.01))
        _env, app, _, _ = _sock_shop_run(
            8, plan, policies={("cart", "cart-db"): policy})
        _assert_no_leaks(app)
        stats = app.service("cart").call_policy_stats("cart-db")
        assert stats["timeouts"] > 0
        assert app.failed_total > 0

    def test_breaker_short_circuits_during_outage(self):
        plan = FaultPlan(faults=(
            CrashFault(service="cart-db", at=8.0, restart_after=10.0),))
        policy = CallPolicy(
            retry=RetryPolicy(max_attempts=2, base_backoff=0.005),
            breaker=CircuitBreakerPolicy(failure_threshold=3,
                                         recovery_time=1.0))
        _env, app, _, _ = _sock_shop_run(
            9, plan, policies={("cart", "cart-db"): policy})
        _assert_no_leaks(app)
        stats = app.service("cart").call_policy_stats("cart-db")
        assert stats["short_circuited"] > 0
        # The breaker closes again once the service restarts.
        post, _lat = app.latency["cart"].window(19.0, 30.0)
        assert post.size > 0

    def test_degrade_completes_requests_through_outage(self):
        plan = FaultPlan(faults=(
            CrashFault(service="cart-db", at=8.0, restart_after=10.0),))
        policy = CallPolicy(retry=RetryPolicy(max_attempts=2,
                                              base_backoff=0.005),
                            degrade=True)
        _env, app, _, _ = _sock_shop_run(
            10, plan, policies={("cart", "cart-db"): policy})
        _assert_no_leaks(app)
        stats = app.service("cart").call_policy_stats("cart-db")
        assert stats["degraded"] > 0
        assert app.failed_total == 0  # degraded, never failed
        during, _lat = app.latency["cart"].window(8.0, 18.0)
        assert during.size > 0

    def test_shedding_on_saturated_pool(self):
        env = Environment()
        streams = RandomStreams(11)
        app = build_sock_shop(env, streams,
                              catalogue_db_connections=2)
        catalogue = app.service("catalogue")
        catalogue.set_call_policy(
            "catalogue-db", CallPolicy(shed_queue_limit=3))
        driver = ClosedLoopDriver(env, app, "catalogue",
                                  _flat(20.0, users=150),
                                  streams.stream("drv"), ramp_up=1.0)
        driver.start()
        env.run()
        stats = catalogue.call_policy_stats("catalogue-db")
        assert stats["shed"] > 0
        assert app.failed_total == stats["shed"]
        assert app.in_flight == 0
        assert app.latency["catalogue"].total + app.failed_total == \
            app.total_submitted

    def test_backoff_schedule_caps_and_jitters(self):
        retry = RetryPolicy(max_attempts=4, base_backoff=0.1, factor=2.0,
                            max_backoff=0.3, jitter=0.0)
        assert [retry.backoff(i) for i in range(3)] == \
            pytest.approx([0.1, 0.2, 0.3])
        jittered = RetryPolicy(base_backoff=0.1, jitter=0.5)
        rng = RandomStreams(1).stream("jitter")
        samples = {jittered.backoff(0, rng) for _ in range(32)}
        assert len(samples) > 1
        assert all(0.05 <= s <= 0.15 for s in samples)

    def test_breaker_state_machine(self):
        breaker = CircuitBreaker(CircuitBreakerPolicy(
            failure_threshold=2, recovery_time=5.0))
        assert breaker.state == "closed"
        breaker.record_failure(0.0)
        assert breaker.allow(0.1)
        breaker.record_failure(0.2)
        assert breaker.state == "open"
        assert not breaker.allow(1.0)
        assert breaker.allow(5.5)  # half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow(5.6)  # only one probe at a time
        breaker.record_failure(5.7)  # probe failed: open again
        assert breaker.state == "open"
        assert not breaker.allow(6.0)
        assert breaker.allow(10.8)
        breaker.record_success()
        assert breaker.state == "closed"


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    PLAN = FaultPlan(faults=(
        CrashFault(service="cart-db", at=8.0, mode="drop",
                   restart_after=4.0),
        InterferenceFault(service="cart", at=14.0, duration=6.0,
                          demand_factor=2.0, core_steal=0.25),
        EdgeLatencyFault(caller="cart", callee="cart-db", at=18.0,
                         duration=5.0, delay=0.01, jitter=0.5),
        EdgeFailureFault(caller="front-end", callee="cart", at=22.0,
                         duration=4.0, probability=0.3),
    ))
    POLICY = CallPolicy(timeout=0.5,
                        retry=RetryPolicy(max_attempts=3,
                                          base_backoff=0.01))

    def _run(self, seed):
        return _sock_shop_run(
            seed, self.PLAN,
            policies={("cart", "cart-db"): self.POLICY}, record=True)

    def test_same_seed_same_faulted_run(self):
        _, app_a, inj_a, fp_a = self._run(21)
        _, app_b, inj_b, fp_b = self._run(21)
        assert fp_a.same_digest(fp_b)
        assert app_a.failed_total == app_b.failed_total
        assert [(r.time, r.fault, r.phase) for r in inj_a.log] == \
            [(r.time, r.fault, r.phase) for r in inj_b.log]

    def test_different_seed_diverges(self):
        _, _, _, fp_a = self._run(21)
        _, _, _, fp_b = self._run(22)
        assert not fp_a.same_digest(fp_b)

    def test_empty_plan_is_byte_identical(self):
        """Arming an injector with an empty plan changes nothing."""
        def run(with_injector):
            env = Environment()
            streams = RandomStreams(31)
            app = build_sock_shop(env, streams, cart_threads=6)
            recorder = RunRecorder(env, keep_events=False)
            if with_injector:
                FaultInjector(env, app, FaultPlan(), streams).start()
            driver = ClosedLoopDriver(env, app, "cart", _flat(15.0),
                                      streams.stream("drv"),
                                      ramp_up=2.0)
            driver.start()
            env.run()
            return recorder.finish(app)

        assert run(False).same_digest(run(True))
