"""Round-trip tests for the Jaeger-shaped trace export/import."""

import json

import pytest

from repro.sim import Environment, RandomStreams
from repro.tracing import (
    export_traces,
    trace_to_jaeger,
    traces_from_jaeger,
    write_traces,
)

from tests.conftest import build_chain


def finished_traces(count=3, depth=3):
    env = Environment()
    streams = RandomStreams(5)
    app = build_chain(env, streams, depth=depth, demand_ms=4.0,
                      threads=4)
    requests = [app.submit("go")[0] for _ in range(count)]
    env.run()
    return [r.root_span for r in requests]


class TestRoundTrip:
    def test_export_import_export_is_a_fixed_point(self):
        roots = finished_traces()
        document = export_traces(roots)
        parsed = traces_from_jaeger(document)
        assert export_traces(parsed) == document

    def test_structure_survives_the_round_trip(self):
        root = finished_traces(count=1, depth=4)[0]
        parsed = traces_from_jaeger(export_traces([root]))[0]
        original = list(root.walk())
        restored = list(parsed.walk())
        assert [s.service for s in restored] == \
            [s.service for s in original]
        assert [s.operation for s in restored] == \
            [s.operation for s in original]
        assert [s.span_id for s in restored] == \
            [s.span_id for s in original]
        for a, b in zip(original, restored):
            # Timestamps survive to Jaeger's microsecond resolution.
            assert b.arrival == pytest.approx(a.arrival, abs=1e-6)
            assert b.departure == pytest.approx(a.departure, abs=1e-6)
            assert b.queue_wait == pytest.approx(a.queue_wait, abs=2e-6)
            assert b.replica == a.replica

    def test_self_times_survive_the_round_trip(self):
        root = finished_traces(count=1, depth=3)[0]
        parsed = traces_from_jaeger(export_traces([root]))[0]
        for a, b in zip(root.walk(), parsed.walk()):
            assert b.self_time() == pytest.approx(a.self_time(),
                                                  abs=5e-6)

    def test_file_round_trip(self, tmp_path):
        roots = finished_traces(count=2)
        path = tmp_path / "traces.json"
        assert write_traces(str(path), roots) == 2
        parsed = traces_from_jaeger(path.read_text(encoding="utf-8"))
        assert len(parsed) == 2

    def test_accepts_parsed_documents_too(self):
        roots = finished_traces(count=1)
        document = json.loads(export_traces(roots))
        assert len(traces_from_jaeger(document)) == 1


class TestImportValidation:
    def test_rootless_trace_rejected(self):
        roots = finished_traces(count=1)
        document = json.loads(export_traces(roots))
        # Give every span a parent reference: no root remains.
        span_id = document["data"][0]["spans"][0]["spanID"]
        for span in document["data"][0]["spans"]:
            span["references"] = [{
                "refType": "CHILD_OF",
                "traceID": document["data"][0]["traceID"],
                "spanID": span_id,
            }]
        with pytest.raises(ValueError, match="no root"):
            traces_from_jaeger(document)

    def test_unfinished_trace_rejected_on_export(self):
        from repro.tracing import Span
        root = Span(trace_id=1, service="a", operation="op", arrival=0.0)
        with pytest.raises(ValueError, match="unfinished"):
            trace_to_jaeger(root)
