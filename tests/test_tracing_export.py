"""Round-trip tests for the Jaeger-shaped trace export/import."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.events import TargetDecision
from repro.sim import Environment, RandomStreams
from repro.tracing import (
    Span,
    export_traces,
    trace_to_jaeger,
    traces_from_jaeger,
    write_traces,
)

from tests.conftest import build_chain


def finished_traces(count=3, depth=3):
    env = Environment()
    streams = RandomStreams(5)
    app = build_chain(env, streams, depth=depth, demand_ms=4.0,
                      threads=4)
    requests = [app.submit("go")[0] for _ in range(count)]
    env.run()
    return [r.root_span for r in requests]


class TestRoundTrip:
    def test_export_import_export_is_a_fixed_point(self):
        roots = finished_traces()
        document = export_traces(roots)
        parsed = traces_from_jaeger(document)
        assert export_traces(parsed) == document

    def test_structure_survives_the_round_trip(self):
        root = finished_traces(count=1, depth=4)[0]
        parsed = traces_from_jaeger(export_traces([root]))[0]
        original = list(root.walk())
        restored = list(parsed.walk())
        assert [s.service for s in restored] == \
            [s.service for s in original]
        assert [s.operation for s in restored] == \
            [s.operation for s in original]
        assert [s.span_id for s in restored] == \
            [s.span_id for s in original]
        for a, b in zip(original, restored):
            # Timestamps survive to Jaeger's microsecond resolution.
            assert b.arrival == pytest.approx(a.arrival, abs=1e-6)
            assert b.departure == pytest.approx(a.departure, abs=1e-6)
            assert b.queue_wait == pytest.approx(a.queue_wait, abs=2e-6)
            assert b.replica == a.replica

    def test_self_times_survive_the_round_trip(self):
        root = finished_traces(count=1, depth=3)[0]
        parsed = traces_from_jaeger(export_traces([root]))[0]
        for a, b in zip(root.walk(), parsed.walk()):
            assert b.self_time() == pytest.approx(a.self_time(),
                                                  abs=5e-6)

    def test_file_round_trip(self, tmp_path):
        roots = finished_traces(count=2)
        path = tmp_path / "traces.json"
        assert write_traces(str(path), roots) == 2
        parsed = traces_from_jaeger(path.read_text(encoding="utf-8"))
        assert len(parsed) == 2

    def test_accepts_parsed_documents_too(self):
        roots = finished_traces(count=1)
        document = json.loads(export_traces(roots))
        assert len(traces_from_jaeger(document)) == 1


def quorum_traces():
    """Traces from a quorum-read fan-out: stragglers get interrupted,
    so real cancelled spans (not hand-set flags) land in the warehouse."""
    from repro.scenarios import ZooParams, build_topology
    from repro.workloads import OpenLoopDriver

    env = Environment()
    streams = RandomStreams(1)
    topology = build_topology(env, streams, ZooParams(
        archetype="quorum_reads", shards=3, quorum_k=2,
        slow_factor=8.0))
    driver = OpenLoopDriver(env, topology.app, "zoo", 50.0,
                            streams.stream("driver"), duration=2.0)
    driver.start()
    env.run(until=5.0)
    return topology.app.warehouse.traces(0.0, float("inf"))


class TestCancelledSpans:
    def test_cancelled_tag_survives_the_round_trip(self):
        roots = quorum_traces()
        cancelled = [s for r in roots for s in r.walk() if s.cancelled]
        assert cancelled, "quorum run produced no straggler interrupts"
        document = json.loads(export_traces(roots))
        tagged = [
            span_dict
            for element in document["data"]
            for span_dict in element["spans"]
            if any(t["key"] == "cancelled" and t["value"] is True
                   for t in span_dict["tags"])
        ]
        assert len(tagged) == len(cancelled)
        # Cancelled spans still carry a valid (clamped) duration.
        assert all(s["duration"] >= 0 for s in tagged)
        parsed = traces_from_jaeger(document)
        restored = [s for r in parsed for s in r.walk() if s.cancelled]
        assert len(restored) == len(cancelled)
        assert {s.span_id for s in restored} == \
            {s.span_id for s in cancelled}

    def test_cancelled_traces_hold_the_fixed_point(self):
        roots = quorum_traces()
        assert any(s.cancelled for r in roots for s in r.walk())
        document = export_traces(roots)
        assert export_traces(traces_from_jaeger(document)) == document

    def test_uncancelled_spans_carry_no_cancelled_tag(self):
        document = json.loads(export_traces(finished_traces(count=1)))
        for span_dict in document["data"][0]["spans"]:
            assert not any(t["key"] == "cancelled"
                           for t in span_dict["tags"])

    def test_interrupt_stamped_departure_clamps_to_zero(self):
        # Float error can stamp a cancelled span's departure a hair
        # before its arrival; the exported duration clamps to zero.
        root = _synthetic_span(9, 1, "root", arrival=1.0,
                               queue_wait=0.0, service_time=1.0)
        child = _synthetic_span(9, 2, "shard", arrival=1.5,
                                queue_wait=0.0, service_time=0.0,
                                parent=root)
        child.cancelled = True
        child.departure = child.arrival - 1e-9
        element = trace_to_jaeger(root)
        child_dict = next(s for s in element["spans"]
                          if s["spanID"] == format(2, "016x"))
        assert child_dict["duration"] == 0
        tags = {t["key"]: t["value"] for t in child_dict["tags"]}
        assert tags["cancelled"] is True
        assert tags["queue_wait_us"] == 0
        parsed = traces_from_jaeger(export_traces([root]))[0]
        restored = parsed.children[0]
        assert restored.cancelled
        assert restored.duration == 0.0
        assert restored.started <= restored.departure


class TestImportValidation:
    def test_rootless_trace_rejected(self):
        roots = finished_traces(count=1)
        document = json.loads(export_traces(roots))
        # Give every span a parent reference: no root remains.
        span_id = document["data"][0]["spans"][0]["spanID"]
        for span in document["data"][0]["spans"]:
            span["references"] = [{
                "refType": "CHILD_OF",
                "traceID": document["data"][0]["traceID"],
                "spanID": span_id,
            }]
        with pytest.raises(ValueError, match="no root"):
            traces_from_jaeger(document)

    def test_unfinished_trace_rejected_on_export(self):
        root = Span(trace_id=1, service="a", operation="op", arrival=0.0)
        with pytest.raises(ValueError, match="unfinished"):
            trace_to_jaeger(root)


def _synthetic_span(trace_id, span_id, service, arrival, queue_wait,
                    service_time, parent=None):
    span = Span(trace_id=trace_id, service=service, operation="op",
                arrival=arrival)
    span.span_id = span_id
    span.started = arrival + queue_wait
    span.departure = span.started + service_time
    if parent is not None:
        span.parent = parent
        parent.children.append(span)
        parent.departure = max(parent.departure, span.departure)
    return span


#: Non-negative durations down to exactly zero, on a microsecond-exact
#: grid so Jaeger's integer-microsecond timestamps are lossless and the
#: fixed-point assertion is byte-exact.
_micros = st.integers(min_value=0, max_value=5_000_000).map(
    lambda us: us / 1e6)


class TestHardening:
    """Foreign/degenerate documents the importer must tolerate."""

    @settings(max_examples=50, deadline=None)
    @given(queue_waits=st.lists(_micros, min_size=1, max_size=5),
           service_times=st.lists(_micros, min_size=1, max_size=5))
    def test_zero_duration_spans_round_trip(self, queue_waits,
                                            service_times):
        root = _synthetic_span(7, 1, "root", arrival=1.0,
                               queue_wait=0.0, service_time=0.0)
        cursor = 1.0
        for index, (wait, work) in enumerate(
                zip(queue_waits, service_times)):
            _synthetic_span(7, index + 2, f"child{index}",
                            arrival=cursor, queue_wait=wait,
                            service_time=work, parent=root)
            cursor += wait + work
        document = export_traces([root])
        parsed = traces_from_jaeger(document)
        assert export_traces(parsed) == document
        restored = list(parsed[0].walk())
        for a, b in zip(root.walk(), restored):
            assert b.started <= b.departure
            assert b.duration == pytest.approx(a.duration, abs=1e-6)

    def test_missing_tags_key_tolerated(self):
        document = json.loads(export_traces(finished_traces(count=1)))
        for span in document["data"][0]["spans"]:
            del span["tags"]
        parsed = traces_from_jaeger(document)[0]
        assert all(span.operation == "" for span in parsed.walk())
        assert all(span.replica is None for span in parsed.walk())

    def test_missing_references_key_tolerated(self):
        document = json.loads(export_traces(finished_traces(count=1)))
        spans = document["data"][0]["spans"]
        roots_before = sum(1 for s in spans if not s["references"])
        for span in spans:
            if not span["references"]:
                del span["references"]
        parsed = traces_from_jaeger(document)[0]
        assert roots_before == 1
        assert parsed.parent is None

    def test_excess_queue_wait_clamped_to_departure(self):
        document = json.loads(export_traces(finished_traces(count=1)))
        span_dict = document["data"][0]["spans"][0]
        for tag in span_dict["tags"]:
            if tag["key"] == "queue_wait_us":
                tag["value"] = span_dict["duration"] + 10_000
        parsed = traces_from_jaeger(document)[0]
        for span in parsed.walk():
            assert span.started <= span.departure
            assert span.self_time() >= 0.0

    def test_missing_duration_means_zero(self):
        document = json.loads(export_traces(finished_traces(count=1)))
        span_dict = document["data"][0]["spans"][0]
        del span_dict["duration"]
        parsed = traces_from_jaeger(document)[0]
        found = [s for s in parsed.walk()
                 if format(s.span_id, "016x") == span_dict["spanID"]]
        assert found and found[0].duration == 0.0


class TestDecisionTags:
    def _decision(self, after, threshold=0.35, knee=4.2):
        return TargetDecision(
            target="cart.threads", trigger="periodic",
            outcome="applied", reason="knee", before=after - 1,
            after=after, threshold=threshold, knee_concurrency=knee)

    def test_root_tagged_with_active_decision(self):
        root = finished_traces(count=1)[0]
        decisions = [(0.0, self._decision(6)),
                     (root.arrival + 100.0, self._decision(9))]
        element = trace_to_jaeger(root, decisions=decisions)
        tags = {t["key"]: t["value"] for t in element["spans"][0]["tags"]}
        # The later decision postdates the trace: the earlier one rules.
        assert tags["sora.allocation"] == 6
        assert tags["sora.target"] == "cart.threads"
        assert tags["sora.threshold_ms"] == pytest.approx(350.0)
        assert tags["sora.knee_concurrency"] == pytest.approx(4.2)
        # Child spans carry no decision tags.
        for span_dict in element["spans"][1:]:
            assert not any(t["key"].startswith("sora.")
                           for t in span_dict["tags"])

    def test_trace_before_first_decision_untagged(self):
        root = finished_traces(count=1)[0]
        decisions = [(root.arrival + 100.0, self._decision(6))]
        element = trace_to_jaeger(root, decisions=decisions)
        assert not any(t["key"].startswith("sora.")
                       for t in element["spans"][0]["tags"])

    def test_tagged_document_still_parses(self):
        roots = finished_traces(count=2)
        document = export_traces(
            roots, decisions=[(0.0, self._decision(6))])
        parsed = traces_from_jaeger(document)
        assert len(parsed) == 2
        assert [p.trace_id for p in parsed] == \
            [r.trace_id for r in roots]
