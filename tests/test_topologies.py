"""Tests for the Sock Shop and Social Network topology builders."""

import pytest

from repro.app.topologies import (
    HEAVY_POSTS,
    LIGHT_POSTS,
    build_social_network,
    build_sock_shop,
    set_request_weight,
)
from repro.sim import Environment, RandomStreams
from repro.tracing import extract_critical_path


def run_request(env, app, request_type):
    request, process = app.submit(request_type)
    env.run(until=process)
    return request


class TestSockShop:
    def setup_method(self):
        self.env = Environment()
        self.app = build_sock_shop(self.env, RandomStreams(5))

    def test_all_paper_services_present(self):
        expected = {"front-end", "cart", "cart-db", "catalogue",
                    "catalogue-db", "user", "user-db", "orders",
                    "orders-db", "payment", "shipping", "queue-master",
                    "recommender"}
        assert expected <= set(self.app.services)

    def test_cart_is_springboot_with_thread_pool(self):
        cart = self.app.service("cart")
        assert cart.thread_pool_size is not None

    def test_catalogue_is_async_with_db_pool(self):
        catalogue = self.app.service("catalogue")
        assert catalogue.thread_pool_size is None
        assert "db" in catalogue.client_pools

    def test_cart_request_traverses_cart_db(self):
        request = run_request(self.env, self.app, "cart")
        services = {s.service for s in request.root_span.walk()}
        assert services == {"front-end", "cart", "cart-db"}

    def test_browse_fans_out_in_parallel(self):
        request = run_request(self.env, self.app, "browse")
        root = request.root_span
        children = {c.service for c in root.children}
        assert children == {"cart", "catalogue"}
        cart, catalogue = sorted(root.children, key=lambda s: s.service)
        # Parallel calls overlap in time.
        assert cart.arrival < catalogue.departure
        assert catalogue.arrival < cart.departure

    def test_browse_critical_path_is_one_branch(self):
        """Fig. 5: either Cart or Catalogue is the critical path."""
        request = run_request(self.env, self.app, "browse")
        path = extract_critical_path(request.root_span)
        assert path.services in (
            ("front-end", "cart", "cart-db"),
            ("front-end", "catalogue", "catalogue-db"),
        )

    def test_order_touches_payment_and_shipping(self):
        request = run_request(self.env, self.app, "order")
        services = {s.service for s in request.root_span.walk()}
        assert {"orders", "payment", "shipping", "queue-master",
                "user", "cart"} <= services

    def test_call_graph_is_connected_dag(self):
        import networkx as nx
        graph = self.app.call_graph()
        assert nx.is_directed_acyclic_graph(graph)
        assert graph.out_degree("front-end") >= 3

    def test_custom_knobs_applied(self):
        env = Environment()
        app = build_sock_shop(env, RandomStreams(1), cart_threads=17,
                              cart_cores=3.0, catalogue_db_connections=9)
        assert app.service("cart").thread_pool_size == 17
        assert app.service("cart").cores_per_replica == 3.0
        assert app.service("catalogue").client_pool("db").capacity == 9


class TestSocialNetwork:
    def setup_method(self):
        self.env = Environment()
        self.app = build_social_network(self.env, RandomStreams(5))

    def test_paper_services_present(self):
        expected = {"front-end", "home-timeline", "user-timeline",
                    "post-storage", "compose-post", "social-graph",
                    "user-tag", "url-shorten", "text", "media",
                    "unique-id", "user", "search", "write-home-timeline"}
        assert expected <= set(self.app.services)

    def test_index_shards_exist(self):
        assert {"index0", "index1", "index2", "index3"} <= \
            set(self.app.services)

    def test_storage_pairs_exist(self):
        for prefix in ("post-storage", "user-timeline", "social-graph"):
            assert f"{prefix}-memcached" in self.app.services
            assert f"{prefix}-mongodb" in self.app.services

    def test_client_pool_on_home_timeline(self):
        home = self.app.service("home-timeline")
        assert "poststorage" in home.client_pools

    def test_read_home_timeline_path(self):
        request = run_request(self.env, self.app, "read_home_timeline")
        services = {s.service for s in request.root_span.walk()}
        assert {"front-end", "home-timeline", "social-graph",
                "post-storage"} <= services

    def test_compose_post_fans_out(self):
        request = run_request(self.env, self.app, "compose_post")
        services = {s.service for s in request.root_span.walk()}
        assert {"compose-post", "unique-id", "text", "media", "user",
                "post-storage", "user-timeline",
                "write-home-timeline"} <= services

    def test_search_hits_all_shards(self):
        request = run_request(self.env, self.app, "search")
        services = {s.service for s in request.root_span.walk()}
        assert {"index0", "index1", "index2", "index3"} <= services

    def test_set_request_weight_scales_downstream(self):
        set_request_weight(self.app, HEAVY_POSTS)
        mongo = self.app.service("post-storage-mongodb")
        post = self.app.service("post-storage")
        assert mongo.demand_scale == pytest.approx(
            HEAVY_POSTS / LIGHT_POSTS)
        assert 1.0 < post.demand_scale < mongo.demand_scale

    def test_set_request_weight_light_is_identity(self):
        set_request_weight(self.app, LIGHT_POSTS)
        assert self.app.service("post-storage-mongodb").demand_scale == 1.0

    def test_set_request_weight_validation(self):
        with pytest.raises(ValueError):
            set_request_weight(self.app, 0)

    def test_heavy_requests_slower(self):
        light = run_request(self.env, self.app, "read_home_timeline")
        set_request_weight(self.app, HEAVY_POSTS)
        heavy_samples = []
        for _ in range(5):
            heavy_samples.append(run_request(
                self.env, self.app, "read_home_timeline").response_time)
        assert min(heavy_samples) > light.response_time * 0.8

    def test_service_count_near_paper(self):
        # The paper's Social Network has 36 microservices; ours models
        # the named ones in Fig. 2 plus storage pairs and index shards.
        assert len(self.app.services) >= 24
