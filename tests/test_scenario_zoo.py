"""Unit tests for the scenario zoo: archetype semantics and wiring.

Each archetype must (a) build a valid, deterministic topology and
(b) actually exhibit its tail-at-scale shape change — hedge duplicates,
quorum straggler truncation, cache-miss fallthrough, degraded fan-out
subtrees — under a short open-loop run.
"""

import networkx as nx
import pytest

from repro.experiments import run_scenario
from repro.faults.plan import FaultPlan
from repro.scenarios import (
    ARCHETYPES,
    ZOO_FAULT_KINDS,
    ZooParams,
    bottleneck_service,
    build_topology,
    structural_diff,
    topology_fingerprint,
    topology_to_dict,
    zoo_fault_plan,
    zoo_scenario,
)
from repro.sim import Environment, RandomStreams
from repro.workloads import OpenLoopDriver, build_trace


def span_counts(app, until=1e9):
    """Per-service span counts across all recorded traces."""
    counts = {}

    def walk(span):
        counts[span.service] = counts.get(span.service, 0) + 1
        for child in span.children:
            walk(child)

    for root in app.warehouse.traces(0.0, until):
        walk(root)
    return counts


def run_open_loop(params, seed=1, rate=50.0, duration=4.0):
    """Drive a generated topology open-loop and drain it."""
    env = Environment()
    streams = RandomStreams(seed)
    topology = build_topology(env, streams, params)
    driver = OpenLoopDriver(env, topology.app, "zoo", rate,
                            streams.stream("driver"), duration=duration)
    driver.start()
    env.run(until=duration + 5.0)
    return topology


class TestZooParams:
    def test_unknown_archetype_rejected(self):
        with pytest.raises(ValueError):
            ZooParams(archetype="ring")

    @pytest.mark.parametrize("field,value", [
        ("shards", 1),
        ("quorum_k", 0),
        ("quorum_k", 9),
        ("slow_factor", 0.5),
        ("hedge_after", 0.0),
        ("hit_ratio", 1.0),
        ("storm_at", -1.0),
        ("storm_duration", 0.0),
        ("storm_miss", 0.0),
        ("hot_weight", 1.0),
        ("demand_ms", 0.0),
        ("entry_threads", 0),
        ("connections", 0),
        ("replicas", 0),
        ("degrade_timeout", 0.0),
    ])
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            ZooParams(archetype="quorum_reads", **{field: value})

    def test_round_trip(self):
        params = ZooParams(archetype="cache_aside", hit_ratio=0.8,
                           storm_at=30.0, storm_miss=0.95)
        rebuilt = ZooParams.from_dict(params.to_dict())
        assert rebuilt == params

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            ZooParams.from_dict({"archetype": "cache_aside",
                                 "bogus": 1})

    def test_labels_are_distinct(self):
        labels = {ZooParams(archetype=a).label for a in ARCHETYPES}
        assert len(labels) == len(ARCHETYPES)


class TestTopologyGeneration:
    @pytest.mark.parametrize("archetype", ARCHETYPES)
    def test_builds_valid_dag(self, archetype):
        env = Environment()
        topology = build_topology(env, RandomStreams(0),
                                  ZooParams(archetype=archetype))
        app = topology.app
        app.validate()
        graph = app.call_graph()
        assert nx.is_directed_acyclic_graph(graph)
        assert "gateway" in app.services
        assert topology.bottleneck in app.services
        assert topology.pool_name in app.service("gateway").client_pools
        assert graph.has_edge(*topology.critical_edge)

    @pytest.mark.parametrize("archetype", ARCHETYPES)
    def test_same_params_identical_structure(self, archetype):
        params = ZooParams(archetype=archetype,
                           storm_at=20.0 if archetype == "cache_aside"
                           else None)
        first = build_topology(Environment(), RandomStreams(5), params)
        second = build_topology(Environment(), RandomStreams(5), params)
        assert structural_diff(topology_to_dict(first.app),
                               topology_to_dict(second.app)) == []
        assert (topology_fingerprint(first.app)
                == topology_fingerprint(second.app))

    def test_different_params_different_fingerprint(self):
        base = ZooParams(archetype="quorum_reads")
        wider = ZooParams(archetype="quorum_reads", shards=5)
        fp = topology_fingerprint(
            build_topology(Environment(), RandomStreams(0), base).app)
        fp_wider = topology_fingerprint(
            build_topology(Environment(), RandomStreams(0), wider).app)
        assert fp != fp_wider

    def test_bottleneck_matches_built_topology(self):
        for archetype in ARCHETYPES:
            params = ZooParams(archetype=archetype)
            topology = build_topology(Environment(), RandomStreams(0),
                                      params)
            assert bottleneck_service(params) == topology.bottleneck

    def test_structural_diff_localizes_changes(self):
        params = ZooParams(archetype="hot_shard_db")
        payload = topology_to_dict(
            build_topology(Environment(), RandomStreams(0), params).app)
        other = topology_to_dict(
            build_topology(Environment(), RandomStreams(0), params).app)
        other["services"]["gateway"]["client_pools"]["shards"] = 99
        lines = structural_diff(payload, other)
        assert len(lines) == 1
        assert "$.services.gateway.client_pools.shards" in lines[0]


class TestArchetypeSemantics:
    def test_hedge_issues_duplicates(self):
        # A hedge delay far below the demand mean forces duplicates:
        # the backend sees strictly more spans than completed requests.
        params = ZooParams(archetype="hedged_requests",
                           hedge_after=0.002, demand_ms=5.0)
        topology = run_open_loop(params)
        app = topology.app
        counts = span_counts(app)
        completed = app.latency["zoo"].total
        assert completed > 0
        assert counts["backend"] > completed
        assert app.in_flight == 0

    def test_quorum_spawns_all_members_and_conserves(self):
        params = ZooParams(archetype="quorum_reads", shards=3,
                           quorum_k=2, slow_factor=8.0)
        topology = run_open_loop(params)
        app = topology.app
        counts = span_counts(app)
        completed = app.latency["zoo"].total
        assert completed == app.total_submitted
        # Every member is attempted; the slow one is routinely
        # cancelled after the quorum resolves, but its span exists.
        for index in range(3):
            assert counts[f"replica-{index}"] == completed
        # Stragglers were actually truncated: gateway pool is drained.
        assert app.service("gateway").client_pools["replicas"].in_use \
            == 0

    def test_cache_storm_flips_miss_ratio(self):
        params = ZooParams(archetype="cache_aside", hit_ratio=0.9,
                           storm_at=1.0, storm_duration=2.0,
                           storm_miss=1.0)
        topology = run_open_loop(params, duration=6.0)
        app = topology.app

        in_storm = out_storm = 0
        storm_requests = other_requests = 0

        def db_hits(span):
            return (span.service == "db") + sum(
                db_hits(c) for c in span.children)

        for root in app.warehouse.traces(0.0, 1e9):
            if 1.0 <= root.arrival < 3.0:
                storm_requests += 1
                in_storm += db_hits(root)
            else:
                other_requests += 1
                out_storm += db_hits(root)
        assert storm_requests > 0 and other_requests > 0
        # storm_miss=1.0: every storm-window request falls through.
        assert in_storm == storm_requests
        # At hit_ratio=0.9 the off-storm fallthrough is rare.
        assert out_storm / other_requests < 0.5

    def test_fanout_degrades_slow_shard(self):
        params = ZooParams(archetype="fanout_slow_shard",
                           slow_factor=50.0, degrade_timeout=0.01,
                           demand_ms=4.0)
        topology = run_open_loop(params, rate=20.0)
        app = topology.app
        stats = app.service("gateway").call_policy_stats("shard-0")
        assert stats["degraded"] > 0
        # Degraded fan-outs still complete: nothing lost, nothing stuck.
        assert app.latency["zoo"].total == app.total_submitted
        assert app.in_flight == 0

    def test_hot_shard_receives_hot_share(self):
        params = ZooParams(archetype="hot_shard_db", shards=4,
                           hot_weight=0.7)
        topology = run_open_loop(params)
        counts = span_counts(topology.app)
        hot = counts.get("shard-0", 0)
        cold = sum(counts.get(f"shard-{i}", 0) for i in range(1, 4))
        assert hot > cold  # 70% vs 30% split, wide margin


class TestZooFaultPlans:
    @pytest.mark.parametrize("kind", ZOO_FAULT_KINDS)
    def test_plans_validate_against_built_app(self, kind):
        params = ZooParams(archetype="cache_aside")
        plan = zoo_fault_plan(params, kind)
        assert isinstance(plan, FaultPlan)
        app = build_topology(Environment(), RandomStreams(0),
                             params).app
        plan.validate(app)
        if kind == "none":
            assert not plan
        else:
            assert len(plan) == 1
            # Round-trips like any hand-written plan.
            assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown zoo fault"):
            zoo_fault_plan(ZooParams(archetype="cache_aside"), "fire")

    def test_blackout_needs_replicas(self):
        with pytest.raises(ValueError, match="blackout"):
            zoo_fault_plan(ZooParams(archetype="cache_aside",
                                     replicas=1), "blackout")


class TestZooScenario:
    def test_scenario_assembles_and_runs(self):
        trace = build_trace("slowly_varying", duration=15.0,
                            peak_users=20, min_users=5)
        scenario = zoo_scenario(
            ZooParams(archetype="fanout_slow_shard"), trace=trace,
            controller="none", autoscaler="hpa", seed=9)
        assert scenario.request_type == "zoo"
        assert scenario.target is not None
        result = run_scenario(scenario, duration=15.0)
        assert result.total_submitted > 0
        assert result.response_times.size + result.failed_total \
            <= result.total_submitted

    def test_fault_plan_validated_at_assembly(self):
        trace = build_trace("slowly_varying", duration=10.0,
                            peak_users=10, min_users=5)
        plan = FaultPlan.from_dict({"faults": [
            {"kind": "crash", "service": "no-such-svc", "at": 1.0}]})
        with pytest.raises(ValueError, match="unknown service"):
            zoo_scenario(ZooParams(archetype="cache_aside"),
                         trace=trace, fault_plan=plan)
