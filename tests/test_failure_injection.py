"""Failure injection: interrupts and crashes must not leak resources.

A request process that dies mid-flight (timeout enforcement, operator
kill, injected fault) must release every pool token it held, keep the
service accounting consistent, and leave the rest of the system
serving traffic.
"""

import pytest

from repro.app import Application, Call, Compute, Microservice, Operation
from repro.resources import SoftResourcePool
from repro.sim import (
    Constant,
    Environment,
    Interrupt,
    RandomStreams,
)


def build_app(env, streams, *, threads=2, pool=None, demand=0.05):
    app = Application(env)
    svc = Microservice(env, "svc", streams.stream("svc"), cores=2.0,
                       thread_pool_size=threads)
    backend = Microservice(env, "backend", streams.stream("be"),
                           cores=2.0)
    backend.add_operation(Operation("default", [
        Compute(Constant(demand))]))
    steps = [Compute(Constant(0.001))]
    if pool:
        svc.add_client_pool(pool, 2)
        steps.append(Call("backend", via_pool=pool))
    else:
        steps.append(Call("backend"))
    svc.add_operation(Operation("default", steps))
    app.add_service(svc)
    app.add_service(backend)
    app.set_entrypoint("go", "svc", "default")
    return app


class TestInterruptedRequests:
    def test_interrupt_releases_server_thread(self):
        env = Environment()
        streams = RandomStreams(0)
        app = build_app(env, streams, threads=1)
        svc = app.service("svc")

        _request, process = app.submit("go")

        def killer(env):
            yield env.timeout(0.01)  # mid-backend-call
            process.interrupt(cause="injected fault")

        env.process(killer(env))
        with pytest.raises(Interrupt):
            env.run(until=process)
        env.run()
        # The thread token must have been released.
        assert svc.replicas[0].server_pool.in_use == 0
        assert svc.replicas[0].active_requests == 0

        # And a follow-up request must be served normally.
        request2, process2 = app.submit("go")
        env.run(until=process2)
        assert request2.finished

    def test_interrupt_releases_client_pool(self):
        env = Environment()
        streams = RandomStreams(0)
        app = build_app(env, streams, threads=4, pool="db")
        svc = app.service("svc")
        pool = svc.client_pool("db")

        _request, process = app.submit("go")

        def killer(env):
            yield env.timeout(0.01)
            process.interrupt()

        env.process(killer(env))
        with pytest.raises(Interrupt):
            env.run(until=process)
        env.run()
        assert pool.in_use == 0

    def test_interrupt_records_span_departure(self):
        env = Environment()
        streams = RandomStreams(0)
        app = build_app(env, streams)
        svc = app.service("svc")
        before = svc.metrics.total_completed

        _request, process = app.submit("go")

        def killer(env):
            yield env.timeout(0.01)
            process.interrupt()

        env.process(killer(env))
        with pytest.raises(Interrupt):
            env.run(until=process)
        env.run()
        # The aborted request still closed its span at svc (the finally
        # block), so monitoring keeps a consistent view.
        assert svc.metrics.total_completed == before + 1

    def test_other_requests_unaffected_by_interrupt(self):
        env = Environment()
        streams = RandomStreams(0)
        app = build_app(env, streams, threads=4)
        victim_request, victim = app.submit("go")
        survivors = [app.submit("go") for _ in range(3)]

        def killer(env):
            yield env.timeout(0.005)
            victim.interrupt()

        env.process(killer(env))
        with pytest.raises(Interrupt):
            env.run(until=victim)
        env.run()
        assert not victim_request.finished
        assert all(r.finished for r, _p in survivors)


class TestTimeoutEnforcement:
    def test_client_side_timeout_pattern(self):
        """The any_of pattern a client uses to bound a call."""
        env = Environment()
        streams = RandomStreams(0)
        app = build_app(env, streams, demand=0.5)
        outcome = {}

        def client(env):
            _request, process = app.submit("go")
            deadline = env.timeout(0.1, value="timeout")
            first = yield env.any_of([process, deadline])
            outcome["timed_out"] = "timeout" in list(first.values())
            if outcome["timed_out"]:
                process.interrupt(cause="client timeout")

        env.process(client(env))
        env.run()
        assert outcome["timed_out"]
        assert app.service("svc").replicas[0].server_pool.in_use == 0


class TestPoolWaiterCancellation:
    def test_cancelled_waiter_does_not_consume_token(self):
        env = Environment()
        pool = SoftResourcePool(env, capacity=1)
        pool.acquire()
        waiting = pool.acquire()
        pool.cancel(waiting)
        pool.release()
        assert pool.available == 1
        assert not waiting.triggered
