"""Tests for the MVA solver — including validation of the simulator
against exact queueing theory."""

import numpy as np
import pytest

from repro.analysis.queueing import (
    Station,
    asymptotic_bounds,
    bottleneck,
    solve_mva,
    solve_mva_sweep,
)
from repro.app import Application, Call, Compute, Microservice, Operation
from repro.sim import Constant, Environment, Exponential, LogNormal, \
    RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace


class TestStationValidation:
    def test_negative_demand(self):
        with pytest.raises(ValueError):
            Station("s", demand=-1.0)

    def test_negative_visits(self):
        with pytest.raises(ValueError):
            Station("s", demand=1.0, visits=-1.0)

    def test_multi_needs_servers(self):
        with pytest.raises(ValueError):
            Station("s", demand=1.0, kind="multi", servers=0)


class TestSolveMva:
    def test_single_station_single_user(self):
        # One user, no think time: R = s, X = 1/s.
        result = solve_mva([Station("cpu", demand=0.1)], population=1)
        assert result.throughput == pytest.approx(10.0)
        assert result.response_times["cpu"] == pytest.approx(0.1)

    def test_think_time_reduces_throughput(self):
        stations = [Station("cpu", demand=0.1)]
        no_think = solve_mva(stations, population=1, think_time=0.0)
        think = solve_mva(stations, population=1, think_time=0.9)
        assert think.throughput == pytest.approx(1.0)
        assert think.throughput < no_think.throughput

    def test_zero_population(self):
        result = solve_mva([Station("cpu", demand=0.1)], population=0)
        assert result.throughput == 0.0

    def test_saturation_approaches_bound(self):
        stations = [Station("cpu", demand=0.02),
                    Station("db", demand=0.05)]
        result = solve_mva(stations, population=200, think_time=1.0)
        x_max, _n_star = asymptotic_bounds(stations, think_time=1.0)
        assert result.throughput == pytest.approx(x_max, rel=0.01)
        assert x_max == pytest.approx(20.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            solve_mva([Station("a", 0.1), Station("a", 0.2)], 1)

    def test_invalid_population_or_think(self):
        with pytest.raises(ValueError):
            solve_mva([Station("a", 0.1)], -1)
        with pytest.raises(ValueError):
            solve_mva([Station("a", 0.1)], 1, think_time=-1.0)

    def test_delay_station_no_queueing(self):
        # A delay station's residence is independent of population.
        stations = [Station("think", demand=1.0, kind="delay"),
                    Station("cpu", demand=0.01)]
        small = solve_mva(stations, population=1)
        large = solve_mva(stations, population=50)
        assert small.response_times["think"] == \
            large.response_times["think"] == pytest.approx(1.0)

    def test_little_law_consistency(self):
        stations = [Station("cpu", demand=0.03),
                    Station("db", demand=0.02)]
        result = solve_mva(stations, population=10, think_time=0.5)
        for station in stations:
            expected = result.throughput * \
                result.response_times[station.name]
            assert result.queue_lengths[station.name] == \
                pytest.approx(expected)
        # Population conservation: queues + thinking users = N.
        thinking = result.throughput * 0.5
        total = sum(result.queue_lengths.values()) + thinking
        assert total == pytest.approx(10.0)

    def test_sweep_monotone_throughput(self):
        stations = [Station("cpu", demand=0.05)]
        results = solve_mva_sweep(stations, [1, 2, 5, 10, 20],
                                  think_time=0.5)
        throughputs = [r.throughput for r in results]
        assert throughputs == sorted(throughputs)
        assert all(x <= 20.0 + 1e-9 for x in throughputs)

    def test_multi_server_beats_single(self):
        single = solve_mva([Station("cpu", demand=0.05)], 10)
        multi = solve_mva([Station("cpu", demand=0.05, kind="multi",
                                   servers=4)], 10)
        assert multi.throughput > single.throughput

    def test_utilization(self):
        stations = [Station("cpu", demand=0.05)]
        result = solve_mva(stations, population=50, think_time=1.0)
        assert result.utilization(stations[0]) == pytest.approx(
            1.0, abs=0.02)


class TestBottleneck:
    def test_largest_demand_wins(self):
        stations = [Station("cpu", demand=0.02),
                    Station("db", demand=0.05),
                    Station("think", demand=9.0, kind="delay")]
        assert bottleneck(stations).name == "db"

    def test_multi_server_divides_demand(self):
        stations = [Station("a", demand=0.04),
                    Station("b", demand=0.06, kind="multi", servers=4)]
        assert bottleneck(stations).name == "a"

    def test_no_queueing_stations(self):
        with pytest.raises(ValueError):
            bottleneck([Station("z", demand=1.0, kind="delay")])


class TestSimulatorAgainstTheory:
    """The headline validation: the DES must match exact MVA."""

    def simulate_chain(self, demands, population, think, duration=300.0,
                       dist="lognormal", seed=5):
        env = Environment()
        streams = RandomStreams(seed)
        app = Application(env)
        names = [f"s{i}" for i in range(len(demands))]
        for index, (name, demand) in enumerate(zip(names, demands)):
            service = Microservice(env, name, streams.stream(name),
                                   cores=1.0, cpu_overhead=0.0)
            if dist == "lognormal":
                compute = Compute(LogNormal(demand, cv=1.2))
            elif dist == "exponential":
                compute = Compute(Exponential(demand))
            else:
                compute = Compute(Constant(demand))
            steps = [compute]
            if index + 1 < len(names):
                steps.append(Call(names[index + 1]))
            service.add_operation(Operation("default", steps))
            app.add_service(service)
        app.set_entrypoint("go", names[0], "default")
        trace = WorkloadTrace("flat", duration, population, population,
                              lambda u: 1.0)
        driver = ClosedLoopDriver(env, app, "go", trace,
                                  streams.stream("drv"),
                                  think_time=Exponential(think))
        driver.start()
        env.run(until=duration + 1.0)
        # Measure over the steady-state second half.
        times, latencies = app.latency["go"].window(duration / 2,
                                                    duration)
        throughput = times.size / (duration / 2)
        return throughput, float(np.mean(latencies))

    @pytest.mark.parametrize("dist", ["exponential", "lognormal"])
    def test_tandem_network_matches_mva(self, dist):
        """PS is insensitive to the service distribution, so both
        exponential and lognormal demands must match the same MVA
        solution."""
        demands = [0.020, 0.035]
        population, think = 12, 0.4
        stations = [Station(f"s{i}", d) for i, d in enumerate(demands)]
        theory = solve_mva(stations, population, think_time=think)
        sim_x, sim_r = self.simulate_chain(demands, population, think,
                                           dist=dist)
        assert sim_x == pytest.approx(theory.throughput, rel=0.05)
        assert sim_r == pytest.approx(theory.cycle_time, rel=0.10)

    def test_light_load_matches_mva(self):
        demands = [0.010, 0.010, 0.010]
        stations = [Station(f"s{i}", d) for i, d in enumerate(demands)]
        theory = solve_mva(stations, 2, think_time=1.0)
        sim_x, sim_r = self.simulate_chain(demands, 2, 1.0)
        assert sim_x == pytest.approx(theory.throughput, rel=0.05)
        assert sim_r == pytest.approx(theory.cycle_time, rel=0.15)

    def test_saturated_matches_bottleneck_bound(self):
        demands = [0.030, 0.010]
        stations = [Station(f"s{i}", d) for i, d in enumerate(demands)]
        x_max, _ = asymptotic_bounds(stations, think_time=0.2)
        sim_x, _sim_r = self.simulate_chain(demands, 40, 0.2)
        assert sim_x == pytest.approx(x_max, rel=0.05)
