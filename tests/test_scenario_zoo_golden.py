"""Golden-snapshot tests: generator refactors can't silently reshape
scenarios.

One committed canonical JSON per archetype (built with default params
plus a storm for ``cache_aside``, seed 42). A structural change to a
generator shows up as a precise path diff here; deliberate reshapes
regenerate the snapshots with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_scenario_zoo_golden.py
"""

import json
import os
import pathlib

import pytest

from repro.scenarios import (
    ARCHETYPES,
    ZooParams,
    build_topology,
    structural_diff,
    topology_to_dict,
)
from repro.sim import Environment, RandomStreams

GOLDEN_DIR = (pathlib.Path(__file__).resolve().parent / "golden"
              / "scenario_zoo")
REGEN = os.environ.get("REPRO_REGEN_GOLDEN", "") == "1"


def golden_params(archetype: str) -> ZooParams:
    """The canonical parameterization snapshotted per archetype."""
    return ZooParams(
        archetype=archetype,
        storm_at=45.0 if archetype == "cache_aside" else None)


def build_canonical(archetype: str) -> dict:
    topology = build_topology(Environment(), RandomStreams(42),
                              golden_params(archetype))
    return topology_to_dict(topology.app)


@pytest.mark.parametrize("archetype", ARCHETYPES)
def test_archetype_matches_golden_snapshot(archetype):
    path = GOLDEN_DIR / f"{archetype}.json"
    actual = build_canonical(archetype)
    if REGEN:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
    assert path.exists(), (
        f"missing golden snapshot {path}; regenerate with "
        "REPRO_REGEN_GOLDEN=1")
    expected = json.loads(path.read_text(encoding="utf-8"))
    diff = structural_diff(expected, actual)
    assert diff == [], (
        f"{archetype} topology diverged from its golden snapshot "
        f"({len(diff)} differences):\n" + "\n".join(diff[:20])
        + "\n(regenerate deliberately with REPRO_REGEN_GOLDEN=1)")


def test_golden_directory_has_no_strays():
    """Every committed snapshot corresponds to a live archetype."""
    committed = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert committed == set(ARCHETYPES)
