"""Determinism of the parallel experiment fan-out.

The fan-out's whole contract is: distributing independent simulations
over worker processes changes wall clock, never results. These tests
hold that contract with byte-level comparisons — goodput floats, frozen
``SweepResult`` equality, and event-stream digests from the validation
subsystem's fingerprint machinery — always forcing a real spawn pool
(``max_workers=2``) so the worker path runs even on a single-CPU host.
"""

import pytest

from repro.experiments.bench import fanout_goodput, trace_run_digest
from repro.experiments.parallel import (
    default_workers,
    parallel_map,
    parallel_starmap,
)
from repro.experiments.sweep import SweepResult, sweep

#: Small enough to keep the spawn round trip cheap, large enough that
#: a nondeterministic kernel would actually diverge.
_REQUESTS = 60

_SPECS = [(seed, _REQUESTS) for seed in (1, 2, 3, 4)]


def _goodput_of_seed(seed):
    """Module-level sweep measure (picklable)."""
    return fanout_goodput((seed, _REQUESTS))


def test_parallel_map_matches_serial():
    serial = [fanout_goodput(spec) for spec in _SPECS]
    parallel = parallel_map(fanout_goodput, _SPECS, max_workers=2)
    assert parallel == serial


def test_parallel_starmap_matches_serial():
    serial = [fanout_goodput((seed, n)) for seed, n in _SPECS]
    parallel = parallel_starmap(
        lambda seed, n: fanout_goodput((seed, n)), _SPECS,
        max_workers=1)
    assert parallel == serial


def test_serial_fallback_accepts_closures():
    # max_workers=1 must not spawn, so unpicklable closures are fine.
    offset = 10
    assert parallel_map(lambda x: x + offset, [1, 2, 3],
                        max_workers=1) == [11, 12, 13]


def test_parallel_map_empty_and_order():
    assert parallel_map(fanout_goodput, [], max_workers=2) == []
    # Order of results follows order of inputs, not completion.
    doubled = parallel_starmap(_pair, [(1, 2), (3, 4), (5, 6)],
                               max_workers=2)
    assert doubled == [(1, 2), (3, 4), (5, 6)]


def _pair(a, b):
    return (a, b)


def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "3")
    assert default_workers() == 3
    monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "0")
    with pytest.raises(ValueError):
        default_workers()
    monkeypatch.delenv("REPRO_PARALLEL_WORKERS")
    assert default_workers() >= 1


def test_parallel_sweep_identical_to_serial():
    grid = [1, 2, 3, 4, 5, 6]
    serial = sweep(grid, _goodput_of_seed)
    parallel = sweep(grid, _goodput_of_seed, parallel=True,
                     max_workers=2)
    # Frozen dataclass: equality covers metrics, argmax, and margin.
    assert parallel == serial


def test_six_trace_digests_identical_to_serial():
    """Parallel six-trace fan-out is byte-identical to the serial loop.

    Uses the validation subsystem's event-stream fingerprint — the
    strongest equality we have: every event count, latency quantile,
    adaptation action, and trace digest must match, not just a summary
    metric.
    """
    from repro.workloads import TRACE_NAMES

    specs = [(name, 4.0, 7) for name in TRACE_NAMES]
    serial = [trace_run_digest(spec) for spec in specs]
    parallel = parallel_map(trace_run_digest, specs, max_workers=2)
    assert parallel == serial
    # Distinct traces must actually produce distinct event streams —
    # otherwise the digest comparison above proves nothing.
    assert len(set(serial)) > 1


def test_sweep_degenerate_all_zero():
    result = sweep([1, 2, 3], lambda value: 0.0)
    assert result.degenerate
    assert result.margin == 1.0
    assert result.is_tie
    # All-zero sweeps must not invent a ranking.
    assert result.normalized() == {1: 0.0, 2: 0.0, 3: 0.0}


def test_sweep_zero_runner_up_margin():
    result = sweep([1, 2], lambda value: 5.0 if value == 1 else 0.0)
    assert result.best == 1
    assert result.margin == float("inf")
    assert not result.degenerate
    assert result.normalized() == {1: 1.0, 2: 0.0}
