"""Tests for the SCG and SCT scatter-curve models."""

import numpy as np
import pytest

from repro.core import SCGModel, SCTModel, ScatterModelConfig


def synth_pairs(rng, *, knee=10.0, capacity=300.0, decline=0.02,
                samples=600, q_max=25.0, noise=10.0):
    """Synthesize <Q, GP> pairs from a rise-flatten-decline curve."""
    q = rng.uniform(0.5, q_max, samples)
    gp = np.where(q < knee, capacity * q / knee,
                  capacity * (1.0 - decline * (q - knee)))
    gp = np.clip(gp + rng.normal(0.0, noise, samples), 0.0, None)
    return q, gp


class TestSCGModel:
    def setup_method(self):
        self.rng = np.random.default_rng(7)

    def test_recovers_synthetic_knee(self):
        q, gp = synth_pairs(self.rng, knee=10.0)
        estimate = SCGModel().estimate(q, gp, threshold=0.25)
        assert estimate is not None
        assert estimate.method == "knee"
        assert estimate.optimal_concurrency == pytest.approx(10, abs=3)
        assert estimate.threshold == 0.25

    def test_knee_scales_with_curve(self):
        for knee in (5.0, 15.0):
            q, gp = synth_pairs(self.rng, knee=knee, q_max=3 * knee)
            estimate = SCGModel().estimate(q, gp)
            assert estimate is not None
            assert estimate.optimal_concurrency == pytest.approx(
                knee, abs=0.35 * knee)

    def test_too_few_samples_returns_none(self):
        q, gp = synth_pairs(self.rng, samples=10)
        assert SCGModel().estimate(q, gp) is None

    def test_too_few_distinct_levels_returns_none(self):
        q = np.full(100, 3.0)
        gp = np.full(100, 100.0)
        assert SCGModel().estimate(q, gp) is None

    def test_idle_samples_ignored(self):
        q, gp = synth_pairs(self.rng)
        q = np.concatenate([q, np.zeros(200)])
        gp = np.concatenate([gp, np.zeros(200)])
        estimate = SCGModel().estimate(q, gp)
        assert estimate is not None
        assert estimate.optimal_concurrency == pytest.approx(10, abs=3)

    def test_rising_curve_recommendation_is_at_the_edge(self):
        # Pure linear rise: no interior knee exists. Whether the model
        # reports an edge knee (fitting wiggle) or the argmax fallback,
        # the recommendation must sit at the top of the observed range —
        # the signal the adapter's exploration rule keys on.
        q = self.rng.uniform(0.5, 20.0, 400)
        gp = 10.0 * q + self.rng.normal(0, 2.0, 400)
        estimate = SCGModel().estimate(q, gp)
        assert estimate is not None
        assert estimate.optimal_concurrency >= \
            0.8 * estimate.max_concurrency

    def test_argmax_fallback_disabled(self):
        config = ScatterModelConfig(allow_argmax_fallback=False,
                                    knee_quality=0.97)
        q = self.rng.uniform(0.5, 20.0, 400)
        gp = 10.0 * q + self.rng.normal(0, 2.0, 400)
        assert SCGModel(config).estimate(q, gp) is None

    def test_max_concurrency_reported(self):
        q, gp = synth_pairs(self.rng, q_max=18.0)
        estimate = SCGModel().estimate(q, gp)
        assert estimate is not None
        assert estimate.max_concurrency == pytest.approx(18.0, abs=1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            SCGModel().estimate(np.ones(5), np.ones(6))

    def test_threshold_changes_knee(self):
        """The SCG premise (Fig. 7): a tighter threshold reshapes the
        goodput curve, moving the knee."""
        q = self.rng.uniform(0.5, 30.0, 800)
        # Loose threshold: goodput ~ throughput, knee at 15.
        loose = np.where(q < 15, 300 * q / 15, 300.0)
        # Tight threshold: responses past Q=6 start missing it.
        tight = np.where(q < 6, 300 * q / 15,
                         np.clip(120 - 10 * (q - 6), 0, None))
        noise = self.rng.normal(0, 5.0, 800)
        est_loose = SCGModel().estimate(q, loose + noise)
        est_tight = SCGModel().estimate(q, tight + noise)
        assert est_loose is not None and est_tight is not None
        assert est_tight.optimal_concurrency < \
            est_loose.optimal_concurrency

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ScatterModelConfig(min_degree=5, max_degree=3)
        with pytest.raises(ValueError):
            ScatterModelConfig(min_distinct=2)
        with pytest.raises(ValueError):
            ScatterModelConfig(quantum=0.0)
        with pytest.raises(ValueError):
            ScatterModelConfig(knee_quality=1.5)


class TestSCTModel:
    def test_rejects_threshold(self):
        with pytest.raises(ValueError):
            SCTModel().estimate(np.ones(50), np.ones(50), threshold=0.1)

    def test_estimates_throughput_knee(self):
        rng = np.random.default_rng(3)
        q, tp = synth_pairs(rng, knee=12.0, decline=0.005)
        estimate = SCTModel().estimate(q, tp)
        assert estimate is not None
        assert estimate.optimal_concurrency == pytest.approx(12, abs=4)
        assert estimate.threshold is None

    def test_model_names(self):
        assert SCGModel().name == "scg"
        assert SCTModel().name == "sct"
