"""Tests for the processor-sharing CPU model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resources import ProcessorSharingCpu
from repro.sim import Environment


def run_jobs(cores, overhead, submissions):
    """Run ``submissions`` = [(submit_time, work)] and return completion
    times in submission order."""
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=cores, overhead=overhead)
    completions = {}

    def submitter(env, index, at, work):
        if at > 0:
            yield env.timeout(at)
        yield cpu.submit(work)
        completions[index] = env.now

    for index, (at, work) in enumerate(submissions):
        env.process(submitter(env, index, at, work))
    env.run()
    return [completions[i] for i in range(len(submissions))]


def test_single_job_runs_at_full_speed():
    [done] = run_jobs(cores=1, overhead=0.0, submissions=[(0.0, 2.0)])
    assert done == pytest.approx(2.0)


def test_single_job_on_many_cores_still_one_core():
    # One job cannot use more than one core.
    [done] = run_jobs(cores=4, overhead=0.0, submissions=[(0.0, 2.0)])
    assert done == pytest.approx(2.0)


def test_two_jobs_share_one_core():
    done = run_jobs(cores=1, overhead=0.0,
                    submissions=[(0.0, 1.0), (0.0, 1.0)])
    assert done == pytest.approx([2.0, 2.0])


def test_two_jobs_on_two_cores_no_slowdown():
    done = run_jobs(cores=2, overhead=0.0,
                    submissions=[(0.0, 1.0), (0.0, 1.0)])
    assert done == pytest.approx([1.0, 1.0])


def test_unequal_jobs_processor_sharing():
    # Jobs of work 1 and 2 on one core: first finishes at 2 (half rate
    # while sharing), second gets the CPU alone afterwards -> 3.
    done = run_jobs(cores=1, overhead=0.0,
                    submissions=[(0.0, 1.0), (0.0, 2.0)])
    assert done == pytest.approx([2.0, 3.0])


def test_late_arrival_shares_remaining_work():
    # Job A (work 2) alone until t=1 (1 unit left), then shares with B
    # (work 1): both progress at 0.5/s, A finishes at t=3, B at t=3.
    done = run_jobs(cores=1, overhead=0.0,
                    submissions=[(0.0, 2.0), (1.0, 1.0)])
    assert done == pytest.approx([3.0, 3.0])


def test_overhead_stretches_completion():
    # 4 jobs on 2 cores with overhead 0.25: aggregate = 2/(1+0.25*2)=4/3.
    # Each of 4 equal jobs (work 1): total work 4 / (4/3) = 3 seconds.
    done = run_jobs(cores=2, overhead=0.25,
                    submissions=[(0.0, 1.0)] * 4)
    assert done == pytest.approx([3.0] * 4)


def test_zero_work_completes_immediately():
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=1)
    event = cpu.submit(0.0)
    assert event.triggered


def test_negative_work_rejected():
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=1)
    with pytest.raises(ValueError):
        cpu.submit(-1.0)


def test_invalid_cores_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        ProcessorSharingCpu(env, cores=0)
    with pytest.raises(ValueError):
        ProcessorSharingCpu(env, cores=1, overhead=-0.1)


def test_vertical_scale_up_speeds_jobs():
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=1)
    done_times = []

    def job(env):
        yield cpu.submit(2.0)
        done_times.append(env.now)

    def scaler(env):
        yield env.timeout(1.0)
        cpu.set_cores(2)

    env.process(job(env))
    env.process(job(env))
    env.process(scaler(env))
    env.run()
    # Two jobs of work 2 share 1 core until t=1 (each 1.5 left), then get
    # a core each: finish at 1 + 1.5 = 2.5.
    assert done_times == pytest.approx([2.5, 2.5])


def test_vertical_scale_down_slows_jobs():
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=2)
    done_times = []

    def job(env):
        yield cpu.submit(2.0)
        done_times.append(env.now)

    def scaler(env):
        yield env.timeout(1.0)
        cpu.set_cores(1)

    env.process(job(env))
    env.process(job(env))
    env.process(scaler(env))
    env.run()
    # Full speed until t=1 (1 unit left each), then share 1 core: +2s.
    assert done_times == pytest.approx([3.0, 3.0])


def test_busy_core_seconds_accounting():
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=4)

    def job(env):
        yield cpu.submit(3.0)

    env.process(job(env))
    env.run(until=10.0)
    # One job on 4 cores: busy 1 core for 3 seconds.
    assert cpu.busy_core_seconds() == pytest.approx(3.0)


def test_work_done_excludes_overhead():
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=1, overhead=1.0)

    def job(env):
        yield cpu.submit(1.0)

    env.process(job(env))
    env.process(job(env))
    env.run()
    # Two jobs, one core, overhead doubles wall time: busy 4s, work 2.
    assert cpu.work_done() == pytest.approx(2.0)
    assert cpu.busy_core_seconds() == pytest.approx(4.0)


def test_active_jobs_tracks_occupancy():
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=1)
    observed = []

    def job(env):
        yield cpu.submit(1.0)

    def observer(env):
        observed.append(cpu.active_jobs)
        env.process(job(env))
        env.process(job(env))
        yield env.timeout(0.5)
        observed.append(cpu.active_jobs)
        yield env.timeout(3.0)
        observed.append(cpu.active_jobs)

    env.process(observer(env))
    env.run()
    assert observed == [0, 2, 0]


def test_aggregate_rate_formula():
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=4, overhead=0.1)
    assert cpu.aggregate_rate(0) == 0.0
    assert cpu.aggregate_rate(2) == pytest.approx(2.0)
    assert cpu.aggregate_rate(4) == pytest.approx(4.0)
    assert cpu.aggregate_rate(8) == pytest.approx(4.0 / 1.4)


@settings(max_examples=30, deadline=None)
@given(
    cores=st.integers(1, 8),
    works=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=10),
)
def test_total_completion_conserves_work(cores, works):
    """Property: with no overhead, the last completion time is at least
    total_work / cores and at most total_work (single-core lower bound)."""
    done = run_jobs(cores=cores, overhead=0.0,
                    submissions=[(0.0, w) for w in works])
    total = sum(works)
    longest = max(works)
    makespan = max(done)
    assert makespan >= total / cores - 1e-6
    assert makespan >= longest - 1e-6
    assert makespan <= total + 1e-6


@settings(max_examples=30, deadline=None)
@given(works=st.lists(st.floats(0.01, 5.0), min_size=2, max_size=8))
def test_ps_completion_order_matches_work_order(works):
    """Property: under PS with simultaneous arrival, less work never
    finishes after more work."""
    done = run_jobs(cores=1, overhead=0.0,
                    submissions=[(0.0, w) for w in works])
    pairs = sorted(zip(works, done))
    finish_times = [d for _w, d in pairs]
    assert finish_times == sorted(finish_times)
