"""Tests for the theory-conformance harness."""

import dataclasses

import pytest

from repro.validation import (
    ConformanceScenario,
    Tolerance,
    generate_scenarios,
    run_conformance,
    run_scenario_conformance,
    scenario_by_name,
)

#: A cheap scenario for plumbing tests (seconds, not minutes).
QUICK = ConformanceScenario(
    name="quick", demands=(0.020, 0.010), population=8, think_time=0.5,
    duration=120.0, description="plumbing-test scenario")


class TestScenarioDefinition:
    def test_family_has_at_least_ten_scenarios(self):
        assert len(generate_scenarios()) >= 10

    def test_family_names_are_unique(self):
        names = [s.name for s in generate_scenarios()]
        assert len(set(names)) == len(names)

    def test_lookup_by_name(self):
        scenario = scenario_by_name("single_knee")
        assert scenario.name == "single_knee"
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_by_name("nope")

    def test_rejects_empty_demands(self):
        with pytest.raises(ValueError, match="at least one service"):
            ConformanceScenario(name="x", demands=(), population=1,
                                think_time=1.0)

    def test_rejects_bad_population(self):
        with pytest.raises(ValueError, match="population"):
            ConformanceScenario(name="x", demands=(0.01,), population=0,
                                think_time=1.0)

    def test_rejects_mismatched_cores(self):
        with pytest.raises(ValueError, match="cores"):
            ConformanceScenario(name="x", demands=(0.01,),
                                population=2, think_time=1.0,
                                cores=(1, 2))

    def test_rejects_binding_thread_pool(self):
        with pytest.raises(ValueError, match="non-binding"):
            ConformanceScenario(name="x", demands=(0.01,),
                                population=10, think_time=1.0,
                                thread_pool=4)

    def test_visits_compound_along_fanout(self):
        scenario = ConformanceScenario(
            name="x", demands=(0.01, 0.01, 0.01), population=2,
            think_time=1.0, fanout=(2, 3))
        assert scenario.visits == (1.0, 2.0, 6.0)

    def test_stations_mark_multicore(self):
        scenario = ConformanceScenario(
            name="x", demands=(0.01, 0.02), population=2,
            think_time=1.0, cores=(1, 4))
        kinds = [s.kind for s in scenario.stations()]
        assert kinds == ["queueing", "multi"]
        assert scenario.stations()[1].servers == 4


class TestTolerance:
    def test_single_core_bounds(self):
        tol = Tolerance.for_scenario(QUICK)
        assert tol.throughput == 0.02
        assert tol.response_time == 0.08

    def test_multi_core_bounds_are_looser(self):
        multi = dataclasses.replace(QUICK, cores=(2, 1))
        tol = Tolerance.for_scenario(multi)
        assert tol.throughput == 0.03
        assert tol.response_time == 0.10


class TestScenarioConformance:
    def test_quick_scenario_structure(self):
        result = run_scenario_conformance(QUICK, seed=7, replications=1)
        assert result.scenario is QUICK
        assert result.sim_throughput > 0
        assert result.mva_throughput > 0
        assert len(result.stations) == 2
        assert all(s.samples > 0 for s in result.stations)
        # Plumbing bound, far looser than the calibrated tolerance.
        assert result.throughput_error < 0.15

    def test_rejects_zero_replications(self):
        with pytest.raises(ValueError, match="replications"):
            run_scenario_conformance(QUICK, replications=0)

    @pytest.mark.conformance
    def test_one_full_scenario_within_tolerance(self):
        result = run_scenario_conformance(
            scenario_by_name("tandem_balanced"))
        assert result.passed, result.failures

    def test_report_render_lists_scenarios(self):
        report = run_conformance([QUICK], seed=7, replications=1)
        text = report.render(verbose=True)
        assert "quick" in text
        assert "s0" in text and "s1" in text
        assert ("PASS" in text) or ("FAIL" in text)


@pytest.mark.slow
@pytest.mark.conformance
class TestFullFamily:
    def test_whole_family_within_tolerance(self):
        report = run_conformance()
        assert report.passed, "\n".join(report.failures)
        assert len(report.results) >= 10
