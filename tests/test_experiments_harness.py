"""Unit tests for the scenario harness and pre-wired scenarios."""

import numpy as np
import pytest

from repro.experiments import (
    run_scenario,
    social_network_drift_scenario,
    sock_shop_cart_scenario,
    sock_shop_catalogue_scenario,
)
from repro.workloads import WorkloadTrace


def tiny_trace(users=60, duration=10.0):
    return WorkloadTrace("tiny", duration, users, users, lambda u: 1.0)


class TestScenarioBuilders:
    def test_cart_scenario_wiring(self):
        scenario = sock_shop_cart_scenario(
            trace=tiny_trace(), controller="sora", autoscaler="firm")
        assert scenario.request_type == "cart"
        assert scenario.controller is not None
        assert scenario.autoscaler is not None
        assert scenario.target.name == "cart.threads"

    def test_catalogue_scenario_wiring(self):
        scenario = sock_shop_catalogue_scenario(
            trace=tiny_trace(), controller="none", autoscaler="hpa")
        assert scenario.request_type == "catalogue"
        assert scenario.controller is None
        assert "catalogue.db" in scenario.target.name
        assert "catalogue.busy_cores" in scenario.extra_probes

    def test_drift_scenario_wiring(self):
        scenario = social_network_drift_scenario(
            trace=tiny_trace(), controller="conscale", autoscaler="hpa",
            drift_at=5.0)
        assert scenario.request_type == "read_home_timeline"
        assert scenario.controller.model_name == "sct"

    def test_unknown_controller_kind(self):
        with pytest.raises(ValueError):
            sock_shop_cart_scenario(trace=tiny_trace(),
                                    controller="bogus")

    def test_unknown_autoscaler_kind(self):
        with pytest.raises(ValueError):
            sock_shop_cart_scenario(trace=tiny_trace(),
                                    autoscaler="bogus")


class TestRunScenario:
    def test_collects_all_target_series(self):
        scenario = sock_shop_cart_scenario(
            trace=tiny_trace(), controller="none", autoscaler="none")
        result = run_scenario(scenario, duration=10.0)
        for key in ("cart.threads.allocation", "cart.threads.in_use",
                    "cart.cores", "cart.replicas", "cart.busy_cores"):
            times, values = result.series(key)
            assert times.size > 5
            assert values.size == times.size

    def test_result_statistics_consistent(self):
        scenario = sock_shop_cart_scenario(
            trace=tiny_trace(), controller="none", autoscaler="none")
        result = run_scenario(scenario, duration=10.0)
        assert result.total_submitted >= result.response_times.size
        assert result.goodput() <= result.throughput()
        assert result.percentile(50) <= result.percentile(99)
        summary = result.latency_summary()
        assert summary.count == result.response_times.size

    def test_goodput_series_integrates_to_total(self):
        scenario = sock_shop_cart_scenario(
            trace=tiny_trace(), controller="none", autoscaler="none")
        result = run_scenario(scenario, duration=10.0, drain=0.0)
        _times, rates = result.goodput_series(interval=1.0)
        total_from_series = float(np.nansum(rates))  # 1 s buckets
        assert total_from_series == pytest.approx(
            result.goodput() * result.duration, rel=0.05)

    def test_custom_extra_probe(self):
        scenario = sock_shop_cart_scenario(
            trace=tiny_trace(), controller="none", autoscaler="none")
        scenario.extra_probes["constant"] = lambda: 7.0
        result = run_scenario(scenario, duration=5.0)
        _t, values = result.series("constant")
        assert set(values) == {7.0}


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        from repro.experiments import load_result, save_result
        scenario = sock_shop_cart_scenario(
            trace=tiny_trace(), controller="sora", autoscaler="firm")
        result = run_scenario(scenario, duration=10.0)
        path = tmp_path / "result.json"
        save_result(str(path), result)
        loaded = load_result(str(path))
        assert loaded.name == result.name
        assert loaded.summary_row() == result.summary_row()
        assert np.allclose(loaded.response_times, result.response_times)
        assert set(loaded.samples) == set(result.samples)
        assert len(loaded.adaptation_actions) == \
            len(result.adaptation_actions)

    def test_version_check(self):
        from repro.experiments import result_from_dict
        with pytest.raises(ValueError):
            result_from_dict({"version": 999})
