"""Tests for the replica load-balancing policies."""

import numpy as np
import pytest

from repro.app.loadbalancer import (
    LeastConnections,
    RandomChoice,
    RoundRobin,
)


class FakeReplica:
    def __init__(self, name, active=0):
        self.name = name
        self.active_requests = active

    def __repr__(self):
        return f"<FakeReplica {self.name}>"


def replicas(*actives):
    return [FakeReplica(f"r{i}", active)
            for i, active in enumerate(actives)]


class TestRoundRobin:
    def test_cycles_in_order(self):
        policy = RoundRobin()
        pool = replicas(0, 0, 0)
        picks = [policy.pick(pool).name for _ in range(7)]
        assert picks == ["r0", "r1", "r2", "r0", "r1", "r2", "r0"]

    def test_survives_pool_shrink(self):
        policy = RoundRobin()
        pool = replicas(0, 0, 0, 0)
        for _ in range(3):
            policy.pick(pool)
        shrunk = pool[:2]
        # The cursor must wrap instead of indexing out of range.
        assert policy.pick(shrunk) in shrunk

    def test_ignores_load(self):
        policy = RoundRobin()
        pool = replicas(100, 0)
        assert policy.pick(pool).name == "r0"

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="no replicas"):
            RoundRobin().pick([])


class TestLeastConnections:
    def test_picks_least_loaded(self):
        pool = replicas(5, 1, 3)
        assert LeastConnections().pick(pool).name == "r1"

    def test_tie_breaks_to_first(self):
        pool = replicas(2, 2, 2)
        assert LeastConnections().pick(pool).name == "r0"

    def test_tracks_changing_load(self):
        policy = LeastConnections()
        pool = replicas(0, 0)
        pool[0].active_requests = 4
        assert policy.pick(pool).name == "r1"
        pool[1].active_requests = 9
        assert policy.pick(pool).name == "r0"

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="no replicas"):
            LeastConnections().pick([])


class TestRandomChoice:
    def test_deterministic_under_seed(self):
        pool = replicas(0, 0, 0, 0)
        a = [RandomChoice(np.random.default_rng(3)).pick(pool).name
             for _ in range(1)]
        b = [RandomChoice(np.random.default_rng(3)).pick(pool).name
             for _ in range(1)]
        assert a == b

    def test_covers_all_replicas(self):
        policy = RandomChoice(np.random.default_rng(0))
        pool = replicas(0, 0, 0)
        seen = {policy.pick(pool).name for _ in range(100)}
        assert seen == {"r0", "r1", "r2"}

    def test_roughly_uniform(self):
        policy = RandomChoice(np.random.default_rng(1))
        pool = replicas(0, 0)
        picks = [policy.pick(pool).name for _ in range(2000)]
        share = picks.count("r0") / len(picks)
        assert 0.45 < share < 0.55

    def test_empty_pool_rejected(self):
        policy = RandomChoice(np.random.default_rng(0))
        with pytest.raises(ValueError, match="no replicas"):
            policy.pick([])
