"""Cross-cutting property-based tests on system invariants.

These exercise the full stack (kernel + resources + app + tracing) with
randomized structure and workload, asserting conservation laws and
ordering invariants that must hold for *any* configuration.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.app import Compute
from repro.sim import Environment, Exponential, RandomStreams
from repro.tracing import extract_critical_path

from tests.conftest import build_chain

SUPPRESS = [HealthCheck.too_slow]


@settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
@given(
    depth=st.integers(1, 6),
    demand_ms=st.floats(0.5, 10.0),
    threads=st.integers(1, 8),
    count=st.integers(1, 12),
)
def test_every_submitted_request_completes(depth, demand_ms, threads,
                                           count):
    env = Environment()
    streams = RandomStreams(0)
    app = build_chain(env, streams, depth, demand_ms, threads)
    requests = [app.submit("go")[0] for _ in range(count)]
    env.run()
    assert all(r.finished for r in requests)
    assert app.in_flight == 0
    assert app.latency["go"].total == count


@settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
@given(
    depth=st.integers(1, 5),
    demand_ms=st.floats(0.5, 5.0),
    count=st.integers(1, 10),
)
def test_trace_timestamps_are_nested(depth, demand_ms, count):
    """Child spans must sit inside their parents' intervals."""
    env = Environment()
    streams = RandomStreams(1)
    app = build_chain(env, streams, depth, demand_ms, threads=4)
    requests = [app.submit("go")[0] for _ in range(count)]
    env.run()
    for request in requests:
        for span in request.root_span.walk():
            assert span.departure >= span.arrival
            if span.parent is not None:
                assert span.arrival >= span.parent.arrival - 1e-9
                assert span.departure <= span.parent.departure + 1e-9


@settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
@given(
    depth=st.integers(1, 5),
    demand_ms=st.floats(0.5, 5.0),
    count=st.integers(1, 10),
)
def test_critical_path_bounded_by_response_time(depth, demand_ms, count):
    env = Environment()
    streams = RandomStreams(2)
    app = build_chain(env, streams, depth, demand_ms, threads=4)
    requests = [app.submit("go")[0] for _ in range(count)]
    env.run()
    for request in requests:
        path = extract_critical_path(request.root_span)
        assert path.duration <= request.response_time + 1e-9
        # Self times along the path can never exceed its duration.
        assert sum(path.self_times().values()) <= path.duration + 1e-9


@settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
@given(
    depth=st.integers(2, 5),
    demand_ms=st.floats(0.5, 5.0),
)
def test_self_times_decompose_linear_chain(depth, demand_ms):
    """In a linear chain the spans' self times partition the root
    duration exactly (no parallelism, no gaps)."""
    env = Environment()
    streams = RandomStreams(3)
    app = build_chain(env, streams, depth, demand_ms, threads=4)
    request, _proc = app.submit("go")
    env.run()
    spans = list(request.root_span.walk())
    total_self = sum(span.self_time() for span in spans)
    assert total_self == pytest.approx(request.root_span.duration,
                                       rel=1e-9)


@settings(max_examples=20, deadline=None, suppress_health_check=SUPPRESS)
@given(
    rate=st.floats(10.0, 80.0),
    threshold_a=st.floats(0.001, 0.1),
    threshold_b=st.floats(0.1, 1.0),
)
def test_goodput_monotone_in_threshold(rate, threshold_a, threshold_b):
    from repro.workloads import OpenLoopDriver
    env = Environment()
    streams = RandomStreams(4)
    app = build_chain(env, streams, depth=2, demand_ms=5.0, threads=4)
    driver = OpenLoopDriver(env, app, "go", rate=rate,
                            rng=streams.stream("arr"), duration=5.0)
    driver.start()
    env.run()
    metrics = app.service("svc0").metrics
    lo = metrics.goodput(0.0, env.now, min(threshold_a, threshold_b))
    hi = metrics.goodput(0.0, env.now, max(threshold_a, threshold_b))
    assert lo <= hi + 1e-9
    assert hi <= metrics.throughput(0.0, env.now) + 1e-9


@settings(max_examples=15, deadline=None, suppress_health_check=SUPPRESS)
@given(
    seed=st.integers(0, 2 ** 16),
    threads=st.integers(1, 6),
    scale_at=st.floats(0.5, 4.0),
    new_threads=st.integers(1, 12),
)
def test_pool_resize_never_loses_requests(seed, threads, scale_at,
                                          new_threads):
    """Resizing the server pool mid-flight must not lose or duplicate
    completions."""
    env = Environment()
    streams = RandomStreams(seed)
    app = build_chain(env, streams, depth=2, demand_ms=8.0,
                      threads=threads)
    svc = app.service("svc0")
    count = 30
    from repro.workloads import OpenLoopDriver
    driver = OpenLoopDriver(env, app, "go", rate=60.0,
                            rng=streams.stream("arr"), duration=2.0)

    def resizer():
        yield env.timeout(scale_at)
        svc.set_thread_pool_size(new_threads)

    env.process(resizer())
    driver.start()
    env.run()
    assert app.latency["go"].total == driver.submitted
    assert app.in_flight == 0
    for replica in svc.replicas:
        assert replica.server_pool.in_use == 0


@settings(max_examples=15, deadline=None, suppress_health_check=SUPPRESS)
@given(
    seed=st.integers(0, 2 ** 16),
    replicas_mid=st.integers(1, 5),
)
def test_horizontal_scaling_never_loses_requests(seed, replicas_mid):
    env = Environment()
    streams = RandomStreams(seed)
    app = build_chain(env, streams, depth=2, demand_ms=8.0, threads=3)
    svc = app.service("svc0")
    from repro.workloads import OpenLoopDriver
    driver = OpenLoopDriver(env, app, "go", rate=80.0,
                            rng=streams.stream("arr"), duration=3.0)

    def scaler():
        yield env.timeout(1.0)
        svc.scale_replicas(replicas_mid)
        yield env.timeout(1.0)
        svc.scale_replicas(1)

    env.process(scaler())
    driver.start()
    env.run()
    assert app.latency["go"].total == driver.submitted
    assert app.in_flight == 0


@settings(max_examples=10, deadline=None, suppress_health_check=SUPPRESS)
@given(seed=st.integers(0, 2 ** 16))
def test_identical_seeds_identical_traces(seed):
    def run():
        env = Environment()
        streams = RandomStreams(seed)
        app = build_chain(env, streams, depth=3, demand_ms=4.0,
                          threads=3)
        # Exponential demand makes determinism non-trivial.
        svc = app.service("svc1")
        svc.operations["default"].steps[0] = Compute(
            Exponential(0.004))
        from repro.workloads import OpenLoopDriver
        driver = OpenLoopDriver(env, app, "go", rate=50.0,
                                rng=streams.stream("arr"), duration=3.0)
        driver.start()
        env.run()
        times, latencies = app.latency["go"].window()
        return list(np.round(times, 12)), list(np.round(latencies, 12))

    assert run() == run()
