"""Docs stay honest: links resolve, public surfaces are documented.

The documentation pass (DESIGN.md architecture map, EXPERIMENTS.md
claims table, README subsystem index) only helps if it cannot rot.
These tests pin the load-bearing parts: every relative markdown link
points at a real file, every claim in EXPERIMENTS.md names a bench
that exists, and every public entry point of `repro.faults` and
`repro.core` carries a docstring.
"""

import inspect
import subprocess
import sys
from pathlib import Path

import pytest

import repro.analysis
import repro.core
import repro.faults
import repro.obs
import repro.service
import repro.tracing
import repro.validation

REPO = Path(__file__).resolve().parent.parent


def test_markdown_links_resolve():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_links.py")],
        capture_output=True, text=True)
    assert proc.returncode == 0, f"broken links:\n{proc.stderr}"


def test_readme_indexes_every_subsystem():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    for package in ("repro.sim", "repro.core", "repro.validation",
                    "repro.obs", "repro.faults", "repro.service"):
        assert package in readme, \
            f"README subsystem index is missing {package}"


def test_experiments_claims_link_to_existing_benches():
    text = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
    assert "test_extension_interference.py" in text
    # Every bench file the doc mentions must exist on disk.
    for line in text.splitlines():
        for token in line.split("`"):
            if token.startswith("benchmarks/") and token.endswith(".py"):
                assert (REPO / token).exists(), f"missing bench: {token}"


def test_examples_are_documented_and_smoke_capable():
    examples = sorted((REPO / "examples").glob("*.py"))
    assert examples, "examples/ directory is empty"
    for example in examples:
        text = example.read_text(encoding="utf-8")
        assert text.startswith('"""'), \
            f"{example.name} is missing a module docstring"
    tour = (REPO / "examples" / "resilience_tour.py").read_text(
        encoding="utf-8")
    assert "--smoke" in tour


@pytest.mark.parametrize(
    "module",
    [repro.faults, repro.core, repro.obs, repro.tracing,
     repro.analysis, repro.validation, repro.service],
    ids=["repro.faults", "repro.core", "repro.obs", "repro.tracing",
         "repro.analysis", "repro.validation", "repro.service"])
def test_public_entry_points_have_docstrings(module):
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if hasattr(obj, "__origin__"):
            continue  # typing aliases (e.g. FaultSpec) can't hold docs
        if not (inspect.getdoc(obj) or "").strip():
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for attr, member in vars(obj).items():
                if attr.startswith("_"):
                    continue
                if callable(member) or isinstance(member, property):
                    if not (inspect.getdoc(member) or "").strip():
                        undocumented.append(f"{name}.{attr}")
    assert not undocumented, \
        f"undocumented public entry points: {sorted(undocumented)}"


def test_every_module_has_a_docstring():
    missing = []
    for path in sorted((REPO / "src" / "repro").rglob("*.py")):
        text = path.read_text(encoding="utf-8").lstrip()
        if text and not text.startswith(('"""', "'''", 'r"""')):
            missing.append(str(path.relative_to(REPO)))
    assert not missing, f"modules without a docstring: {missing}"
