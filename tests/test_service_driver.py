"""Simulator-as-load-generator loop against a live service.

Boots a :class:`repro.service.ControllerService` on an ephemeral port
in a background thread, lets :func:`repro.service.drive` push a
simulated sock-shop workload into it over real sockets, and asserts
the acceptance loop end to end: at least one SCG-backed recommendation
is served over the JSON API and the journaled session replays into a
byte-identical decision trail.
"""

import asyncio
import threading

import pytest

from repro.core.scg import ScatterModelConfig
from repro.service import (
    ControllerService,
    DriveReport,
    ServiceClient,
    ServiceConfig,
    drive,
    verify_replay,
)


@pytest.fixture
def live_service(tmp_path):
    """A served control plane; yields ``(service, url, paths)``."""
    config = ServiceConfig(
        exclude=("front-end",),
        scatter=ScatterModelConfig(min_samples=20, min_distinct=4,
                                   quantum=1.0))
    journal = tmp_path / "journal.jsonl"
    decisions = tmp_path / "decisions.jsonl"
    service = ControllerService(config, port=0, cadence=0.0,
                                journal_path=journal,
                                decisions_path=decisions)
    started = threading.Event()

    def serve() -> None:
        async def main() -> None:
            await service.start()
            started.set()
            await service.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert started.wait(10.0), "service never started"
    url = f"http://127.0.0.1:{service.port}"
    yield service, url, (journal, decisions)
    if thread.is_alive():
        try:
            ServiceClient(url, timeout=5.0).request(
                "POST", "/admin/shutdown", b"")
        except OSError:
            pass
        thread.join(10.0)


def test_drive_closes_the_loop(live_service):
    service, url, (journal, decisions) = live_service
    report = drive(url, duration=45.0, interval=0.5, tick_every=15.0,
                   seed=7)
    assert isinstance(report, DriveReport)
    assert report.snapshots == 90
    assert report.ticks >= 3
    assert report.traces_sent > 0

    # The acceptance loop: simulated ingestion produced at least one
    # SCG-based recommendation served over the JSON API.
    assert report.recommendations, report.status
    target, rec = next(iter(report.recommendations.items()))
    assert rec["service"] == target
    assert rec["method"] in ("knee", "argmax")
    assert rec["allocation"] >= 1
    assert 0 < rec["threshold"] <= 0.4
    assert report.status["rounds"] == report.ticks
    assert report.status["recommendation_latency"]["count"] >= 1

    ServiceClient(url).request("POST", "/admin/shutdown", b"")
    # Wait for the server thread to flush artifacts on its way out.
    flushed = threading.Event()
    for _ in range(100):
        if decisions.exists() and service._server is None:
            break
        flushed.wait(0.1)
    identical, detail = verify_replay(journal, decisions,
                                      service.plane.config)
    assert identical, detail

    payload = report.to_dict()
    assert payload["snapshots"] == report.snapshots
    assert payload["recommendations"] == report.recommendations


def test_drive_rejects_unknown_scenario():
    with pytest.raises(ValueError, match="unknown scenario"):
        drive("http://127.0.0.1:9", scenario="nope")
