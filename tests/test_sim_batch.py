"""Batch event application: one scheduler entry per homogeneous burst.

``Environment.schedule_batch`` lets N same-timestamp events ride a
single :class:`~repro.sim.events.EventBatch` entry with N consecutively
reserved serials, so the processed stream (and therefore every replay
fingerprint) is byte-identical to N individual pushes — the batching
is invisible to everything but the scheduler's workload. These tests
pin that contract and its users: ``Application.submit_batch``, the
closed-loop population step-up, pool grant storms, and the open-loop
driver's chunk-sampled pump.
"""

import numpy as np
import pytest

from repro.sim import Environment
from repro.sim.events import Event, EventBatch
from repro.validation.fingerprint import RunRecorder
from repro.validation.scenarios import scenario_by_name
from repro.workloads import OpenLoopDriver


def _flag_event(env, log, tag):
    event = Event(env)
    event.callbacks.append(lambda _e: log.append((env.now, tag)))
    event._ok = True
    event._value = None
    return event


class TestScheduleBatch:
    def test_empty_batch_is_noop(self):
        env = Environment()
        env.schedule_batch([])
        assert env.queue_depth == 0

    def test_single_event_schedules_plainly(self):
        env = Environment()
        log = []
        env.schedule_batch([_flag_event(env, log, "only")])
        env.run()
        assert log == [(0.0, "only")]

    def test_batch_preserves_submission_order(self):
        env = Environment()
        log = []
        env.schedule_batch([_flag_event(env, log, i) for i in range(8)])
        assert env.queue_depth == 1  # one entry carries all eight
        env.run()
        assert log == [(0.0, i) for i in range(8)]

    def test_monitors_see_members_with_consecutive_serials(self):
        env = Environment()
        seen = []
        env.add_monitor(lambda when, eid, event: seen.append(eid))
        env.schedule_batch([_flag_event(env, [], i) for i in range(5)])
        env.run()
        assert seen == list(range(seen[0], seen[0] + 5))

    def test_batch_reserves_serials_like_individual_pushes(self):
        """The id counter advances by N either way — bench event
        counts stay comparable across batched and unbatched runs."""
        batched = Environment()
        batched.schedule_batch([_flag_event(batched, [], i)
                                for i in range(7)])
        single = Environment()
        for i in range(7):
            single.schedule_batch([_flag_event(single, [], i)])
        assert next(batched._eid) == next(single._eid)

    def test_mid_batch_failure_requeues_tail(self):
        """An exception inside member i re-queues members i+1..N, so a
        caught error loses nothing and serials stay aligned."""
        env = Environment()
        log = []

        def boom(_event):
            raise RuntimeError("member 1 explodes")

        events = [_flag_event(env, log, 0)]
        bad = Event(env)
        bad.callbacks.append(boom)
        bad._ok = True
        bad._value = None
        events.append(bad)
        events.extend(_flag_event(env, log, i) for i in (2, 3))
        env.schedule_batch(events)
        with pytest.raises(RuntimeError):
            env.run()
        assert log == [(0.0, 0)]
        env.run()  # the re-queued tail resumes where the batch broke
        assert log == [(0.0, 0), (0.0, 2), (0.0, 3)]

    def test_eventbatch_repr_and_len(self):
        env = Environment()
        batch = EventBatch([Event(env), Event(env)])
        assert len(batch) == 2
        assert "2" in repr(batch)


def _closed_loop_digest(seed):
    env, app, driver = scenario_by_name("single_light").build(seed)
    recorder = RunRecorder(env, keep_events=False)
    driver.start()
    env.run(until=20.0)
    return recorder.finish(app).digest


class TestSubmitBatch:
    def test_unknown_type_rejected(self):
        env, app, _driver = scenario_by_name("single_light").build(3)
        with pytest.raises(KeyError):
            app.submit_batch("nope", 3)

    def test_zero_count_is_noop(self):
        env, app, _driver = scenario_by_name("single_light").build(3)
        assert app.submit_batch("go", 0) == []
        assert app.total_submitted == 0

    def test_batch_submit_equals_sequential_submits(self):
        """submit_batch(k) and k submit() calls produce byte-identical
        event streams and end-to-end latencies."""
        def run(batched):
            env, app, _driver = scenario_by_name("single_light").build(7)
            recorder = RunRecorder(env, keep_events=False)
            if batched:
                pairs = app.submit_batch("go", 12)
            else:
                pairs = [app.submit("go") for _ in range(12)]
            env.run()
            assert app.latency["go"].total == 12
            latencies = app.latency["go"].response_times()
            return (recorder.finish(app).digest, list(latencies),
                    [r.request_type for r, _p in pairs])

        assert run(batched=True) == run(batched=False)

    def test_population_stepup_rides_one_entry(self):
        """A closed-loop step-up of k users adds one scheduler entry,
        and the run fingerprints match across runs (determinism)."""
        assert _closed_loop_digest(11) == _closed_loop_digest(11)


class TestOpenLoopBatchPump:
    def _run(self, batch):
        env, app, _driver = scenario_by_name("single_light").build(13)
        recorder = RunRecorder(env, keep_events=False)
        driver = OpenLoopDriver(env, app, "go", rate=40.0,
                                rng=np.random.default_rng(99),
                                duration=10.0, batch=batch)
        driver.start()
        env.run(until=15.0)
        digest = recorder.finish(app).digest
        times, latencies = app.latency["go"].window()
        return digest, driver.submitted, list(times), list(latencies)

    def test_pump_equals_generator_path(self):
        """The chunk-sampled pump (batch>1) consumes the random stream
        exactly like the per-arrival generator path (batch=1): same
        arrival times, same submissions, same completion times and
        latencies. Only the kernel events differ (the pump schedules
        one reusable event per arrival instead of a Timeout + process
        resume), which is the entire point of the fast path."""
        _d_pump, *pump = self._run(batch=256)
        _d_gen, *gen = self._run(batch=1)
        assert pump == gen

    def test_pump_byte_identical_under_wheel(self, monkeypatch):
        """Same driver path on the other scheduler: full replay
        fingerprints must match, not just the observable results."""
        baseline = self._run(batch=256)
        monkeypatch.setenv("REPRO_SCHEDULER", "wheel")
        assert self._run(batch=256) == baseline

    def test_invalid_batch_rejected(self):
        env, app, _driver = scenario_by_name("single_light").build(3)
        with pytest.raises(ValueError):
            OpenLoopDriver(env, app, "go", rate=1.0,
                           rng=np.random.default_rng(1), batch=0)

    def test_time_varying_rate_keeps_generator_path(self):
        env, app, _driver = scenario_by_name("single_light").build(5)
        driver = OpenLoopDriver(env, app, "go",
                                rate=lambda t: 20.0,
                                rng=np.random.default_rng(4),
                                duration=5.0, batch=256)
        driver.start()
        env.run(until=10.0)
        assert driver.submitted > 0
