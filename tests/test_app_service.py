"""Tests for microservices, replicas, and request handling."""

import pytest

from repro.app import (
    Application,
    Call,
    Compute,
    LeastConnections,
    Microservice,
    Operation,
    Parallel,
    RoundRobin,
)
from repro.sim import Constant, Environment, RandomStreams


def build_two_tier(env, streams, *, cart_threads=2, cart_demand=0.01,
                   db_demand=0.01, pool=None):
    """front-end -> cart -> cart-db with constant demands."""
    app = Application(env)
    front = Microservice(env, "front-end", streams.stream("fe"), cores=4.0)
    cart = Microservice(env, "cart", streams.stream("cart"), cores=2.0,
                        thread_pool_size=cart_threads)
    db = Microservice(env, "cart-db", streams.stream("db"), cores=4.0)
    app.add_service(front)
    app.add_service(cart)
    app.add_service(db)
    db.add_operation(Operation("default", [Compute(Constant(db_demand))]))
    cart_steps = [Compute(Constant(cart_demand))]
    if pool:
        cart.add_client_pool(pool, 2)
        cart_steps.append(Call("cart-db", via_pool=pool))
    else:
        cart_steps.append(Call("cart-db"))
    cart.add_operation(Operation("default", cart_steps))
    front.add_operation(Operation("default", [
        Compute(Constant(0.001)), Call("cart")]))
    app.set_entrypoint("cart", "front-end", "default")
    app.validate()
    return app


def test_single_request_latency_is_sum_of_demands():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1))
    request, proc = app.submit("cart")
    env.run(until=proc)
    # 1ms front-end + 10ms cart + 10ms db = 21ms, uncontended.
    assert request.response_time == pytest.approx(0.021)


def test_trace_structure_matches_call_graph():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1))
    request, proc = app.submit("cart")
    env.run(until=proc)
    root = request.root_span
    assert root.service == "front-end"
    assert [c.service for c in root.children] == ["cart"]
    assert [c.service for c in root.children[0].children] == ["cart-db"]
    assert len(app.warehouse.traces()) == 1


def test_thread_pool_gates_concurrency():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1), cart_threads=1)
    # Two simultaneous requests: second waits for the cart thread.
    _r1, p1 = app.submit("cart")
    r2, p2 = app.submit("cart")
    env.run(until=p1)
    env.run(until=p2)
    # Request 2's cart span should show queueing delay.
    cart_span = r2.root_span.find("cart")
    assert cart_span.queue_wait > 0


def test_client_pool_gates_downstream_calls():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1), cart_threads=10, pool="db")
    cart = app.service("cart")
    pool = cart.client_pool("db")
    procs = [app.submit("cart")[1] for _ in range(5)]
    saw_full = []

    def watcher(env):
        while any(p.is_alive for p in procs):
            saw_full.append(pool.in_use)
            yield env.timeout(0.001)

    env.process(watcher(env))
    env.run()
    assert max(saw_full) <= 2  # capped by pool capacity
    assert pool.total_granted == 5


def test_unknown_operation_raises():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1))
    with pytest.raises(KeyError):
        list(app.service("cart").handle(None, "missing", None))


def test_unknown_request_type_raises():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1))
    with pytest.raises(KeyError):
        app.submit("nope")


def test_duplicate_service_rejected():
    env = Environment()
    app = Application(env)
    streams = RandomStreams(1)
    app.add_service(Microservice(env, "a", streams.stream("a")))
    with pytest.raises(ValueError):
        app.add_service(Microservice(env, "a", streams.stream("a2")))


def test_validate_catches_unknown_target():
    env = Environment()
    app = Application(env)
    svc = Microservice(env, "a", RandomStreams(1).stream("a"))
    svc.add_operation(Operation("default", [Call("ghost")]))
    app.add_service(svc)
    with pytest.raises(ValueError):
        app.validate()


def test_validate_catches_missing_client_pool():
    env = Environment()
    app = Application(env)
    streams = RandomStreams(1)
    a = Microservice(env, "a", streams.stream("a"))
    b = Microservice(env, "b", streams.stream("b"))
    b.add_operation(Operation("default", [Compute(Constant(0.001))]))
    a.add_operation(Operation("default", [Call("b", via_pool="ghost")]))
    app.add_service(a)
    app.add_service(b)
    with pytest.raises(ValueError):
        app.validate()


def test_parallel_calls_overlap_in_time():
    env = Environment()
    app = Application(env)
    streams = RandomStreams(1)
    front = Microservice(env, "fe", streams.stream("fe"), cores=4.0)
    left = Microservice(env, "left", streams.stream("l"), cores=4.0)
    right = Microservice(env, "right", streams.stream("r"), cores=4.0)
    left.add_operation(Operation("default", [Compute(Constant(0.010))]))
    right.add_operation(Operation("default", [Compute(Constant(0.010))]))
    front.add_operation(Operation("default", [
        Parallel([Call("left"), Call("right")])]))
    for svc in (front, left, right):
        app.add_service(svc)
    app.set_entrypoint("go", "fe", "default")
    request, proc = app.submit("go")
    env.run(until=proc)
    # Parallel: ~10ms, not 20ms.
    assert request.response_time == pytest.approx(0.010, abs=1e-6)


def test_horizontal_scaling_adds_capacity():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1), cart_threads=1)
    cart = app.service("cart")
    cart.scale_replicas(3)
    assert cart.replica_count == 3
    assert cart.server_pool_capacity() == 3
    procs = [app.submit("cart")[1] for _ in range(3)]
    for proc in procs:
        env.run(until=proc)
    # With 3 one-thread replicas and round-robin, none should queue.
    for replica in cart.replicas:
        assert replica.server_pool.total_wait_time == 0.0


def test_scale_in_drains_gracefully():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1), cart_threads=1,
                         cart_demand=0.05)
    cart = app.service("cart")
    cart.scale_replicas(2)

    def scale_in(env):
        yield env.timeout(0.01)  # while requests are in flight
        cart.scale_replicas(1)

    procs = [app.submit("cart")[1] for _ in range(2)]
    env.process(scale_in(env))
    for proc in procs:
        env.run(until=proc)
    assert cart.replica_count == 1
    assert app.latency["cart"].total == 2  # both finished despite scale-in


def test_vertical_scaling_changes_all_replicas():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1))
    cart = app.service("cart")
    cart.scale_replicas(2)
    cart.set_cores(4.0)
    assert all(r.cpu.cores == 4.0 for r in cart.replicas)
    assert cart.cores_per_replica == 4.0


def test_set_thread_pool_size_applies_to_replicas():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1), cart_threads=2)
    cart = app.service("cart")
    cart.scale_replicas(2)
    cart.set_thread_pool_size(7)
    assert all(r.server_pool.capacity == 7 for r in cart.replicas)
    assert cart.server_pool_capacity() == 14


def test_set_thread_pool_on_async_service_raises():
    env = Environment()
    svc = Microservice(env, "go-svc", RandomStreams(1).stream("x"))
    with pytest.raises(ValueError):
        svc.set_thread_pool_size(5)
    assert svc.server_pool_capacity() is None


def test_demand_scale_slows_requests():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1))
    app.service("cart").demand_scale = 5.0
    request, proc = app.submit("cart")
    env.run(until=proc)
    # 1ms + 50ms + 10ms.
    assert request.response_time == pytest.approx(0.061)


def test_service_metrics_goodput_threshold():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1))
    for _ in range(4):
        _, proc = app.submit("cart")
        env.run(until=proc)
    metrics = app.service("cart").metrics
    assert metrics.total_completed == 4
    now = env.now + 1e-9  # windows are half-open: include the last one
    assert metrics.throughput(0.0, now) == pytest.approx(4 / now)
    # Cart span is ~20ms; with a 5ms threshold goodput is zero.
    assert metrics.goodput(0.0, now, threshold=0.005) == 0.0
    assert metrics.goodput(0.0, now, threshold=1.0) == pytest.approx(4 / now)


def test_cpu_totals_accumulate_across_replicas():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1))
    cart = app.service("cart")
    cart.scale_replicas(2)
    for _ in range(4):
        _, proc = app.submit("cart")
        env.run(until=proc)
    busy, capacity = cart.cpu_totals()
    assert busy > 0
    assert capacity >= busy


def test_round_robin_spreads_requests():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1), cart_threads=5)
    cart = app.service("cart")
    cart.scale_replicas(2)
    cart.load_balancer = RoundRobin()
    for _ in range(6):
        _, proc = app.submit("cart")
        env.run(until=proc)
    grants = [r.server_pool.total_granted for r in cart.replicas]
    assert grants == [3, 3]


def test_least_connections_prefers_idle_replica():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1), cart_threads=5,
                         cart_demand=0.05)
    cart = app.service("cart")
    cart.scale_replicas(2)
    cart.load_balancer = LeastConnections()
    # Submit two requests back to back with no delay: the second must go
    # to the idle replica.
    app.submit("cart")
    app.submit("cart")
    env.run()
    grants = [r.server_pool.total_granted for r in cart.replicas]
    assert grants == [1, 1]


def test_resize_client_pool():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1), pool="db")
    cart = app.service("cart")
    cart.resize_client_pool("db", 9)
    assert cart.client_pool("db").capacity == 9


def test_in_flight_accounting():
    env = Environment()
    app = build_two_tier(env, RandomStreams(1))
    app.submit("cart")
    assert app.in_flight == 1
    env.run()
    assert app.in_flight == 0
    assert app.total_submitted == 1
