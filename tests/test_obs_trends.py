"""Longitudinal perf trends over committed bench/matrix artifacts."""

import json

import pytest

from repro.obs.trends import (
    collect_artifacts,
    find_crossings,
    load_artifact,
    render_trends_html,
)


def bench_report(sha: str, stamp: str, events: float) -> dict:
    return {
        "schema": "repro-bench-kernel/1",
        "scale": 1.0,
        "git_sha": sha,
        "generated_at": stamp,
        "benchmarks": {
            "timeout_chain": {"events_per_sec": events,
                              "seconds": 0.5,
                              "identical": True},
            "scale_sweep": {"nested": {"ignored": 1.0}},
        },
    }


def write_artifacts(tmp_path) -> None:
    (tmp_path / "BENCH_old.json").write_text(json.dumps(
        bench_report("a" * 40, "2026-01-01T00:00:00Z", 100_000.0)))
    (tmp_path / "BENCH_new.json").write_text(json.dumps(
        bench_report("b" * 40, "2026-02-01T00:00:00Z", 60_000.0)))


def test_load_bench_report_flattens_scalars(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps(
        bench_report("c" * 40, "2026-03-01T00:00:00Z", 5.0)))
    point = load_artifact(path)
    assert point is not None
    assert point.label == "c" * 12
    assert point.timestamp == "2026-03-01T00:00:00Z"
    assert point.metrics["timeout_chain.events_per_sec"] == 5.0
    # Booleans and nested dicts are not longitudinal scalars.
    assert "timeout_chain.identical" not in point.metrics
    assert not any("nested" in name for name in point.metrics)


def test_load_matrix_index_aggregates_cells(tmp_path):
    path = tmp_path / "matrix" / "index.json"
    path.parent.mkdir()
    path.write_text(json.dumps({"cells": [
        {"p95_ms": 120.0, "goodput_rps": 40.0, "failed": False},
        {"p95_ms": 180.0, "goodput_rps": 60.0, "failed": True},
    ]}))
    point = load_artifact(path)
    assert point is not None
    assert point.label == "matrix"
    assert point.metrics["matrix.cells"] == 2.0
    assert point.metrics["matrix.failed"] == 1.0
    assert point.metrics["matrix.p95_ms.mean"] == 150.0


def test_unrecognized_files_are_skipped(tmp_path):
    (tmp_path / "BENCH_junk.json").write_text("not json")
    (tmp_path / "BENCH_other.json").write_text(json.dumps(
        {"schema": "something-else/9"}))
    assert load_artifact(tmp_path / "BENCH_junk.json") is None
    assert collect_artifacts([tmp_path]) == []


def test_collect_orders_and_dedupes(tmp_path):
    write_artifacts(tmp_path)
    points = collect_artifacts(
        [tmp_path, tmp_path / "BENCH_old.json"])
    assert [p.label for p in points] == ["a" * 12, "b" * 12]


def test_crossings_flag_threshold_moves(tmp_path):
    write_artifacts(tmp_path)
    points = collect_artifacts([tmp_path])
    crossings = find_crossings(points, threshold_pct=20.0)
    assert len(crossings) == 1
    entry = crossings[0]
    assert entry["metric"] == "timeout_chain.events_per_sec"
    assert entry["change_pct"] == -40.0
    assert entry["from"] == "a" * 12 and entry["to"] == "b" * 12
    # A 50% threshold keeps the same move quiet.
    assert find_crossings(points, threshold_pct=50.0) == []


def test_render_requires_two_artifacts(tmp_path):
    write_artifacts(tmp_path)
    points = collect_artifacts([tmp_path])
    with pytest.raises(ValueError, match="at least 2"):
        render_trends_html(points[:1])


def test_render_is_self_contained_html(tmp_path):
    write_artifacts(tmp_path)
    points = collect_artifacts([tmp_path])
    page = render_trends_html(points, threshold_pct=20.0,
                              title="trend check")
    assert page.startswith("<!DOCTYPE html>")
    assert "trend check" in page
    assert "timeout_chain.events_per_sec" in page
    assert "-40.0%" in page
    assert "http://" not in page and "https://" not in page


def test_committed_artifacts_produce_a_trend():
    """The repo ships enough evidence for `repro obs trends` to run:
    the root seed plus the benchmarks tree (satellite contract)."""
    import pathlib
    root = pathlib.Path(__file__).resolve().parent.parent
    points = collect_artifacts(
        [root / "BENCH_kernel.json", root / "benchmarks"])
    assert len(points) >= 2
    page = render_trends_html(points)
    assert "Timelines" in page
