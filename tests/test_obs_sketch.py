"""Property tests for the P² streaming quantile sketch.

The sketch must track ``np.percentile`` on well-behaved streams,
stay inside the observed ``[min, max]`` envelope *unconditionally*
(including adversarial sorted streams where the P² estimate is known
to lag), and be exact before five observations arrive.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import P2Quantile, QuantileSketch

SUPPRESS = (HealthCheck.too_slow,)

#: Absolute tolerance expressed in quantile *rank*: the estimate must
#: sit between the empirical quantiles at rank q ± RANK_TOL.
RANK_TOL = 0.035


def _rank_bounds(data: np.ndarray, q: float) -> tuple[float, float]:
    lo = np.percentile(data, max(0.0, (q - RANK_TOL)) * 100)
    hi = np.percentile(data, min(1.0, (q + RANK_TOL)) * 100)
    return float(lo), float(hi)


def _assert_tracks(data: np.ndarray, q: float) -> None:
    est = P2Quantile(q)
    for value in data:
        est.observe(value)
    lo, hi = _rank_bounds(data, q)
    span = float(data.max() - data.min()) or 1.0
    slack = 0.02 * span  # for plateaus where rank bounds collapse
    assert lo - slack <= est.value() <= hi + slack, (
        f"q={q}: estimate {est.value()} outside rank band "
        f"[{lo}, {hi}] (n={data.size})")


class TestAgainstNumpy:
    """Accuracy on shuffled draws from assorted distributions."""

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    @pytest.mark.parametrize("dist", [
        "uniform", "normal", "lognormal", "exponential", "bimodal",
    ])
    def test_rank_error_is_small(self, dist, q):
        rng = np.random.default_rng(hash((dist, q)) % (2 ** 31))
        n = 20_000
        if dist == "uniform":
            data = rng.uniform(0.0, 10.0, n)
        elif dist == "normal":
            data = rng.normal(5.0, 2.0, n)
        elif dist == "lognormal":
            data = rng.lognormal(0.0, 1.0, n)
        elif dist == "exponential":
            data = rng.exponential(0.3, n)
        else:  # bimodal: fast hits + slow tail, like a breaker flapping
            data = np.where(rng.random(n) < 0.8,
                            rng.normal(0.05, 0.01, n),
                            rng.normal(2.0, 0.3, n))
        _assert_tracks(data, q)

    def test_matches_percentile_closely_on_lognormal_p99(self):
        rng = np.random.default_rng(7)
        data = rng.lognormal(0.0, 1.0, 50_000)
        est = P2Quantile(0.99)
        for value in data:
            est.observe(value)
        truth = float(np.percentile(data, 99))
        assert abs(est.value() - truth) / truth < 0.05


class TestAdversarial:
    """Sorted / constant / spike streams: bounded, never out of range."""

    @pytest.mark.parametrize("order", ["ascending", "descending"])
    def test_sorted_stream_stays_in_envelope(self, order):
        data = np.linspace(0.0, 1.0, 5_000)
        if order == "descending":
            data = data[::-1]
        est = P2Quantile(0.99)
        for value in data:
            est.observe(value)
        assert 0.0 <= est.value() <= 1.0

    def test_constant_stream_is_exact(self):
        est = P2Quantile(0.5)
        for _ in range(1_000):
            est.observe(3.25)
        assert est.value() == 3.25

    def test_single_spike_does_not_hijack_median(self):
        rng = np.random.default_rng(11)
        est = P2Quantile(0.5)
        for value in rng.normal(1.0, 0.1, 10_000):
            est.observe(value)
        est.observe(1e9)
        assert est.value() < 2.0


class TestSmallSampleExactness:
    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value())

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_exact_below_five(self, n):
        rng = np.random.default_rng(n)
        data = rng.uniform(0.0, 1.0, n)
        for q in (0.25, 0.5, 0.99):
            est = P2Quantile(q)
            for value in data:
                est.observe(value)
            assert est.value() == pytest.approx(
                float(np.percentile(data, q * 100)))

    def test_rejects_degenerate_quantile(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError, match="quantile"):
                P2Quantile(bad)


@settings(max_examples=50, deadline=None, suppress_health_check=SUPPRESS)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=300),
    q=st.sampled_from([0.1, 0.5, 0.9, 0.99]),
)
def test_estimate_always_inside_observed_envelope(values, q):
    est = P2Quantile(q)
    for value in values:
        est.observe(value)
    assert min(values) <= est.value() <= max(values)
    assert est.count == len(values)


@settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
@given(values=st.lists(st.floats(0.0, 1e3, allow_nan=False,
                                 allow_infinity=False),
                       min_size=6, max_size=200))
def test_marker_heights_stay_sorted(values):
    est = P2Quantile(0.9)
    for value in values:
        est.observe(value)
        heights = est._heights
        assert all(a <= b for a, b in zip(heights, heights[1:]))


class TestQuantileSketch:
    def test_bundles_quantiles_and_aggregates(self):
        sketch = QuantileSketch(quantiles=(0.5, 0.99))
        rng = np.random.default_rng(3)
        data = rng.exponential(1.0, 8_000)
        sketch.observe_many(data)
        assert sketch.count == data.size
        assert sketch.minimum == data.min()
        assert sketch.maximum == data.max()
        assert sketch.mean == pytest.approx(float(data.mean()))
        assert sketch.quantiles() == (0.5, 0.99)
        lo, hi = _rank_bounds(data, 0.99)
        assert lo * 0.95 <= sketch.quantile(0.99) <= hi * 1.05

    def test_untracked_quantile_raises(self):
        sketch = QuantileSketch(quantiles=(0.5,))
        sketch.observe(1.0)
        with pytest.raises(KeyError, match="not tracked"):
            sketch.quantile(0.75)

    def test_empty_snapshot_and_nan(self):
        sketch = QuantileSketch()
        assert sketch.snapshot() == {"count": 0}
        assert math.isnan(sketch.quantile(0.5))
        assert math.isnan(sketch.mean)

    def test_snapshot_round_trips_json_keys(self):
        sketch = QuantileSketch(quantiles=(0.5, 0.95))
        sketch.observe_many([0.1, 0.2, 0.3, 0.4, 0.5, 0.6])
        snap = sketch.snapshot()
        assert snap["count"] == 6
        assert set(snap["quantiles"]) == {"0.5", "0.95"}

    def test_rejects_empty_quantiles(self):
        with pytest.raises(ValueError, match="at least one"):
            QuantileSketch(quantiles=())
