"""Smoke-run every benchmark in a reduced configuration.

The benches under ``benchmarks/`` regenerate paper tables and figures
and are normally run on demand; this module executes each one in a
subprocess with ``REPRO_BENCH_SCALE`` turned far down, so CI catches
import errors, API drift, and crashes without paying full runtimes.

The benches' *shape assertions* (who wins, where optima fall) only hold
at full scale — a 12-second timeline leaves controllers no time to
adapt — so smoke runs execute with assertions compiled out
(``python -O`` + ``--assert=plain``): every simulation still runs to
completion and renders its table, but only crashes fail the smoke.
Results are redirected away from the committed full-scale artifacts.

Marked ``slow``: deselected from the default test run, executed by the
dedicated CI job (or locally with ``-m slow``).
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

#: Benches that stay heavy even when scaled down (parameter sweeps with
#: many full scenario runs); smoke-tested with an extra-small scale.
HEAVY = {
    "test_table1_sampling_interval.py",
    "test_ablation_window.py",
    "test_ablation_poly_degree.py",
    "test_scalability_overhead.py",
}


def bench_files():
    return sorted(p.name for p in BENCH_DIR.glob("test_*.py"))


def test_benchmark_files_discovered():
    assert len(bench_files()) >= 20


@pytest.mark.slow
@pytest.mark.parametrize("bench", bench_files())
def test_benchmark_smoke(bench, tmp_path):
    scale = "0.02" if bench in HEAVY else "0.05"
    env = dict(os.environ)
    env["REPRO_BENCH_SCALE"] = scale
    # Keep reduced-scale output away from the committed artifacts.
    env["REPRO_BENCH_RESULTS_DIR"] = str(tmp_path / "results")
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")])
    result = subprocess.run(
        [sys.executable, "-O", "-m", "pytest", str(BENCH_DIR / bench),
         "-q", "--no-header", "-p", "no:cacheprovider",
         "--benchmark-disable", "--assert=plain"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        timeout=600)
    assert result.returncode == 0, (
        f"{bench} failed at REPRO_BENCH_SCALE={scale}\n"
        f"--- stdout ---\n{result.stdout[-4000:]}\n"
        f"--- stderr ---\n{result.stderr[-4000:]}")
