"""Multi-worker speedup gate plus shared-pool reuse semantics.

The speedup assertions only run on hosts with ≥4 cores (CI's perf
job); everywhere else they skip rather than pretend a 1-core container
parallelized anything. The pool-reuse tests run everywhere — they are
about executor lifecycle, not wall clock.
"""

import os

import pytest

from repro.experiments import parallel as par
from repro.experiments.bench import bench_parallel_fanout, fanout_goodput

MULTI_CORE = (os.cpu_count() or 1) >= 4


class TestPoolReuse:
    def setup_method(self):
        par.shutdown_pool()

    def teardown_method(self):
        par.shutdown_pool()

    def test_pool_survives_across_calls(self):
        specs = [(seed, 30) for seed in (1, 2, 3)]
        first = par.parallel_map(fanout_goodput, specs, max_workers=2)
        pool = par._pool
        assert pool is not None
        second = par.parallel_map(fanout_goodput, specs, max_workers=2)
        assert par._pool is pool  # same executor, no respawn
        assert first == second

    def test_warm_pool_spawns_eagerly(self):
        assert par._pool is None
        size = par.warm_pool(2)
        assert size == 2
        assert par._pool is not None

    def test_warm_pool_single_worker_is_noop(self):
        assert par.warm_pool(1) == 1
        assert par._pool is None

    def test_pool_grows_on_demand(self):
        par.warm_pool(2)
        small = par._pool
        par.warm_pool(3)
        assert par._pool is not small
        assert par._pool_workers == 3

    def test_shutdown_resets(self):
        par.warm_pool(2)
        par.shutdown_pool()
        assert par._pool is None
        assert par._pool_workers == 0

    def test_serial_results_match_pooled(self):
        specs = [(seed, 40) for seed in range(1, 5)]
        serial = [fanout_goodput(spec) for spec in specs]
        pooled = par.parallel_map(fanout_goodput, specs, max_workers=2)
        assert pooled == serial

    def test_chunking_preserves_order(self):
        items = list(range(40))
        result = par.parallel_map(par._identity, items, max_workers=2)
        assert result == items


class TestFanoutReporting:
    def test_single_core_report_is_honest(self):
        """Forcing the 1-core shape: serial fallback, gate off."""
        report = bench_parallel_fanout(grid_points=2, requests=20,
                                       max_workers=1)
        assert report["workers"] == 1
        assert report["speedup_gate"] is False
        assert report["identical_results"] is True

    def test_cores_recorded(self):
        report = bench_parallel_fanout(grid_points=2, requests=20,
                                       max_workers=1)
        assert report["cores"] == (os.cpu_count() or 1)


@pytest.mark.skipif(not MULTI_CORE,
                    reason="speedup gate needs >= 4 cores")
class TestSpeedupGate:
    def test_fanout_speedup_over_1_5x(self):
        """The CI gate: ≥2 workers and >1.5x wall-clock speedup on the
        fan-out benchmark, with byte-identical results."""
        report = bench_parallel_fanout(grid_points=6, requests=400)
        assert report["workers"] >= 2
        assert report["speedup_gate"] is True
        assert report["identical_results"] is True
        assert report["speedup"] > 1.5, (
            f"parallel fan-out speedup {report['speedup']:.2f}x <= "
            f"1.5x with {report['workers']} workers on "
            f"{report['cores']} cores")
