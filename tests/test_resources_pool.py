"""Tests for the resizable soft-resource pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resources import SoftResourcePool
from repro.sim import Environment


def test_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        SoftResourcePool(env, capacity=0)


def test_acquire_under_capacity_is_immediate():
    env = Environment()
    pool = SoftResourcePool(env, capacity=2)
    request = pool.acquire()
    assert request.triggered
    assert pool.in_use == 1
    assert pool.available == 1


def test_acquire_over_capacity_queues():
    env = Environment()
    pool = SoftResourcePool(env, capacity=1)
    first = pool.acquire()
    second = pool.acquire()
    assert first.triggered
    assert not second.triggered
    assert pool.queue_length == 1


def test_release_grants_head_waiter_fifo():
    env = Environment()
    pool = SoftResourcePool(env, capacity=1)
    granted = []

    def holder(env):
        yield pool.acquire()
        yield env.timeout(5.0)
        pool.release()

    def waiter(env, tag):
        request = pool.acquire()
        yield request
        granted.append((tag, env.now, request.wait_time))
        yield env.timeout(1.0)
        pool.release()

    env.process(holder(env))

    def spawn(env):
        yield env.timeout(1.0)
        env.process(waiter(env, "a"))
        yield env.timeout(1.0)
        env.process(waiter(env, "b"))

    env.process(spawn(env))
    env.run()
    assert [g[0] for g in granted] == ["a", "b"]
    assert granted[0][1] == pytest.approx(5.0)
    assert granted[0][2] == pytest.approx(4.0)  # queued from t=1 to t=5
    assert granted[1][1] == pytest.approx(6.0)
    assert granted[1][2] == pytest.approx(4.0)  # queued from t=2 to t=6


def test_release_without_acquire_raises():
    env = Environment()
    pool = SoftResourcePool(env, capacity=1)
    with pytest.raises(RuntimeError):
        pool.release()


def test_resize_grow_grants_waiters():
    env = Environment()
    pool = SoftResourcePool(env, capacity=1)
    pool.acquire()
    waiting = [pool.acquire(), pool.acquire()]
    assert pool.queue_length == 2
    pool.resize(3)
    assert all(w.triggered for w in waiting)
    assert pool.in_use == 3
    assert pool.queue_length == 0


def test_resize_shrink_is_lazy():
    env = Environment()
    pool = SoftResourcePool(env, capacity=3)
    for _ in range(3):
        pool.acquire()
    pool.resize(1)
    assert pool.in_use == 3          # existing holders keep their tokens
    assert pool.capacity == 1
    pool.release()
    pool.release()
    # Still at capacity: a new acquire must queue.
    request = pool.acquire()
    assert not request.triggered


def test_resize_noop_does_not_log():
    env = Environment()
    pool = SoftResourcePool(env, capacity=2)
    pool.resize(2)
    assert len(pool.resize_log) == 1


def test_resize_log_records_changes():
    env = Environment()
    pool = SoftResourcePool(env, capacity=2)

    def proc(env):
        yield env.timeout(10.0)
        pool.resize(5)
        yield env.timeout(10.0)
        pool.resize(3)

    env.process(proc(env))
    env.run()
    assert pool.resize_log == [(0.0, 2), (10.0, 5), (20.0, 3)]


def test_cancel_queued_request_is_skipped():
    env = Environment()
    pool = SoftResourcePool(env, capacity=1)
    pool.acquire()
    doomed = pool.acquire()
    survivor = pool.acquire()
    pool.cancel(doomed)
    pool.release()
    assert not doomed.triggered
    assert survivor.triggered


def test_cancel_granted_request_raises():
    env = Environment()
    pool = SoftResourcePool(env, capacity=1)
    granted = pool.acquire()
    with pytest.raises(RuntimeError):
        pool.cancel(granted)


def test_queue_length_ignores_cancelled_head():
    env = Environment()
    pool = SoftResourcePool(env, capacity=1)
    pool.acquire()
    a = pool.acquire()
    pool.acquire()
    pool.cancel(a)
    pool.release()  # grants the non-cancelled waiter, trims the head
    assert pool.queue_length == 0


def test_counters_accumulate():
    env = Environment()
    pool = SoftResourcePool(env, capacity=1)

    def worker(env):
        request = pool.acquire()
        yield request
        yield env.timeout(2.0)
        pool.release()

    for _ in range(3):
        env.process(worker(env))
    env.run()
    assert pool.total_requests == 3
    assert pool.total_granted == 3
    # Second waits 2s, third waits 4s.
    assert pool.total_wait_time == pytest.approx(6.0)


def test_mean_in_use_time_average():
    env = Environment()
    pool = SoftResourcePool(env, capacity=2)

    def worker(env):
        yield pool.acquire()
        yield env.timeout(5.0)
        pool.release()

    env.process(worker(env))
    env.process(worker(env))
    env.run(until=10.0)
    # 2 tokens held for 5s out of 10s -> mean 1.0.
    assert pool.mean_in_use() == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(1, 10),
    holds=st.lists(st.floats(0.1, 3.0), min_size=1, max_size=20),
)
def test_pool_never_exceeds_capacity_without_shrink(capacity, holds):
    """Property: without resizes, in_use <= capacity at every grant."""
    env = Environment()
    pool = SoftResourcePool(env, capacity=capacity)
    violations = []

    def worker(env, hold):
        yield pool.acquire()
        if pool.in_use > pool.capacity:
            violations.append(pool.in_use)
        yield env.timeout(hold)
        pool.release()

    for hold in holds:
        env.process(worker(env, hold))
    env.run()
    assert not violations
    assert pool.in_use == 0
    assert pool.total_granted == len(holds)


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.floats(0.0, 5.0), st.floats(0.1, 2.0)),
        min_size=1, max_size=15),
    new_capacity=st.integers(1, 8),
    resize_at=st.floats(0.1, 5.0),
)
def test_all_requests_eventually_granted_across_resize(
        data, new_capacity, resize_at):
    """Property: every request is granted even across a resize."""
    env = Environment()
    pool = SoftResourcePool(env, capacity=2)
    done = []

    def worker(env, start, hold):
        if start > 0:
            yield env.timeout(start)
        yield pool.acquire()
        yield env.timeout(hold)
        pool.release()
        done.append(1)

    def resizer(env):
        yield env.timeout(resize_at)
        pool.resize(new_capacity)

    for start, hold in data:
        env.process(worker(env, start, hold))
    env.process(resizer(env))
    env.run()
    assert len(done) == len(data)
    assert pool.in_use == 0
