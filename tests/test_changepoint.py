"""Tests for the Page-Hinkley change detector and its Sora wiring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.changepoint import ChangePoint, PageHinkley


class TestPageHinkley:
    def test_validation(self):
        with pytest.raises(ValueError):
            PageHinkley(delta=-0.1)
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkley(min_observations=1)

    def test_stationary_stream_no_detection(self):
        rng = np.random.default_rng(0)
        detector = PageHinkley()
        detections = [detector.update(v)
                      for v in rng.normal(10.0, 0.5, 500)]
        assert not any(d is not None for d in detections)

    def test_detects_upward_shift(self):
        rng = np.random.default_rng(1)
        detector = PageHinkley()
        stream = np.concatenate([rng.normal(10.0, 0.5, 100),
                                 rng.normal(30.0, 0.5, 100)])
        hits = [i for i, v in enumerate(stream)
                if detector.update(float(v)) is not None]
        assert hits, "no detection on a 3x level shift"
        assert 100 <= hits[0] <= 130  # shortly after the shift

    def test_detects_downward_shift(self):
        rng = np.random.default_rng(2)
        detector = PageHinkley()
        stream = np.concatenate([rng.normal(30.0, 1.0, 100),
                                 rng.normal(10.0, 1.0, 100)])
        detections = [detector.update(float(v)) for v in stream]
        directions = [d.direction for d in detections if d is not None]
        assert "down" in directions

    def test_resets_after_detection(self):
        rng = np.random.default_rng(3)
        detector = PageHinkley()
        for v in rng.normal(10.0, 0.5, 100):
            detector.update(float(v))
        for v in rng.normal(30.0, 0.5, 60):
            if detector.update(float(v)):
                break
        assert detector.observations < 30  # baseline restarted

    def test_warmup_period_silent(self):
        detector = PageHinkley(min_observations=50)
        # A huge jump inside the warmup cannot fire.
        for v in [1.0] * 30 + [100.0] * 10:
            assert detector.update(v) is None

    @settings(max_examples=25, deadline=None)
    @given(
        level=st.floats(1.0, 100.0),
        noise=st.floats(0.0, 0.05),
    )
    def test_no_false_positives_on_constant_streams(self, level, noise):
        rng = np.random.default_rng(4)
        detector = PageHinkley()
        values = level * (1.0 + rng.normal(0.0, noise, 300))
        assert not any(detector.update(float(v)) for v in values)

    def test_changepoint_record_fields(self):
        detector = PageHinkley()
        change = None
        for v in [10.0] * 50 + [50.0] * 50:
            change = detector.update(v) or change
        assert isinstance(change, ChangePoint)
        assert change.direction == "up"
        assert change.magnitude > 0


class TestDriftWiringIntoSora:
    def test_drift_detection_flushes_window(self):
        from repro.app import (
            Application, Call, Compute, Microservice, Operation)
        from repro.core import (
            FrameworkConfig, MonitoringModule, SoraController,
            ThreadPoolTarget)
        from repro.sim import Environment, Exponential, RandomStreams
        from repro.workloads import OpenLoopDriver

        env = Environment()
        streams = RandomStreams(5)
        app = Application(env)
        svc = Microservice(env, "svc", streams.stream("svc"), cores=2.0,
                           thread_pool_size=10)
        backend = Microservice(env, "backend", streams.stream("be"),
                               cores=4.0)
        backend.add_operation(Operation("default", [
            Compute(Exponential(0.004))]))
        svc.add_operation(Operation("default", [
            Compute(Exponential(0.008)), Call("backend")]))
        app.add_service(svc)
        app.add_service(backend)
        app.set_entrypoint("go", "svc", "default")
        monitoring = MonitoringModule(env, app)
        target = ThreadPoolTarget(svc)
        controller = SoraController(
            env, app, monitoring, [target], sla=0.3,
            config=FrameworkConfig(detect_drift=True))
        controller.start()
        driver = OpenLoopDriver(env, app, "go", rate=80.0,
                                rng=streams.stream("arr"),
                                duration=240.0)
        driver.start()

        def drift():
            yield env.timeout(120.0)
            svc.demand_scale = 4.0  # dataset grew: 4x processing

        env.process(drift())
        env.run(until=240.0)
        assert controller.drift_detections, "drift not detected"
        first_at = controller.drift_detections[0][0]
        assert 120.0 < first_at <= 200.0
