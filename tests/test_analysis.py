"""Tests for Kneedle, smoothing, and Pearson correlation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    aggregate_scatter,
    find_knee,
    fit_polynomial,
    incremental_degree_fit,
    pearson,
)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_too_few_points(self):
        assert pearson([1], [2]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=100)
        y = 0.5 * x + rng.normal(size=100)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=30))
    def test_bounded(self, values):
        rng = np.random.default_rng(1)
        other = rng.normal(size=len(values))
        r = pearson(values, other)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestAggregateScatter:
    def test_averages_per_x(self):
        x = np.array([2.0, 1.0, 2.0, 1.0])
        y = np.array([10.0, 4.0, 20.0, 6.0])
        ax, ay = aggregate_scatter(x, y)
        assert list(ax) == [1.0, 2.0]
        assert list(ay) == [5.0, 15.0]

    def test_empty(self):
        ax, ay = aggregate_scatter(np.array([]), np.array([]))
        assert ax.size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            aggregate_scatter(np.array([1.0]), np.array([1.0, 2.0]))


class TestPolynomialFit:
    def test_exact_fit_of_polynomial_data(self):
        x = np.linspace(0, 10, 50)
        y = 2 * x ** 2 - 3 * x + 1
        fit = fit_polynomial(x, y, degree=2)
        assert fit.rmse == pytest.approx(0.0, abs=1e-8)
        assert fit(np.array([1.0]))[0] == pytest.approx(0.0, abs=1e-8)

    def test_insufficient_points_rejected(self):
        with pytest.raises(ValueError):
            fit_polynomial(np.array([1.0, 2.0]), np.array([1.0, 2.0]),
                           degree=3)

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            fit_polynomial(np.arange(5.0), np.arange(5.0), degree=0)

    def test_incremental_stops_at_sufficient_degree(self):
        x = np.linspace(0, 10, 100)
        y = x ** 3 - 5 * x ** 2 + x
        fit = incremental_degree_fit(x, y, min_degree=2, max_degree=8)
        # Degree 3 fits perfectly; 4 adds nothing, so we stop at <= 4.
        assert fit.degree <= 4
        assert fit.rmse < 1e-6

    def test_incremental_handles_sparse_data(self):
        # Only 6 distinct x values: degrees above 5 are unfittable and
        # must be skipped gracefully.
        x = np.array([3.0, 5.0, 10.0, 30.0, 80.0, 200.0])
        y = np.array([10.0, 30.0, 60.0, 90.0, 80.0, 40.0])
        fit = incremental_degree_fit(x, y, min_degree=3, max_degree=8)
        assert fit.degree <= 5

    def test_incremental_unfittable_raises(self):
        with pytest.raises(ValueError):
            incremental_degree_fit(np.array([1.0, 2.0]),
                                   np.array([1.0, 2.0]), min_degree=3)

    def test_min_greater_than_max_raises(self):
        with pytest.raises(ValueError):
            incremental_degree_fit(np.arange(10.0), np.arange(10.0),
                                   min_degree=5, max_degree=3)


class TestKneedle:
    def test_piecewise_linear_knee(self):
        x = np.linspace(0, 20, 200)
        y = np.minimum(x / 5.0, 1.0)
        result = find_knee(x, y)
        assert result.found
        assert result.knee_x == pytest.approx(5.0, abs=0.3)

    def test_exponential_saturation(self):
        x = np.linspace(0, 20, 200)
        y = 1 - np.exp(-x / 3.0)
        result = find_knee(x, y)
        assert result.found
        # Analytic Kneedle knee for 1-e^{-x/tau} is near 1.9*tau.
        assert 3.0 < result.knee_x < 9.0

    def test_rise_then_fall_curve(self):
        # Goodput-like: rises to a peak then degrades. The knee should
        # land near the start of the plateau/peak region.
        x = np.linspace(0, 30, 300)
        y = np.where(x < 8, x / 8.0, 1.0 - 0.02 * (x - 8))
        result = find_knee(x, y)
        assert result.found
        assert result.knee_x == pytest.approx(8.0, abs=1.0)

    def test_straight_line_has_no_knee(self):
        x = np.linspace(0, 10, 100)
        result = find_knee(x, 2 * x)
        assert not result.found

    def test_flat_curve_has_no_knee(self):
        x = np.linspace(0, 10, 100)
        result = find_knee(x, np.ones_like(x))
        assert not result.found

    def test_too_few_points(self):
        assert not find_knee([1, 2], [1, 2]).found

    def test_unsorted_x_rejected(self):
        with pytest.raises(ValueError):
            find_knee([3, 1, 2], [1, 2, 3])

    def test_negative_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            find_knee([1, 2, 3], [1, 2, 3], sensitivity=-1.0)

    def test_convex_decreasing_elbow(self):
        x = np.linspace(0, 20, 200)
        y = np.exp(-x / 3.0)
        result = find_knee(x, y, curve="convex", direction="decreasing")
        assert result.found
        assert 3.0 < result.knee_x < 9.0

    def test_concave_decreasing(self):
        x = np.linspace(0, 10, 200)
        y = 1 - (x / 10.0) ** 4
        result = find_knee(x, y, curve="concave", direction="decreasing")
        assert result.found
        assert result.knee_x > 4.0

    def test_convex_increasing(self):
        x = np.linspace(0, 10, 200)
        y = (x / 10.0) ** 4
        result = find_knee(x, y, curve="convex", direction="increasing")
        assert result.found
        assert result.knee_x > 4.0

    def test_sensitivity_increases_conservatism(self):
        # A subtle knee confirmed at S=1 may be rejected at huge S.
        x = np.linspace(0, 20, 100)
        y = np.minimum(x / 5.0, 1.0) + 0.002 * x
        loose = find_knee(x, y, sensitivity=1.0)
        strict = find_knee(x, y, sensitivity=50.0)
        assert loose.found
        assert not strict.found or strict.knee_x >= loose.knee_x

    def test_prominent_selection(self):
        # Two knees: a weak early one and a strong later one.
        x = np.linspace(0, 30, 600)
        y = np.minimum(x / 4.0, 1.0) * 0.3 + np.where(
            x > 10, np.minimum((x - 10) / 5.0, 1.0), 0.0) * 0.7
        first = find_knee(x, y, select="first")
        prominent = find_knee(x, y, select="prominent")
        assert first.found and prominent.found
        assert prominent.knee_x >= first.knee_x
        assert len(first.all_knee_x) >= 1

    @settings(max_examples=30, deadline=None)
    @given(knee=st.floats(2.0, 15.0), scale=st.floats(0.5, 100.0))
    def test_recovers_piecewise_knee_location(self, knee, scale):
        x = np.linspace(0, 20, 400)
        y = np.minimum(x / knee, 1.0) * scale
        result = find_knee(x, y)
        assert result.found
        assert result.knee_x == pytest.approx(knee, rel=0.15, abs=0.3)
