"""Tests for spans, the trace warehouse, and critical path extraction."""

import pytest

from repro.tracing import (
    Span,
    TraceWarehouse,
    critical_path_frequencies,
    extract_critical_path,
)


def make_span(service, arrival, departure, parent=None, trace_id=1,
              started=None):
    span = Span(trace_id, service, "default", arrival, parent=parent)
    span.started = arrival if started is None else started
    span.departure = departure
    return span


class TestSpan:
    def test_duration_and_queue_wait(self):
        span = make_span("cart", 1.0, 3.0, started=1.5)
        assert span.duration == pytest.approx(2.0)
        assert span.queue_wait == pytest.approx(0.5)

    def test_duration_unfinished_raises(self):
        span = Span(1, "cart", "default", 0.0)
        with pytest.raises(ValueError):
            _ = span.duration

    def test_parent_child_links(self):
        root = make_span("front-end", 0.0, 10.0)
        child = make_span("cart", 1.0, 5.0, parent=root)
        assert child.parent is root
        assert root.children == [child]
        assert child.depth() == 1
        assert root.depth() == 0

    def test_self_time_sequential_children(self):
        root = make_span("front-end", 0.0, 10.0)
        make_span("cart", 1.0, 4.0, parent=root)
        make_span("catalogue", 5.0, 8.0, parent=root)
        # 10 total - 3 - 3 downstream = 4 own.
        assert root.self_time() == pytest.approx(4.0)

    def test_self_time_overlapping_children_not_double_counted(self):
        root = make_span("front-end", 0.0, 10.0)
        make_span("cart", 1.0, 6.0, parent=root)
        make_span("catalogue", 2.0, 8.0, parent=root)
        # Children cover [1, 8] = 7 -> self time 3.
        assert root.self_time() == pytest.approx(3.0)

    def test_self_time_no_children(self):
        span = make_span("cart-db", 0.0, 2.5)
        assert span.self_time() == pytest.approx(2.5)

    def test_walk_preorder(self):
        root = make_span("a", 0.0, 10.0)
        b = make_span("b", 1.0, 4.0, parent=root)
        make_span("c", 1.5, 3.0, parent=b)
        make_span("d", 5.0, 8.0, parent=root)
        assert [s.service for s in root.walk()] == ["a", "b", "c", "d"]

    def test_find(self):
        root = make_span("a", 0.0, 10.0)
        b = make_span("b", 1.0, 4.0, parent=root)
        assert root.find("b") is b
        assert root.find("zz") is None


class TestCriticalPath:
    def test_linear_chain(self):
        root = make_span("front-end", 0.0, 10.0)
        cart = make_span("cart", 1.0, 9.0, parent=root)
        make_span("cart-db", 2.0, 7.0, parent=cart)
        path = extract_critical_path(root)
        assert path.services == ("front-end", "cart", "cart-db")
        assert path.duration == pytest.approx(10.0)

    def test_parallel_fanout_picks_longest(self):
        # Fig. 5: front-end calls Cart and Catalogue concurrently; the
        # slower branch is the critical path.
        root = make_span("front-end", 0.0, 10.0)
        make_span("cart", 1.0, 4.0, parent=root)
        catalogue = make_span("catalogue", 1.0, 9.0, parent=root)
        make_span("catalogue-db", 2.0, 8.0, parent=catalogue)
        path = extract_critical_path(root)
        assert path.services == ("front-end", "catalogue", "catalogue-db")

    def test_sequential_children_follow_last(self):
        # With sequential calls, the last call gates the response; within
        # its overlap cluster it is the longest.
        root = make_span("orders", 0.0, 20.0)
        make_span("user", 1.0, 5.0, parent=root)
        make_span("payment", 6.0, 8.0, parent=root)
        make_span("shipping", 9.0, 19.0, parent=root)
        path = extract_critical_path(root)
        assert path.services == ("orders", "shipping")

    def test_unfinished_trace_rejected(self):
        root = Span(1, "front-end", "default", 0.0)
        with pytest.raises(ValueError):
            extract_critical_path(root)

    def test_upstream_of(self):
        root = make_span("front-end", 0.0, 10.0)
        cart = make_span("cart", 1.0, 9.0, parent=root)
        make_span("cart-db", 2.0, 7.0, parent=cart)
        path = extract_critical_path(root)
        assert [s.service for s in path.upstream_of("cart")] == ["front-end"]
        assert path.upstream_of("front-end") == ()
        with pytest.raises(ValueError):
            path.upstream_of("not-there")

    def test_contains(self):
        root = make_span("front-end", 0.0, 10.0)
        make_span("cart", 1.0, 9.0, parent=root)
        path = extract_critical_path(root)
        assert "cart" in path
        assert "catalogue" not in path

    def test_self_times_exclude_downstream(self):
        root = make_span("front-end", 0.0, 10.0)
        make_span("cart", 1.0, 9.0, parent=root)
        path = extract_critical_path(root)
        assert path.self_times()["front-end"] == pytest.approx(2.0)
        assert path.self_times()["cart"] == pytest.approx(8.0)

    def test_frequencies_count_distinct_paths(self):
        roots = []
        for i in range(3):
            root = make_span("fe", 0.0, 10.0, trace_id=i)
            make_span("cart", 1.0, 9.0, parent=root, trace_id=i)
            roots.append(root)
        other = make_span("fe", 0.0, 10.0, trace_id=9)
        make_span("catalogue", 1.0, 9.0, parent=other, trace_id=9)
        roots.append(other)
        freq = critical_path_frequencies(roots)
        assert freq[("fe", "cart")] == 3
        assert freq[("fe", "catalogue")] == 1


class TestWarehouse:
    def test_record_and_query_traces(self):
        warehouse = TraceWarehouse()
        for t in [1.0, 2.0, 3.0]:
            warehouse.record(make_span("fe", t - 0.5, t))
        assert len(warehouse) == 3
        assert len(warehouse.traces(since=1.5, until=2.5)) == 1

    def test_unfinished_trace_rejected(self):
        warehouse = TraceWarehouse()
        with pytest.raises(ValueError):
            warehouse.record(Span(1, "fe", "default", 0.0))

    def test_spans_for_window(self):
        warehouse = TraceWarehouse()
        root = make_span("fe", 0.0, 5.0)
        make_span("cart", 1.0, 3.0, parent=root)
        warehouse.record(root)
        assert len(warehouse.spans_for("cart", 0.0, 10.0)) == 1
        assert len(warehouse.spans_for("cart", 3.5, 10.0)) == 0
        assert warehouse.spans_for("unknown") == []

    def test_spans_sorted_by_departure(self):
        warehouse = TraceWarehouse()
        # Trace roots recorded in completion order, but child spans may
        # depart before earlier-recorded spans; index must stay sorted.
        a = make_span("fe", 0.0, 10.0, trace_id=1)
        make_span("cart", 1.0, 9.0, parent=a, trace_id=1)
        b = make_span("fe", 0.0, 11.0, trace_id=2)
        make_span("cart", 1.0, 2.0, parent=b, trace_id=2)
        warehouse.record(a)
        warehouse.record(b)
        spans = warehouse.spans_for("cart")
        departures = [s.departure for s in spans]
        assert departures == sorted(departures)

    def test_services_listing(self):
        warehouse = TraceWarehouse()
        root = make_span("fe", 0.0, 5.0)
        make_span("cart", 1.0, 3.0, parent=root)
        warehouse.record(root)
        assert warehouse.services() == ["cart", "fe"]

    def test_prune_drops_old_data(self):
        warehouse = TraceWarehouse()
        for t in [1.0, 2.0, 3.0, 4.0]:
            warehouse.record(make_span("fe", t - 0.5, t))
        dropped = warehouse.prune(before=2.5)
        assert dropped == 2
        assert len(warehouse) == 2
        assert len(warehouse.spans_for("fe")) == 2

    def test_ring_buffer_eviction(self):
        warehouse = TraceWarehouse(max_traces=2)
        for t in [1.0, 2.0, 3.0]:
            warehouse.record(make_span("fe", t - 0.5, t))
        assert len(warehouse) == 2
        assert warehouse.total_recorded == 3
