"""Tests for operation behaviors and random-tree tracing properties."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.app.behavior import (
    Call,
    Choice,
    ChoiceWindow,
    Compute,
    Hedge,
    Operation,
    Parallel,
    Quorum,
)
from repro.sim import Constant
from repro.tracing import Span, extract_critical_path


class TestBehaviorValidation:
    def test_compute_requires_distribution(self):
        with pytest.raises(TypeError):
            Compute(demand=0.5)  # raw float is not a Distribution

    def test_parallel_requires_calls(self):
        with pytest.raises(ValueError):
            Parallel([])
        with pytest.raises(TypeError):
            Parallel([Compute(Constant(0.1))])

    def test_operation_rejects_non_steps(self):
        with pytest.raises(TypeError):
            Operation("op", ["not a step"])

    def test_downstream_calls_flattens_parallel(self):
        operation = Operation("op", [
            Compute(Constant(0.1)),
            Call("a"),
            Parallel([Call("b"), Call("c", via_pool="p")]),
        ])
        calls = operation.downstream_calls()
        assert [c.service for c in calls] == ["a", "b", "c"]
        assert calls[2].via_pool == "p"

    def test_compute_steps(self):
        operation = Operation("op", [
            Compute(Constant(0.1)), Call("a"), Compute(Constant(0.2))])
        assert len(operation.compute_steps()) == 2

    def test_call_defaults(self):
        call = Call("svc")
        assert call.operation == "default"
        assert call.via_pool is None


class TestTailAtScaleSteps:
    def test_quorum_validates_k(self):
        calls = [Call("a"), Call("b"), Call("c")]
        assert Quorum(calls, k=2).k == 2
        with pytest.raises(ValueError):
            Quorum(calls, k=0)
        with pytest.raises(ValueError):
            Quorum(calls, k=4)
        with pytest.raises(ValueError):
            Quorum([], k=1)
        with pytest.raises(TypeError):
            Quorum([Compute(Constant(0.1))], k=1)

    def test_hedge_validates(self):
        assert Hedge(Call("a"), after=0.01).after == 0.01
        with pytest.raises(ValueError):
            Hedge(Call("a"), after=0.0)
        with pytest.raises(TypeError):
            Hedge(Compute(Constant(0.1)), after=0.01)

    def test_choice_validates_weights(self):
        branches = [(Call("a"),), (Call("b"),)]
        choice = Choice(branches, weights=(0.9, 0.1))
        assert choice.weights == (0.9, 0.1)
        with pytest.raises(ValueError):
            Choice(branches, weights=(0.9,))  # arity mismatch
        with pytest.raises(ValueError):
            Choice(branches, weights=(-1.0, 2.0))
        with pytest.raises(ValueError):
            Choice(branches, weights=(0.0, 0.0))
        with pytest.raises(ValueError):
            Choice([], weights=())

    def test_choice_window_overrides_weights_in_interval(self):
        window = ChoiceWindow(10.0, 5.0, (0.1, 0.9))
        choice = Choice([(Call("a"),), (Call("b"),)],
                        weights=(0.9, 0.1), window=window)
        assert choice.weights_at(9.99) == (0.9, 0.1)
        assert choice.weights_at(10.0) == (0.1, 0.9)
        assert choice.weights_at(14.99) == (0.1, 0.9)
        assert choice.weights_at(15.0) == (0.9, 0.1)

    def test_choice_window_arity_checked(self):
        with pytest.raises(ValueError):
            Choice([(Call("a"),), (Call("b"),)], weights=(0.5, 0.5),
                   window=ChoiceWindow(0.0, 1.0, (1.0,)))

    def test_empty_choice_branch_allowed(self):
        choice = Choice([(), (Call("db"),)], weights=(0.9, 0.1))
        assert choice.branches[0] == ()

    def test_downstream_calls_flattens_composites(self):
        operation = Operation("op", [
            Quorum([Call("r0"), Call("r1")], k=1),
            Hedge(Call("backend"), after=0.01),
            Choice([(Call("cache"),),
                    (Call("cache"), Call("db"))],
                   weights=(0.5, 0.5)),
        ])
        services = [c.service for c in operation.downstream_calls()]
        assert services == ["r0", "r1", "backend", "cache", "cache",
                            "db"]

    def test_compute_steps_reach_choice_branches(self):
        operation = Operation("op", [
            Choice([(Compute(Constant(0.1)),), ()],
                   weights=(0.5, 0.5)),
        ])
        assert len(operation.compute_steps()) == 1


# ----------------------------------------------------------------------
# Random span trees for critical-path property testing.
# ----------------------------------------------------------------------

@st.composite
def span_trees(draw, max_depth=4, max_children=3):
    """A random well-nested finished span tree."""
    counter = [0]

    def build(parent, arrival, budget, depth):
        counter[0] += 1
        departure = arrival + budget
        span = Span(1, f"svc{counter[0]}", "op", arrival, parent=parent)
        span.started = arrival
        span.departure = departure
        if depth <= 0 or budget < 0.02:
            return span
        n_children = draw(st.integers(0, max_children))
        cursor = arrival + draw(st.floats(0.0, budget * 0.2))
        for _ in range(n_children):
            remaining = departure - cursor
            if remaining < 0.02:
                break
            child_budget = draw(st.floats(0.01, max(0.011,
                                                    remaining * 0.6)))
            child_budget = min(child_budget, remaining * 0.9)
            build(span, cursor, child_budget, depth - 1)
            cursor += child_budget * draw(st.floats(0.3, 1.0))
        return span

    total = draw(st.floats(1.0, 10.0))
    return build(None, 0.0, total, max_depth)


class TestCriticalPathProperties:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(root=span_trees())
    def test_path_is_root_to_descendant_chain(self, root):
        path = extract_critical_path(root)
        assert path.spans[0] is root
        for parent, child in zip(path.spans, path.spans[1:]):
            assert child in parent.children

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(root=span_trees())
    def test_path_duration_is_root_duration(self, root):
        path = extract_critical_path(root)
        assert path.duration == pytest.approx(root.duration)

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(root=span_trees())
    def test_self_times_non_negative_and_bounded(self, root):
        for span in root.walk():
            self_time = span.self_time()
            assert 0.0 <= self_time <= span.duration + 1e-9

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(root=span_trees())
    def test_upstream_partition(self, root):
        path = extract_critical_path(root)
        last = path.spans[-1]
        upstream = path.upstream_of(last.service)
        assert len(upstream) == len(path.spans) - 1
