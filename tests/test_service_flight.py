"""Flight recorder: the control plane's self-trace of each round.

Covers the tentpole contract end to end: every control round becomes
a complete span tree (ingest → localization → deadline propagation →
SCG estimation → decision), the Jaeger-shaped export round-trips
through :func:`repro.tracing.export.traces_from_jaeger` as a fixed
point, the retention ring is bounded, the exemplar on the
recommendation-latency histogram links ``/metrics`` to
``/debug/rounds/{id}``, and disabling the recorder
(``flight_rounds=0``) leaves the decision JSONL byte-identical — the
recorder observes wall clocks but never touches decision state.
"""

import asyncio
import json

import pytest

from repro.core.scg import ScatterModelConfig
from repro.obs import parse_openmetrics
from repro.service import (
    ControlPlane,
    ControllerService,
    FlightRecorder,
    ServiceConfig,
    render_snapshot,
)
from repro.service.console import render_service_dashboard
from repro.service.flight import PHASES, SELF_SERVICE
from repro.tracing.export import export_traces, traces_from_jaeger


def flight_config(**overrides) -> ServiceConfig:
    defaults = dict(
        decide_top_k=0,
        scatter=ScatterModelConfig(min_samples=8, min_distinct=4,
                                   quantum=1.0))
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def feed_rounds(plane: ControlPlane, rounds: int = 3,
                per_round: int = 6) -> None:
    """Deterministic cart workload: scrapes between explicit ticks."""
    clock = 0.0
    step = 0
    for _round in range(rounds):
        for _scrape in range(per_round):
            clock += 1.0
            step += 1
            q = 1.0 + (step % 10)
            rate = 30.0 * q / (1.0 + q / 8.0)
            plane.ingest_metrics(render_snapshot(
                clock, {"cart": 0.92}, {"cart": q}, {"cart": rate},
                {"cart": 4}))
        plane.tick(now=clock)


# ----------------------------------------------------------------------
# Recorder unit behavior
# ----------------------------------------------------------------------
def test_invalid_capacity_rejected():
    with pytest.raises(ValueError, match="max_rounds"):
        FlightRecorder(max_rounds=-1)


def test_disabled_recorder_is_falsy_and_empty():
    recorder = FlightRecorder(max_rounds=0)
    assert not recorder
    assert len(recorder) == 0
    plane = ControlPlane(flight_config(flight_rounds=0))
    feed_rounds(plane)
    assert not plane.flight
    assert plane.flight.summaries() == []
    assert plane.flight.round(1) is None


def test_ring_retains_only_newest_rounds():
    plane = ControlPlane(flight_config(flight_rounds=2))
    feed_rounds(plane, rounds=5)
    flight = plane.flight
    assert flight.rounds_recorded == 5
    assert len(flight) == 2
    assert [entry["round"] for entry in flight.summaries()] == [4, 5]
    assert flight.round(1) is None
    assert flight.round(5) is not None


# ----------------------------------------------------------------------
# Span-tree completeness
# ----------------------------------------------------------------------
def test_round_span_tree_covers_every_phase():
    plane = ControlPlane(flight_config())
    feed_rounds(plane, rounds=3)
    payload = plane.flight.round(3)
    assert payload is not None
    assert payload["trigger"] == "cadence"
    assert set(payload["phase_ms"]) == set(PHASES)
    assert payload["ingest"]["metrics"] == 6
    assert payload["decisions"] == ["cart"]

    root = payload["spans"]
    assert root["service"] == SELF_SERVICE
    assert root["operation"] == "round"
    children = {child["operation"] for child in root["children"]}
    assert {"ingest.metrics", "localization", "deadline_propagation",
            "scg_estimation", "decision"} <= children
    estimation = next(child for child in root["children"]
                      if child["operation"] == "scg_estimation")
    assert {grand["operation"] for grand in estimation["children"]
            } == {"estimate.cart"}
    # Wall clocks are monotone through the pipeline.
    ordered = [next(child for child in root["children"]
                    if child["operation"] == op)
               for op in ("localization", "deadline_propagation",
                          "scg_estimation", "decision")]
    starts = [span["start_s"] for span in ordered]
    assert starts == sorted(starts)


def test_summaries_omit_span_objects():
    plane = ControlPlane(flight_config())
    feed_rounds(plane, rounds=2)
    summaries = plane.flight.summaries()
    assert len(summaries) == 2
    for entry in summaries:
        assert "root" not in entry and "spans" not in entry
        json.dumps(entry)  # JSON-ready as served by /debug/rounds


# ----------------------------------------------------------------------
# Jaeger round-trip
# ----------------------------------------------------------------------
def test_jaeger_export_round_trips_as_fixed_point():
    plane = ControlPlane(flight_config())
    feed_rounds(plane, rounds=2)
    payload = plane.flight.round(2)
    assert payload is not None
    document = json.dumps(payload["jaeger"], sort_keys=True)
    spans = traces_from_jaeger(document)
    assert len(spans) == 1
    reexported = export_traces(spans)
    assert json.loads(reexported) == payload["jaeger"]
    # And the parse is an exact fixed point of a second round-trip.
    assert export_traces(traces_from_jaeger(reexported)) == reexported


# ----------------------------------------------------------------------
# Replay neutrality + exemplar
# ----------------------------------------------------------------------
def test_disabled_mode_keeps_decisions_byte_identical():
    traced = ControlPlane(flight_config(flight_rounds=16))
    bare = ControlPlane(flight_config(flight_rounds=0))
    feed_rounds(traced, rounds=4)
    feed_rounds(bare, rounds=4)
    assert traced.decisions_jsonl() == bare.decisions_jsonl()
    assert len(traced.flight) == 4
    assert len(bare.flight) == 0


def test_metrics_exemplar_links_to_self_trace_round():
    plane = ControlPlane(flight_config())
    feed_rounds(plane, rounds=3)
    histogram = plane.obs.registry.histogram(
        "service.recommendation.latency")
    exemplar = histogram.exemplar
    assert exemplar is not None
    linked = exemplar["trace_id"]
    assert 1 <= linked <= 3
    assert plane.flight.round(linked) is not None
    # The exemplar survives into the OpenMetrics exposition and the
    # strict parser reads it back with the same trace id.
    families = parse_openmetrics(plane.openmetrics())
    family = families["repro_service_recommendation_latency"]
    linked_ids = [sample.exemplar.trace_id
                  for sample in family["samples"]
                  if sample.exemplar is not None]
    assert linked in linked_ids


# ----------------------------------------------------------------------
# Console + HTTP surface
# ----------------------------------------------------------------------
def test_console_renders_flight_sections_self_contained():
    plane = ControlPlane(flight_config())
    feed_rounds(plane, rounds=3)
    from repro.service import AuditJournal
    page = render_service_dashboard(plane, AuditJournal())
    assert "Per-phase flame strips" in page
    assert "/debug/rounds/" in page
    assert "Journal health" in page
    assert "http://" not in page and "https://" not in page


def test_debug_rounds_served_over_http(tmp_path):
    async def scenario() -> None:
        service = ControllerService(flight_config(flight_rounds=8),
                                    port=0, cadence=0.0)
        await service.start()
        try:
            port = service.port
            for index in range(10):
                q = 1.0 + (index % 10)
                body = render_snapshot(
                    float(index + 1), {"cart": 0.9}, {"cart": q},
                    {"cart": 30.0 * q / (1.0 + q / 8.0)}, {"cart": 4})
                status, _headers, _text = await _request(
                    port, "POST", "/ingest/openmetrics", body)
                assert status == 202
            status, _headers, _text = await _request(
                port, "POST", "/control/tick")
            assert status == 200

            status, _headers, text = await _request(
                port, "GET", "/debug/rounds")
            assert status == 200
            listing = json.loads(text)
            assert listing["enabled"] is True
            assert listing["recorded"] == 1
            ordinal = listing["rounds"][-1]["round"]

            status, _headers, text = await _request(
                port, "GET", f"/debug/rounds/{ordinal}")
            assert status == 200
            payload = json.loads(text)
            assert set(payload["phase_ms"]) == set(PHASES)
            spans = traces_from_jaeger(
                json.dumps(payload["jaeger"]))
            assert spans and spans[0].operation == "round"

            status, _headers, _text = await _request(
                port, "GET", "/debug/rounds/999")
            assert status == 404

            status, headers, text = await _request(
                port, "GET", "/debug/dashboard")
            assert status == 200
            assert headers["content-type"].startswith("text/html")
            assert "Ingest backpressure" in text

            status, _headers, text = await _request(
                port, "GET", "/debug/journal")
            assert status == 200
            assert "segments" in json.loads(text)
        finally:
            await _request(port, "POST", "/admin/shutdown")
            await asyncio.wait_for(service.serve_until_shutdown(),
                                   10.0)

    asyncio.run(scenario())


async def _request(port: int, method: str, path: str,
                   body: str | None = None
                   ) -> tuple[int, dict, str]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = (body or "").encode("utf-8")
    head = [f"{method} {path} HTTP/1.1", "Host: test",
            "Connection: close"]
    if payload or method == "POST":
        head.append("Content-Type: text/plain")
        head.append(f"Content-Length: {len(payload)}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii")
                 + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head_bytes, _sep, body_bytes = raw.partition(b"\r\n\r\n")
    lines = head_bytes.decode("latin-1").split("\r\n")
    headers = {}
    for line in lines[1:]:
        key, _sep2, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return (int(lines[0].split()[1]), headers,
            body_bytes.decode("utf-8"))
