"""Tests for the hardware autoscalers (HPA, VPA, FIRM, null)."""

import pytest

from repro.app import Application, Compute, Microservice, Operation
from repro.autoscalers import (
    FirmAutoscaler,
    HorizontalPodAutoscaler,
    NullAutoscaler,
    VerticalPodAutoscaler,
)
from repro.core import MonitoringModule
from repro.sim import Environment, Exponential, RandomStreams
from repro.workloads import OpenLoopDriver


def loaded_app(env, streams, *, demand=0.02, cores=2.0, threads=32):
    app = Application(env)
    svc = Microservice(env, "svc", streams.stream("svc"), cores=cores,
                       thread_pool_size=threads)
    svc.add_operation(Operation("default", [
        Compute(Exponential(demand))]))
    app.add_service(svc)
    app.set_entrypoint("go", "svc", "default")
    return app


def drive(env, app, streams, rate, duration=60.0):
    driver = OpenLoopDriver(env, app, "go", rate=rate,
                            rng=streams.stream("arr"), duration=duration)
    driver.start()
    return driver


class TestHPA:
    def test_scales_out_under_load(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        monitoring = MonitoringModule(env, app)
        hpa = HorizontalPodAutoscaler(env, app.service("svc"), monitoring,
                                      target_utilization=0.5,
                                      max_replicas=4)
        monitoring.start()
        hpa.start()
        # 2 cores, 20ms demand -> ~100/s capacity; rate 90 -> util ~0.9.
        drive(env, app, streams, rate=90.0)
        env.run(until=60.0)
        assert app.service("svc").replica_count >= 2
        assert hpa.scale_log
        assert hpa.scale_log[0].kind == "horizontal"

    def test_scale_down_needs_stabilization(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        app.service("svc").scale_replicas(3)
        monitoring = MonitoringModule(env, app)
        hpa = HorizontalPodAutoscaler(env, app.service("svc"), monitoring,
                                      target_utilization=0.5,
                                      scale_down_stabilization=30.0)
        monitoring.start()
        hpa.start()
        drive(env, app, streams, rate=5.0, duration=120.0)
        env.run(until=40.0)
        count_at_40 = app.service("svc").replica_count
        env.run(until=120.0)
        assert count_at_40 == 3  # too early to shrink
        assert app.service("svc").replica_count < 3  # shrunk later

    def test_respects_max_replicas(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        monitoring = MonitoringModule(env, app)
        hpa = HorizontalPodAutoscaler(env, app.service("svc"), monitoring,
                                      target_utilization=0.3,
                                      max_replicas=2)
        monitoring.start()
        hpa.start()
        drive(env, app, streams, rate=95.0, duration=90.0)
        env.run(until=90.0)
        assert app.service("svc").replica_count <= 2

    def test_tolerance_band_no_flapping(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        monitoring = MonitoringModule(env, app)
        hpa = HorizontalPodAutoscaler(env, app.service("svc"), monitoring,
                                      target_utilization=0.5,
                                      tolerance=0.2)
        monitoring.start()
        hpa.start()
        # Rate 50 -> util ~0.5 = target: inside the band, no action.
        drive(env, app, streams, rate=50.0)
        env.run(until=60.0)
        assert not hpa.scale_log

    def test_invalid_parameters(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        monitoring = MonitoringModule(env, app)
        with pytest.raises(ValueError):
            HorizontalPodAutoscaler(env, app.service("svc"), monitoring,
                                    target_utilization=0.0)
        with pytest.raises(ValueError):
            HorizontalPodAutoscaler(env, app.service("svc"), monitoring,
                                    min_replicas=5, max_replicas=2)
        with pytest.raises(ValueError):
            HorizontalPodAutoscaler(env, app.service("svc"), monitoring,
                                    period=0.0)


class TestVPA:
    def test_scales_up_under_load(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        monitoring = MonitoringModule(env, app)
        vpa = VerticalPodAutoscaler(env, app.service("svc"), monitoring,
                                    high=0.8, max_cores=4.0)
        monitoring.start()
        vpa.start()
        drive(env, app, streams, rate=95.0)
        env.run(until=60.0)
        assert app.service("svc").cores_per_replica > 2.0
        assert vpa.scale_log[0].kind == "vertical"

    def test_scales_down_when_idle(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams, cores=4.0)
        monitoring = MonitoringModule(env, app)
        vpa = VerticalPodAutoscaler(env, app.service("svc"), monitoring,
                                    low=0.35, min_cores=1.0,
                                    scale_down_stabilization=30.0)
        monitoring.start()
        vpa.start()
        drive(env, app, streams, rate=10.0, duration=120.0)
        env.run(until=120.0)
        assert app.service("svc").cores_per_replica < 4.0

    def test_invalid_parameters(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        monitoring = MonitoringModule(env, app)
        svc = app.service("svc")
        with pytest.raises(ValueError):
            VerticalPodAutoscaler(env, svc, monitoring, low=0.8, high=0.5)
        with pytest.raises(ValueError):
            VerticalPodAutoscaler(env, svc, monitoring, step=0.0)
        with pytest.raises(ValueError):
            VerticalPodAutoscaler(env, svc, monitoring, min_cores=5,
                                  max_cores=2)


class TestFirm:
    def test_scales_critical_service_on_violation(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        monitoring = MonitoringModule(env, app)
        firm = FirmAutoscaler(env, app, monitoring, request_type="go",
                              sla=0.1, scalable=["svc"], max_cores=4.0)
        monitoring.start()
        firm.start()
        drive(env, app, streams, rate=110.0)  # over 2-core capacity
        env.run(until=60.0)
        assert app.service("svc").cores_per_replica > 2.0
        assert all(e.service == "svc" for e in firm.scale_log)

    def test_does_not_scale_unscalable_services(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        monitoring = MonitoringModule(env, app)
        firm = FirmAutoscaler(env, app, monitoring, request_type="go",
                              sla=0.1, scalable=[], max_cores=4.0)
        monitoring.start()
        firm.start()
        drive(env, app, streams, rate=110.0)
        env.run(until=60.0)
        assert not firm.scale_log

    def test_scales_down_when_calm(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams, cores=4.0)
        monitoring = MonitoringModule(env, app)
        firm = FirmAutoscaler(env, app, monitoring, request_type="go",
                              sla=2.0, scalable=["svc"], min_cores=1.0,
                              scale_down_stabilization=30.0)
        monitoring.start()
        firm.start()
        drive(env, app, streams, rate=10.0, duration=150.0)
        env.run(until=150.0)
        assert app.service("svc").cores_per_replica < 4.0

    def test_records_localization_reports(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        monitoring = MonitoringModule(env, app)
        firm = FirmAutoscaler(env, app, monitoring, request_type="go",
                              sla=0.1, scalable=["svc"])
        monitoring.start()
        firm.start()
        drive(env, app, streams, rate=50.0, duration=40.0)
        env.run(until=40.0)
        assert firm.reports
        assert firm.reports[-1].critical_service == "svc"

    def test_invalid_sla(self):
        env = Environment()
        streams = RandomStreams(2)
        app = loaded_app(env, streams)
        monitoring = MonitoringModule(env, app)
        with pytest.raises(ValueError):
            FirmAutoscaler(env, app, monitoring, request_type="go",
                           sla=0.0)


class TestNullAutoscaler:
    def test_never_scales(self):
        env = Environment()
        scaler = NullAutoscaler(env)
        scaler.start()
        env.run(until=60.0)
        assert not scaler.scale_log

    def test_callbacks_registered_but_never_fired(self):
        env = Environment()
        scaler = NullAutoscaler(env)
        fired = []
        scaler.on_scale(fired.append)
        scaler.start()
        env.run(until=30.0)
        assert not fired
