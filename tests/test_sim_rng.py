"""Tests for named random streams and distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Constant,
    Erlang,
    Exponential,
    LogNormal,
    RandomStreams,
    Scaled,
    Uniform,
)


class TestRandomStreams:
    def test_same_seed_same_name_same_draws(self):
        a = RandomStreams(seed=7).stream("x")
        b = RandomStreams(seed=7).stream("x")
        assert list(a.random(5)) == list(b.random(5))

    def test_different_names_are_independent(self):
        streams = RandomStreams(seed=7)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("x").random(5)
        b = RandomStreams(seed=2).stream("x").random(5)
        assert list(a) != list(b)

    def test_stream_is_cached(self):
        streams = RandomStreams(seed=0)
        assert streams.stream("x") is streams.stream("x")

    def test_creation_order_does_not_matter(self):
        first = RandomStreams(seed=3)
        first.stream("a")
        a_then_b = first.stream("b").random(3)

        second = RandomStreams(seed=3)
        b_only = second.stream("b").random(3)
        assert list(a_then_b) == list(b_only)

    def test_spawn_prefixes_names(self):
        root = RandomStreams(seed=9)
        child = root.spawn("svc")
        direct = RandomStreams(seed=9).stream("svc.demand").random(4)
        assert list(child.stream("demand").random(4)) == list(direct)


class TestDistributions:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_constant(self):
        dist = Constant(2.5)
        assert dist.mean == 2.5
        assert all(dist.sample(self.rng) == 2.5 for _ in range(10))

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            Constant(-1.0)

    @pytest.mark.parametrize("cls,kwargs", [
        (Exponential, {"mean": 0.0}),
        (Exponential, {"mean": -1.0}),
        (LogNormal, {"mean": 0.0}),
        (LogNormal, {"mean": 1.0, "cv": 0.0}),
        (Erlang, {"k": 0, "mean": 1.0}),
        (Erlang, {"k": 2, "mean": -1.0}),
    ])
    def test_invalid_parameters_rejected(self, cls, kwargs):
        with pytest.raises(ValueError):
            cls(**kwargs)

    def test_uniform_invalid_range(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 1.0)

    @pytest.mark.parametrize("dist", [
        Exponential(mean=0.02),
        LogNormal(mean=0.02, cv=0.8),
        Erlang(k=4, mean=0.02),
        Uniform(0.01, 0.03),
    ])
    def test_empirical_mean_matches(self, dist):
        samples = [dist.sample(self.rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(dist.mean, rel=0.05)

    @pytest.mark.parametrize("dist", [
        Exponential(mean=1.0),
        LogNormal(mean=1.0, cv=2.0),
        Erlang(k=3, mean=1.0),
    ])
    def test_samples_non_negative(self, dist):
        assert all(dist.sample(self.rng) >= 0 for _ in range(1000))

    def test_lognormal_cv(self):
        dist = LogNormal(mean=1.0, cv=0.5)
        samples = np.array([dist.sample(self.rng) for _ in range(50000)])
        assert np.std(samples) / np.mean(samples) == pytest.approx(0.5, rel=0.1)

    def test_scaled_scales_mean_and_samples(self):
        base = Constant(2.0)
        scaled = base.scaled(3.0)
        assert isinstance(scaled, Scaled)
        assert scaled.mean == 6.0
        assert scaled.sample(self.rng) == 6.0

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            Constant(1.0).scaled(0.0)

    @settings(max_examples=50, deadline=None)
    @given(mean=st.floats(0.001, 100.0), cv=st.floats(0.05, 3.0))
    def test_lognormal_parameterization_roundtrip(self, mean, cv):
        dist = LogNormal(mean=mean, cv=cv)
        assert dist.mean == pytest.approx(mean)
        assert dist.cv == pytest.approx(cv)
