"""Tests for the Sora / ConScale adaptation frameworks."""

import pytest

from repro.app import Application, Call, Compute, Microservice, Operation
from repro.autoscalers import NullAutoscaler, VerticalPodAutoscaler
from repro.core import (
    ClientPoolTarget,
    ConScaleController,
    FrameworkConfig,
    MonitoringModule,
    SoraController,
    ThreadPoolTarget,
)
from repro.sim import Constant, Environment, Exponential, RandomStreams
from repro.workloads import OpenLoopDriver


def build_app(env, streams, *, threads=6, demand=0.012):
    app = Application(env)
    svc = Microservice(env, "svc", streams.stream("svc"), cores=2.0,
                       thread_pool_size=threads, cpu_overhead=0.02)
    backend = Microservice(env, "backend", streams.stream("be"), cores=4.0)
    backend.add_operation(Operation("default", [Compute(Constant(0.004))]))
    svc.add_operation(Operation("default", [
        Compute(Exponential(demand)), Call("backend")]))
    app.add_service(svc)
    app.add_service(backend)
    app.set_entrypoint("go", "svc", "default")
    return app


def bursty_rate(t):
    """Bursts well above a 2-thread pool's ~125/s ceiling."""
    return 150.0 if (t % 20.0) < 10.0 else 40.0


class TestFrameworkConfig:
    @pytest.mark.parametrize("kwargs", [
        {"control_period": 0.0},
        {"growth_factor": 1.0},
        {"min_allocation": 0},
        {"min_allocation": 10, "max_allocation": 5},
        {"pressure_fraction": 1.5},
        {"max_shrink_factor": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FrameworkConfig(**kwargs)


class TestSoraController:
    def make(self, env, streams, app, **kwargs):
        monitoring = MonitoringModule(env, app)
        target = ThreadPoolTarget(app.service("svc"))
        controller = SoraController(env, app, monitoring, [target],
                                    sla=0.3, **kwargs)
        return controller, target

    def test_requires_positive_sla(self):
        env = Environment()
        streams = RandomStreams(3)
        app = build_app(env, streams)
        monitoring = MonitoringModule(env, app)
        target = ThreadPoolTarget(app.service("svc"))
        with pytest.raises(ValueError):
            SoraController(env, app, monitoring, [target], sla=0.0)

    def test_requires_targets(self):
        env = Environment()
        streams = RandomStreams(3)
        app = build_app(env, streams)
        monitoring = MonitoringModule(env, app)
        with pytest.raises(ValueError):
            SoraController(env, app, monitoring, [], sla=0.3)

    def test_adapts_under_load(self):
        env = Environment()
        streams = RandomStreams(3)
        app = build_app(env, streams, threads=2)
        controller, target = self.make(env, streams, app)
        controller.start()
        driver = OpenLoopDriver(env, app, "go", rate=bursty_rate,
                                rng=streams.stream("arr"), duration=120.0)
        driver.start()
        env.run(until=120.0)
        # Under-allocated 2 threads with ~110/s bursts: must grow.
        assert controller.actions
        assert target.allocation() > 2

    def test_threshold_propagation_updates(self):
        env = Environment()
        streams = RandomStreams(3)
        app = build_app(env, streams)
        controller, target = self.make(env, streams, app)
        controller.start()
        driver = OpenLoopDriver(env, app, "go", rate=50.0,
                                rng=streams.stream("arr"), duration=60.0)
        driver.start()
        env.run(until=60.0)
        threshold = controller.threshold_for(target)
        # Propagated threshold below the SLA (upstream self time > 0)
        # but above the floor.
        assert 0.03 < threshold < 0.3

    def test_localization_reports_critical_service(self):
        env = Environment()
        streams = RandomStreams(3)
        app = build_app(env, streams)
        controller, _target = self.make(env, streams, app)
        controller.start()
        driver = OpenLoopDriver(env, app, "go", rate=bursty_rate,
                                rng=streams.stream("arr"), duration=60.0)
        driver.start()
        env.run(until=60.0)
        assert controller.reports
        assert controller.reports[-1].critical_service in ("svc", "backend")

    def test_vertical_scale_bootstraps_allocation(self):
        env = Environment()
        streams = RandomStreams(3)
        app = build_app(env, streams)
        monitoring = MonitoringModule(env, app)
        target = ThreadPoolTarget(app.service("svc"))
        vpa = VerticalPodAutoscaler(env, app.service("svc"), monitoring,
                                    high=0.7, max_cores=4.0)
        controller = SoraController(env, app, monitoring, [target],
                                    sla=0.3, autoscaler=vpa)
        controller.start()
        # util ~ 130 * 12ms / 2 cores = 0.78 > 0.7: VPA scales up.
        driver = OpenLoopDriver(env, app, "go", rate=130.0,
                                rng=streams.stream("arr"), duration=90.0)
        driver.start()
        env.run(until=90.0)
        bootstraps = [a for a in controller.actions
                      if a.trigger == "bootstrap"]
        assert bootstraps, "vertical scale should trigger a bootstrap"
        first = bootstraps[0]
        assert first.after > first.before

    def test_idle_system_not_shrunk_without_pressure(self):
        env = Environment()
        streams = RandomStreams(3)
        app = build_app(env, streams, threads=30)
        controller, target = self.make(env, streams, app)
        controller.start()
        # Trickle load: pool never pressed; allocation must not shrink.
        driver = OpenLoopDriver(env, app, "go", rate=5.0,
                                rng=streams.stream("arr"), duration=90.0)
        driver.start()
        env.run(until=90.0)
        assert target.allocation() == 30

    def test_min_allocation_respected(self):
        env = Environment()
        streams = RandomStreams(3)
        app = build_app(env, streams, threads=4)
        monitoring = MonitoringModule(env, app)
        target = ThreadPoolTarget(app.service("svc"))
        controller = SoraController(
            env, app, monitoring, [target], sla=0.3,
            config=FrameworkConfig(min_allocation=3))
        controller.start()
        driver = OpenLoopDriver(env, app, "go", rate=bursty_rate,
                                rng=streams.stream("arr"), duration=90.0)
        driver.start()
        env.run(until=90.0)
        assert target.allocation() >= 3

    def test_actions_record_threshold(self):
        env = Environment()
        streams = RandomStreams(3)
        app = build_app(env, streams, threads=3)
        controller, _t = self.make(env, streams, app)
        controller.start()
        driver = OpenLoopDriver(env, app, "go", rate=bursty_rate,
                                rng=streams.stream("arr"), duration=90.0)
        driver.start()
        env.run(until=90.0)
        assert all(a.threshold is not None for a in controller.actions)


class TestConScaleController:
    def test_ignores_sla_kwarg(self):
        env = Environment()
        streams = RandomStreams(3)
        app = build_app(env, streams)
        monitoring = MonitoringModule(env, app)
        target = ThreadPoolTarget(app.service("svc"))
        controller = ConScaleController(env, app, monitoring, [target],
                                        sla=0.3)
        assert controller.sla is None
        assert controller.model_name == "sct"

    def test_adapts_with_throughput_model(self):
        env = Environment()
        streams = RandomStreams(3)
        app = build_app(env, streams, threads=2)
        monitoring = MonitoringModule(env, app)
        target = ThreadPoolTarget(app.service("svc"))
        controller = ConScaleController(env, app, monitoring, [target])
        controller.start()
        driver = OpenLoopDriver(env, app, "go", rate=bursty_rate,
                                rng=streams.stream("arr"), duration=120.0)
        driver.start()
        env.run(until=120.0)
        assert controller.actions
        assert target.allocation() > 2
        # SCT estimates have no threshold.
        estimator = controller.estimators[target.name]
        assert estimator.latest is None or \
            estimator.latest.threshold is None


class TestClientPoolReplicaTracking:
    def test_horizontal_scale_reasserts_allocation(self):
        env = Environment()
        streams = RandomStreams(3)
        app = Application(env)
        owner = Microservice(env, "owner", streams.stream("o"), cores=4.0,
                             thread_pool_size=64)
        downstream = Microservice(env, "down", streams.stream("d"),
                                  cores=2.0)
        downstream.add_operation(Operation("default", [
            Compute(Constant(0.005))]))
        owner.add_client_pool("db", 10)
        owner.add_operation(Operation("default", [
            Compute(Constant(0.002)), Call("down", via_pool="db")]))
        app.add_service(owner)
        app.add_service(downstream)
        app.set_entrypoint("go", "owner", "default")

        monitoring = MonitoringModule(env, app)
        target = ClientPoolTarget(owner, "db", downstream)
        scaler = NullAutoscaler(env)
        controller = SoraController(env, app, monitoring, [target],
                                    sla=0.3, autoscaler=scaler)
        controller.start()
        env.run(until=1.0)

        # Simulate an HPA action through the autoscaler event plumbing.
        from repro.autoscalers import ScaleEvent
        downstream.scale_replicas(3)
        scaler._emit(ScaleEvent(time=env.now, service="down",
                                kind="horizontal", before=1, after=3))
        assert target.pool.capacity == 30  # 10 per replica x 3
