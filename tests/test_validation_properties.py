"""Property/metamorphic tests over the SCG pipeline and the simulator.

Strategies come from :mod:`repro.validation.strategies`; each test
states one relation that must hold for *any* generated input:

- Kneedle/SCG estimates are invariant to sample order and scale with
  the concurrency axis, and recover a planted knee;
- goodput never exceeds throughput, for any threshold;
- deadline propagation is exactly the SLA minus upstream self time,
  hence monotone (non-increasing) in upstream processing time, and
  always clamped to ``[floor·SLA, SLA]``;
- exact MVA is monotone in population, respects asymptotic bounds, and
  treats a 1-server multi station identically to a single station;
- armed invariant checkers stay silent on healthy runs and fire on a
  conservation break.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.queueing import Station, solve_mva
from repro.core.deadline import DeadlinePropagator, propagate_for_trace
from repro.core.scg import SCGModel
from repro.sim import Environment, RandomStreams
from repro.validation import InvariantChecker, InvariantViolation
from repro.validation.strategies import (
    build_chain_app,
    chain_specs,
    knee_scatters,
    linear_trace,
    workload_traces,
)

SUPPRESS = [HealthCheck.too_slow]


# ----------------------------------------------------------------------
# SCG / Kneedle metamorphic relations
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
@given(scatter=knee_scatters(), order_seed=st.integers(0, 2 ** 16))
def test_scg_estimate_invariant_to_sample_order(scatter, order_seed):
    """Shuffling the scatter samples must not move the estimate."""
    model = SCGModel()
    baseline = model.estimate(scatter.concurrency, scatter.rate)
    permutation = np.random.default_rng(order_seed).permutation(
        scatter.concurrency.size)
    shuffled = model.estimate(scatter.concurrency[permutation],
                              scatter.rate[permutation])
    if baseline is None:
        assert shuffled is None
    else:
        assert shuffled is not None
        assert shuffled.optimal_concurrency == \
            baseline.optimal_concurrency
        assert shuffled.method == baseline.method


@settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
@given(scatter=knee_scatters())
def test_scg_recovers_planted_knee(scatter):
    """The estimate lands near the curve's ground-truth knee."""
    estimate = SCGModel().estimate(scatter.concurrency, scatter.rate)
    assert estimate is not None
    error = abs(estimate.optimal_concurrency - scatter.knee)
    assert error <= max(2.0, 0.35 * scatter.knee)


@settings(max_examples=20, deadline=None, suppress_health_check=SUPPRESS)
@given(scatter=knee_scatters(), factor=st.floats(1.5, 3.0))
def test_scg_concurrency_scaling_shifts_knee(scatter, factor):
    """Scaling the concurrency axis scales the knee proportionally."""
    model = SCGModel()
    baseline = model.estimate(scatter.concurrency, scatter.rate)
    scaled = model.estimate(scatter.concurrency * factor, scatter.rate)
    assert baseline is not None and scaled is not None
    expected = factor * baseline.optimal_concurrency
    assert abs(scaled.optimal_concurrency - expected) <= \
        max(3.0, 0.35 * expected)


# ----------------------------------------------------------------------
# Goodput vs throughput
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None, suppress_health_check=SUPPRESS)
@given(
    spec=chain_specs(max_depth=3),
    rate=st.floats(20.0, 80.0),
    threshold=st.floats(0.001, 0.5),
)
def test_goodput_never_exceeds_throughput(spec, rate, threshold):
    from repro.workloads import OpenLoopDriver
    env = Environment()
    streams = RandomStreams(7)
    app = build_chain_app(env, streams, spec)
    driver = OpenLoopDriver(env, app, "go", rate=rate,
                            rng=streams.stream("arr"), duration=4.0)
    driver.start()
    env.run()
    metrics = app.service("svc0").metrics
    goodput = metrics.goodput(0.0, env.now, threshold)
    assert goodput <= metrics.throughput(0.0, env.now) + 1e-9


# ----------------------------------------------------------------------
# Deadline propagation
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
@given(
    self_times=st.lists(st.floats(0.001, 0.05), min_size=2, max_size=6),
    bump=st.floats(0.001, 0.1),
    upstream_index=st.integers(0, 4),
    sla=st.floats(0.2, 1.0),
)
def test_deadline_propagation_monotone_in_upstream_time(
        self_times, bump, upstream_index, sla):
    """Inflating any upstream service's processing time can only
    shrink the downstream threshold, by exactly the inflation."""
    upstream_index %= len(self_times) - 1
    target = f"svc{len(self_times) - 1}"
    base = propagate_for_trace(linear_trace(self_times), target, sla)
    assert base == pytest.approx(sla - sum(self_times[:-1]))

    bumped_times = list(self_times)
    bumped_times[upstream_index] += bump
    bumped = propagate_for_trace(linear_trace(bumped_times), target, sla)
    assert bumped == pytest.approx(base - bump)


@settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
@given(
    self_times=st.lists(st.floats(0.001, 0.4), min_size=1, max_size=6),
    sla=st.floats(0.2, 1.0),
    floor=st.floats(0.05, 0.5),
)
def test_deadline_propagator_clamps_to_floor_and_sla(self_times, sla,
                                                     floor):
    propagator = DeadlinePropagator(sla, floor_fraction=floor)
    target = f"svc{len(self_times) - 1}"
    deadline = propagator.propagate([linear_trace(self_times)], target)
    assert floor * sla - 1e-9 <= deadline.threshold <= sla + 1e-9
    assert deadline.samples == 1


# ----------------------------------------------------------------------
# Exact MVA properties
# ----------------------------------------------------------------------
demand_lists = st.lists(st.floats(0.005, 0.05), min_size=1, max_size=4)


@settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
@given(
    demands=demand_lists,
    population=st.integers(1, 40),
    think=st.floats(0.0, 2.0),
)
def test_mva_throughput_monotone_and_bounded(demands, population, think):
    stations = [Station(f"s{i}", d) for i, d in enumerate(demands)]
    smaller = solve_mva(stations, population, think_time=think)
    larger = solve_mva(stations, population + 1, think_time=think)
    assert larger.throughput >= smaller.throughput - 1e-12
    # Classic asymptotic bounds: the bottleneck rate and the no-queueing
    # cycle both cap throughput.
    total = sum(demands)
    assert smaller.throughput <= 1.0 / max(demands) + 1e-9
    assert smaller.throughput <= population / (think + total) + 1e-9


@settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
@given(
    demands=demand_lists,
    population=st.integers(1, 40),
    think=st.floats(0.0, 2.0),
)
def test_mva_one_server_multi_matches_single(demands, population, think):
    """A multi-core station with one server is just a single station."""
    singles = [Station(f"s{i}", d) for i, d in enumerate(demands)]
    multis = [Station(f"s{i}", d, kind="multi", servers=1)
              for i, d in enumerate(demands)]
    a = solve_mva(singles, population, think_time=think)
    b = solve_mva(multis, population, think_time=think)
    assert b.throughput == pytest.approx(a.throughput, rel=1e-9)
    for station in singles:
        assert b.queue_lengths[station.name] == pytest.approx(
            a.queue_lengths[station.name], rel=1e-9, abs=1e-12)


# ----------------------------------------------------------------------
# Workload traces
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
@given(trace=workload_traces(), at=st.floats(0.0, 1.0))
def test_workload_trace_users_stay_in_band(trace, at):
    users = trace.users(at * trace.duration)
    assert 0 <= users <= trace.peak_users


# ----------------------------------------------------------------------
# Invariant checkers
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None, suppress_health_check=SUPPRESS)
@given(spec=chain_specs(max_depth=4), count=st.integers(1, 12))
def test_invariant_checker_silent_on_healthy_runs(spec, count):
    env = Environment()
    streams = RandomStreams(9)
    app = build_chain_app(env, streams, spec)
    checker = InvariantChecker(env, app).arm()
    requests = [app.submit("go")[0] for _ in range(count)]
    env.run()
    checker.verify_quiescent()
    assert checker.events_checked > 0
    assert all(r.finished for r in requests)


class _BrokenApp:
    """An application whose books do not balance."""

    class _Log:
        total = 3

    def __init__(self):
        self.in_flight = 0
        self.latency = {"go": self._Log()}
        self.total_submitted = 2  # completed (3) + in-flight (0) != 2
        self.services = {}


@settings(max_examples=10, deadline=None, suppress_health_check=SUPPRESS)
@given(when=st.floats(0.1, 5.0))
def test_invariant_checker_fires_on_conservation_break(when):
    env = Environment()
    checker = InvariantChecker(env, _BrokenApp()).arm()
    env.call_at(when, lambda: None)
    with pytest.raises(InvariantViolation, match="conservation"):
        env.run()
    checker.disarm()
