"""End-to-end acceptance for the observability layer (ISSUE tentpole).

A Sock Shop run under the Sora controller must yield a decision log in
which every pool-size change is traceable — to the knee point the SCG
model accepted, or to the named adaptation rule that fired — always
with the propagated RT threshold recorded, and the explainability
report must render it. Observability must also be a pure observer:
enabling it must not change what the simulation computes.
"""

import numpy as np
import pytest

from repro.experiments import run_scenario, sock_shop_cart_scenario
from repro.obs import DecisionLog, Observability, render_html, render_text
from repro.workloads import build_trace

DURATION = 120.0

#: Rules whose decisions are not model-estimate-driven, so a knee point
#: is not expected (the reason itself is the explanation).
RULE_REASONS = {
    "saturation-grow", "saturation-capped", "overload-shed",
    "overload-floor", "edge-grow", "edge-shrink", "proportional",
    "replica-track",
}


def _run(obs=None, seed=42):
    trace = build_trace("steep_tri_phase", duration=DURATION,
                        peak_users=450, min_users=80)
    scenario = sock_shop_cart_scenario(
        trace=trace, controller="sora", autoscaler="firm", seed=seed,
        obs=obs)
    return run_scenario(scenario, duration=DURATION)


@pytest.fixture(scope="module")
def observed_run():
    obs = Observability()
    result = _run(obs=obs)
    return obs, result


@pytest.mark.integration
class TestDecisionTraceability:
    def test_every_pool_change_is_explained(self, observed_run):
        obs, result = observed_run
        applied = obs.decisions.applied()
        assert applied, "run produced no adaptation decisions"
        for when, decision in applied:
            assert decision.after != decision.before
            assert decision.reason, f"t={when}: decision without reason"
            # Sora propagates a finite RT threshold to the target; every
            # change must record the threshold it was made under.
            assert decision.threshold is not None
            assert 0.0 < decision.threshold < 10.0
            if decision.reason in ("knee", "argmax"):
                # Model-driven: the knee/argmax point and the fit that
                # produced it must be on the record.
                assert decision.method == decision.reason
                assert decision.knee_concurrency is not None
                assert decision.poly_degree is not None
                assert decision.samples and decision.samples > 0
            else:
                assert decision.reason in RULE_REASONS

    def test_changes_match_controller_actions(self, observed_run):
        obs, result = observed_run
        applied = obs.decisions.applied()
        # One applied decision per recorded adaptation action, in the
        # same order with the same allocations: the audit trail is the
        # controller's actual history, not a parallel account.
        actions = result.adaptation_actions
        assert len(applied) == len(actions)
        for (_when, decision), action in zip(applied, actions):
            assert decision.after == action.after
            assert decision.before == action.before

    def test_rounds_carry_localization_context(self, observed_run):
        obs, _result = observed_run
        periodic = [r for r in obs.decisions.rounds()
                    if r.trigger == "periodic"]
        assert periodic
        localized = [r for r in periodic if r.critical_service]
        assert localized, "no round localized a critical service"
        for record in localized:
            assert record.correlations
            assert record.critical_service in record.correlations
            assert record.traces > 0
            assert record.wall_ms is not None

    def test_scale_events_recorded(self, observed_run):
        obs, result = observed_run
        recorded = obs.decisions.scale_events()
        assert len(recorded) == len(result.scale_events)
        for rec, event in zip(recorded, result.scale_events):
            assert (rec.time, rec.service, rec.before, rec.after) == \
                (event.time, event.service, event.before, event.after)
            assert rec.autoscaler == "FirmAutoscaler"

    def test_profiles_and_metrics_populated(self, observed_run):
        obs, _result = observed_run
        for phase in ("localize", "propagate", "adapt"):
            assert obs.profiler.phases[phase].count > 0
        assert obs.engine is not None
        engine = obs.engine.summary()
        assert engine["events"] > 10_000
        assert engine["events_per_sec"] > 0
        metrics = obs.registry.snapshot()
        assert metrics["controller.rounds"]["value"] > 0
        assert metrics["sampler.ticks"]["value"] > 0

    def test_report_renders_the_run(self, observed_run):
        obs, _result = observed_run
        text = render_text(obs, title="acceptance")
        assert "cart.threads" in text
        assert "Adaptation timeline" in text
        html = render_html(obs, title="acceptance")
        assert html.startswith("<!DOCTYPE html>")
        assert "cart.threads" in html

    def test_jsonl_round_trip(self, observed_run, tmp_path):
        obs, _result = observed_run
        path = tmp_path / "decisions.jsonl"
        count = obs.decisions.write_jsonl(path)
        assert count == len(obs.decisions)
        restored = DecisionLog.read_jsonl(path)
        assert restored.to_jsonl() == obs.decisions.to_jsonl()
        assert [d.after for _t, d in restored.applied()] == \
            [d.after for _t, d in obs.decisions.applied()]


@pytest.mark.integration
class TestObserverPurity:
    def test_enabling_observability_changes_nothing(self, observed_run):
        _obs, observed = observed_run
        plain = _run(obs=None)
        # Same seed, observability off: identical simulated outcomes.
        assert plain.total_submitted == observed.total_submitted
        np.testing.assert_array_equal(plain.response_times,
                                      observed.response_times)
        assert [(e.time, e.service, e.after)
                for e in plain.scale_events] == \
            [(e.time, e.service, e.after)
             for e in observed.scale_events]
        assert [a.after for a in plain.adaptation_actions] == \
            [a.after for a in observed.adaptation_actions]
        # And the unobserved run recorded nothing.
        assert len(plain.obs.decisions) == 0
        assert not plain.obs
