"""End-to-end tests for the streaming telemetry pipeline (ISSUE tentpole).

A scenario run with an SLO attached must record bounded timeline series
(goodput, latency percentiles, pool size, CPU), render a fully
self-contained HTML dashboard and a text sparkline view, export valid
OpenMetrics, and survive a persistence round trip. With telemetry
disabled (the default), the pipeline must be invisible: no pump
process, no series, and bit-identical simulation outcomes.
"""

import re

import numpy as np
import pytest

from repro.experiments import run_scenario, sock_shop_cart_scenario
from repro.experiments.persistence import result_from_dict, result_to_dict
from repro.obs import (
    NULL,
    Observability,
    SLOSpec,
    parse_openmetrics,
    render_dashboard_html,
    render_openmetrics,
    render_sparklines,
)
from repro.workloads import build_trace

DURATION = 60.0


def _scenario(obs=None, slo=True, seed=42):
    trace = build_trace("steep_tri_phase", duration=DURATION,
                        peak_users=300, min_users=80)
    scenario = sock_shop_cart_scenario(
        trace=trace, controller="sora", autoscaler="firm", seed=seed,
        obs=obs)
    if slo and obs is not None and obs:
        scenario.slo = SLOSpec(name="cart-rt", latency_threshold=0.4)
    return scenario


@pytest.fixture(scope="module")
def telemetry_run():
    obs = Observability()
    result = run_scenario(_scenario(obs=obs), duration=DURATION)
    return obs, result


@pytest.mark.integration
class TestTimelineEmission:
    def test_core_series_are_recorded(self, telemetry_run):
        obs, _result = telemetry_run
        names = obs.timeline.names()
        for expected in ("goodput", "latency.p50", "latency.p99",
                         "slo.budget_remaining"):
            assert expected in names, f"missing series {expected}"
        assert any(name.startswith("pool.") for name in names)
        assert any(name.startswith("cpu.") for name in names)
        assert any(name.startswith("burn.") for name in names)

    def test_series_are_bounded_and_in_sim_time(self, telemetry_run):
        obs, _result = telemetry_run
        for name, series in obs.timeline.items():
            assert len(series) <= series.capacity
            times, _values = series.data()
            assert times.size > 0, f"series {name} is empty"
            assert times[0] >= 0.0
            # run_scenario allows a 2 s drain past the workload window.
            assert times[-1] <= DURATION + 2.0
            assert list(times) == sorted(times)

    def test_percentiles_are_ordered(self, telemetry_run):
        obs, _result = telemetry_run
        _t50, p50 = obs.timeline.series("latency.p50").latest()
        _t99, p99 = obs.timeline.series("latency.p99").latest()
        assert 0.0 < p50 <= p99

    def test_slo_monitor_attached_and_fed(self, telemetry_run):
        obs, result = telemetry_run
        assert obs.slo is not None
        assert obs.slo.spec.name == "cart-rt"
        assert obs.slo.total > 0
        # The monitor saw the same traffic the result reports.
        assert obs.slo.total <= result.total_submitted

    def test_slo_requires_enabled_obs(self):
        scenario = _scenario(obs=None, slo=False)
        scenario.slo = SLOSpec(name="x", latency_threshold=0.4)
        with pytest.raises(ValueError, match="enabled Observability"):
            run_scenario(scenario, duration=5.0)


@pytest.mark.integration
class TestDashboard:
    def test_html_is_self_contained(self, telemetry_run):
        obs, _result = telemetry_run
        html = render_dashboard_html(obs, title="telemetry-run")
        assert html.lstrip().startswith("<!DOCTYPE html>")
        # No external fetches of any kind: scripts, styles, images,
        # fonts all inline.
        assert "http://" not in html
        assert "https://" not in html
        assert not re.search(r'src\s*=\s*["\'](?!data:)', html)
        assert "<link" not in html
        assert "@import" not in html
        for name in ("goodput", "latency.p99"):
            assert name in html

    def test_html_shows_annotations(self, telemetry_run):
        obs, _result = telemetry_run
        html = render_dashboard_html(obs, title="telemetry-run")
        # The Sora run applies decisions; each becomes a marker.
        if obs.decisions.applied():
            assert "marker-decision" in html

    def test_sparklines_render(self, telemetry_run):
        obs, _result = telemetry_run
        text = render_sparklines(obs, title="telemetry-run")
        assert "goodput" in text
        assert "latency.p99" in text

    def test_empty_obs_raises(self):
        with pytest.raises(ValueError):
            render_dashboard_html(Observability(), title="empty")


@pytest.mark.integration
class TestOpenMetrics:
    def test_round_trip(self, telemetry_run):
        obs, _result = telemetry_run
        text = render_openmetrics(obs)
        assert text.endswith("# EOF\n")
        families = parse_openmetrics(text)
        assert "repro_slo_requests" in families
        samples = families["repro_slo_requests"]["samples"]
        by_verdict = {s.labels["verdict"]: s.value for s in samples}
        assert by_verdict["good"] == obs.slo.good_total
        assert by_verdict["bad"] == obs.slo.bad_total
        compliance = families["repro_slo_compliance"]["samples"][0]
        assert compliance.value == pytest.approx(obs.slo.compliance())

    def test_parser_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE x gauge\nx 1\n")

    def test_parser_rejects_untyped_sample(self):
        with pytest.raises(ValueError, match="without # TYPE"):
            parse_openmetrics("mystery 1\n# EOF\n")


@pytest.mark.integration
class TestPersistenceRoundTrip:
    def test_telemetry_survives_save_load(self, telemetry_run):
        obs, result = telemetry_run
        clone = result_from_dict(result_to_dict(result))
        assert clone.obs  # telemetry restored as an enabled scope
        assert clone.obs.timeline.names() == obs.timeline.names()
        for name in obs.timeline.names():
            np.testing.assert_allclose(
                clone.obs.timeline.series(name).data()[1],
                obs.timeline.series(name).data()[1], atol=1e-6)
        assert clone.obs.slo is not None
        assert clone.obs.slo.good_total == obs.slo.good_total
        assert len(clone.obs.decisions) == len(obs.decisions)

    def test_restored_run_renders_dashboard_and_openmetrics(
            self, telemetry_run):
        obs, result = telemetry_run
        clone = result_from_dict(result_to_dict(result))
        html = render_dashboard_html(clone.obs, title=clone.name)
        assert "goodput" in html
        families = parse_openmetrics(render_openmetrics(clone.obs))
        assert "repro_slo_compliance" in families

    def test_runs_without_telemetry_persist_unchanged(self):
        result = run_scenario(_scenario(), duration=10.0)
        payload = result_to_dict(result)
        assert "telemetry" not in payload
        clone = result_from_dict(payload)
        assert not clone.obs


@pytest.mark.integration
class TestDisabledModePurity:
    def test_default_run_has_no_telemetry_machinery(self):
        scenario = _scenario()
        assert scenario.obs is NULL
        run_scenario(scenario, duration=10.0)
        assert not scenario.obs.timeline
        assert scenario.obs.slo is None

    def test_telemetry_is_a_pure_observer(self):
        # Same seed, with and without the full pipeline: the simulation
        # must compute bit-identical outcomes (the pump only reads).
        plain = run_scenario(_scenario(), duration=30.0)
        obs = Observability()
        observed = run_scenario(_scenario(obs=obs), duration=30.0)
        np.testing.assert_array_equal(plain.response_times,
                                      observed.response_times)
        np.testing.assert_array_equal(plain.completion_times,
                                      observed.completion_times)
        assert plain.total_submitted == observed.total_submitted


@pytest.mark.integration
class TestSpanIdDeterminism:
    def test_two_runs_in_one_process_allocate_identical_ids(self):
        ids = []
        for _attempt in range(2):
            scenario = _scenario(slo=False)
            run_scenario(scenario, duration=10.0)
            ids.append([
                span.span_id
                for root in scenario.app.warehouse.traces()
                for span in root.walk()])
        assert ids[0], "run produced no traces"
        assert ids[0] == ids[1]


class TestTraceExemplars:
    """Exemplar trace ids on the OpenMetrics trace families."""

    def scope(self, traces=20):
        from repro.tracing import (
            CriticalPathAggregator,
            TailSampler,
            TraceWarehouse,
        )
        from tests.test_tracing_sampling import make_trace

        obs = Observability(telemetry=False)
        warehouse = TraceWarehouse(
            sampler=TailSampler(1.0, np.random.default_rng(0),
                                slo_threshold=0.05),
            analytics=CriticalPathAggregator())
        obs.attach_trace_analytics(warehouse)
        for index in range(traces):
            warehouse.record(make_trace(
                trace_id=index + 1,
                duration=0.01 * (index + 1)))
        return obs, warehouse

    def test_histogram_exemplar_pins_the_slowest_trace(self):
        obs, warehouse = self.scope()
        histogram = obs.registry.histogram("trace.latency")
        assert histogram.count == 20
        slowest = warehouse.analytics.slowest
        assert histogram.exemplar["trace_id"] == slowest.trace_id == 20
        assert histogram.exemplar["value"] == pytest.approx(0.2)

    def test_exemplars_survive_render_and_reparse(self):
        obs, warehouse = self.scope()
        families = parse_openmetrics(render_openmetrics(obs))
        slowest = warehouse.analytics.slowest
        for family in ("repro_trace_latency",
                       "repro_trace_critical_path_duration_seconds"):
            counts = [s for s in families[family]["samples"]
                      if s.name.endswith("_count")]
            assert counts, family
            exemplar = counts[0].exemplar
            assert exemplar is not None, family
            assert exemplar.trace_id == slowest.trace_id
            assert exemplar.value == pytest.approx(slowest.value)

    def test_per_service_exemplars_link_self_time_peaks(self):
        obs, warehouse = self.scope()
        families = parse_openmetrics(render_openmetrics(obs))
        samples = families["repro_trace_self_time_seconds"]["samples"]
        by_service = {s.labels["service"]: s.exemplar
                      for s in samples if s.name.endswith("_count")}
        expected = warehouse.analytics.slowest_by_service
        assert set(by_service) == set(expected)
        for service, exemplar in by_service.items():
            assert exemplar.trace_id == expected[service].trace_id

    def test_sampling_coverage_families_render(self):
        obs, _warehouse = self.scope()
        families = parse_openmetrics(render_openmetrics(obs))
        seen = families["repro_trace_sampling_seen"]["samples"][0]
        assert seen.labels == {"sampler": "tail"}
        assert seen.value == 20
        assert families["repro_trace_sampling_slo_retention"][
            "samples"][0].value == 1.0
        # Ordinary samples default to carrying no exemplar.
        assert seen.exemplar is None
