"""MonitoringModule retention: memory stays bounded on long runs and
pruning never removes samples the analysis window still needs."""

import numpy as np
import pytest

from repro.core.monitoring import MonitoringModule
from repro.sim import Environment, RandomStreams
from tests.conftest import build_chain


def _drive(env, app, rate_hz=20.0, request_type="go"):
    """A deterministic open-loop driver process."""
    def loop():
        while True:
            app.submit(request_type)
            yield env.timeout(1.0 / rate_hz)
    env.process(loop(), name="driver")


@pytest.fixture
def loaded_app():
    env = Environment()
    streams = RandomStreams(7)
    app = build_chain(env, streams, depth=2, demand_ms=4.0, threads=8)
    return env, app


def test_warehouse_and_logs_bounded_by_retention(loaded_app):
    env, app = loaded_app
    retention = 30.0
    monitoring = MonitoringModule(env, app, interval=1.0,
                                  retention=retention)
    monitoring.start()
    _drive(env, app)

    sizes = []
    for checkpoint in (60.0, 120.0, 180.0, 240.0):
        env.run(until=checkpoint)
        trace_count = len(app.warehouse.traces(0.0, env.now))
        completion_count = sum(
            svc.metrics.completions(0.0, env.now)[0].size
            for svc in app.services.values())
        sizes.append((trace_count, completion_count))

    # Under a steady arrival rate, retained state must plateau instead
    # of growing linearly with simulated time: each checkpoint holds at
    # most ~retention seconds of history (2x slack for prune cadence).
    counts = np.asarray(sizes, dtype=float)
    assert counts[-1, 0] <= 2.0 * counts[0, 0]
    assert counts[-1, 1] <= 2.0 * counts[0, 1]
    # And nothing older than the retention horizon survives a cycle.
    horizon = env.now - 2 * retention
    assert not app.warehouse.traces(0.0, horizon)
    for svc in app.services.values():
        times, _lat = svc.metrics.completions(0.0, horizon)
        assert times.size == 0


def test_pruning_preserves_analysis_window(loaded_app):
    env, app = loaded_app
    retention = 30.0
    window = 15.0  # analysis window < retention, as controllers assume
    monitoring = MonitoringModule(env, app, interval=1.0,
                                  retention=retention)
    monitoring.start()
    _drive(env, app)

    for checkpoint in (45.0, 90.0, 150.0):
        env.run(until=checkpoint)
        since = env.now - window
        # Traces inside the window survive every prune cycle...
        window_traces = app.warehouse.traces(since, env.now)
        assert window_traces, "analysis window lost all traces"
        assert all(since <= root.departure < env.now
                   for root in window_traces)
        # ...and so do per-service completions and utilization samples.
        for name, svc in app.services.items():
            times, latencies = svc.metrics.completions(since, env.now)
            assert times.size > 0
            assert latencies.size == times.size
            util_times, util = monitoring.utilization[name].window(
                since, env.now)
            # One sample per interval over the window (edges tolerant).
            assert util_times.size >= int(window) - 2
            assert np.all(util >= 0.0)


def test_utilization_series_bounded(loaded_app):
    env, app = loaded_app
    monitoring = MonitoringModule(env, app, interval=0.5,
                                  retention=20.0)
    monitoring.start()
    _drive(env, app, rate_hz=5.0)
    env.run(until=300.0)
    for name in app.services:
        # 20 s retention at 0.5 s cadence -> ~40 live samples, never
        # the ~600 an unpruned series would hold.
        assert len(monitoring.utilization[name]) <= 60
        assert len(monitoring.busy_cores[name]) <= 60
