"""Perf-regression smoke test against the committed kernel baseline.

Runs the kernel bench suite at a small scale and checks each
throughput metric against ``benchmarks/baselines/
BENCH_kernel_baseline.json``. The tolerance is deliberately generous
(default 2x, ``REPRO_PERF_TOLERANCE``): shared CI machines are noisy
and this gate exists to catch order-of-magnitude regressions — an
accidentally quadratic event loop, a lost fast path — not 10% drift.
Measured run-to-run ratios on a contended 1-core container span
0.59x–1.10x of the committed baseline, so 2x is the tightest setting
that holds without flaking; revisit if CI moves to dedicated runners.

Refresh the baseline after intentional kernel changes with::

    PYTHONPATH=src python -m repro.cli bench \
        --output benchmarks/baselines/BENCH_kernel_baseline.json
"""

import json
import os
import pathlib

import pytest

from repro.experiments.bench import SCHEMA, run_bench_suite

BASELINE_PATH = (pathlib.Path(__file__).resolve().parent.parent /
                 "benchmarks" / "baselines" /
                 "BENCH_kernel_baseline.json")

#: Allowed slowdown factor vs the committed baseline.
TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "2.0"))

#: (benchmark, throughput field) pairs the gate holds.
GATES = [
    ("timeout_chain", "events_per_sec"),
    ("cpu_scheduler", "events_per_sec"),
    ("pool_handoff", "grants_per_sec"),
    ("sock_shop", "requests_per_sec"),
]


@pytest.fixture(scope="module")
def baseline():
    assert BASELINE_PATH.exists(), (
        f"missing committed baseline {BASELINE_PATH}; regenerate it "
        "(and the root BENCH_kernel.json trends seed) with "
        "`PYTHONPATH=src python -m repro.cli bench --output "
        f"{BASELINE_PATH.relative_to(BASELINE_PATH.parents[2])}` "
        "from the repo root, then commit the refreshed report")
    report = json.loads(BASELINE_PATH.read_text())
    assert report["schema"] == SCHEMA
    return report


@pytest.fixture(scope="module")
def current():
    # Small scale + best-of-5 keeps this fast while the min over
    # repeats damps scheduler noise; throughput is roughly
    # scale-invariant so the reduced run is comparable to the
    # full-scale baseline within the gate's tolerance.
    return run_bench_suite(scale=0.05, repeats=5,
                           include_parallel=False)


@pytest.mark.parametrize("bench,field", GATES)
def test_throughput_no_regression(baseline, current, bench, field):
    reference = baseline["benchmarks"][bench][field]
    measured = current["benchmarks"][bench][field]
    assert measured > 0
    floor = reference / TOLERANCE
    assert measured >= floor, (
        f"{bench}.{field} regressed: {measured:,.0f}/s vs baseline "
        f"{reference:,.0f}/s (floor {floor:,.0f}/s at "
        f"{TOLERANCE:g}x tolerance). If the slowdown is intentional, "
        f"refresh {BASELINE_PATH.name} via `repro bench --output`.")


#: Committed full-scale bench report (the trends seed) — where the
#: 1000-series self-trace overhead claim is actually measured.
SEED_PATH = (pathlib.Path(__file__).resolve().parent.parent /
             "BENCH_kernel.json")


def test_selftrace_overhead_bounded(current):
    """Flight recording must stay a sub-10% tax on the control loop,
    and disabling it must not change a single decision byte.

    The 10% budget is held on the committed full-scale 1000-series
    report; the live smoke run (50 series, ~0.3 s loops) is too
    noise-dominated for a tight bound, so — like the throughput gates
    above — it only has to rule out an order-of-magnitude regression.
    The byte-identity assertions are deterministic and stay strict.
    """
    stats = current["benchmarks"]["service_selftrace"]
    assert stats["identical_decisions"] is True
    assert stats["rounds_recorded"] == stats["rounds"]
    assert stats["selftrace_overhead_pct"] < 100.0, (
        f"self-tracing more than doubled the control loop at smoke "
        f"scale ({stats['traced_seconds']:.3f}s traced vs "
        f"{stats['bare_seconds']:.3f}s bare)")

    assert SEED_PATH.exists(), (
        f"missing committed trends seed {SEED_PATH}; regenerate with "
        "`PYTHONPATH=src python -m repro.cli bench --output "
        "BENCH_kernel.json` from the repo root and commit it")
    seed = json.loads(SEED_PATH.read_text())
    full = seed["benchmarks"]["service_selftrace"]
    assert full["series"] >= 1000
    assert full["identical_decisions"] is True
    assert full["selftrace_overhead_pct"] < 10.0, (
        f"committed full-scale self-trace overhead "
        f"{full['selftrace_overhead_pct']:.1f}% exceeds the 10% "
        f"budget — fix the recorder before refreshing the seed")
