"""Hybrid fluid/DES mode: the analytic fast path must match theory
and simulation.

Three layers of evidence:

- **Extraction**: ``build_fluid_model`` walking a real application's
  operation tree must reproduce the hand-written station lists of the
  conformance family (same solver output as the exact MVA ground
  truth those scenarios were built around).
- **Approximation**: the Schweitzer fixed point used above the exact
  cutoff stays within a few percent of exact MVA across the family,
  and ``solve_mva_all`` returns exactly what per-population
  ``solve_mva`` calls would.
- **End to end**: a fluid sweep agrees with a full DES run of the
  same scenario within the conformance family's own tolerance, and
  the hybrid seam (DES head → calibrated fluid tail) runs a
  million-user diurnal day in seconds.
"""

import pytest

from repro.analysis.queueing import (
    solve_mva,
    solve_mva_all,
    solve_mva_schweitzer,
)
from repro.experiments.scenarios import social_network_drift_scenario
from repro.sim.fluid import (
    EXACT_POPULATION_CUTOFF,
    build_fluid_model,
    calibrate_from_application,
    run_fluid,
    run_scenario_hybrid,
)
from repro.validation.scenarios import generate_scenarios
from repro.workloads import build_trace
from repro.workloads.traces import WorkloadTrace, diurnal

#: Conformance scenarios whose station structure the walk can
#: reproduce exactly (single request class, no admission pools).
FAMILY = [sc for sc in generate_scenarios()
          if sc.thread_pool is None][:12]


class TestExtraction:
    @pytest.mark.parametrize("sc", FAMILY, ids=lambda sc: sc.name)
    def test_matches_conformance_stations(self, sc):
        """The extracted model solves identically to the scenario's
        hand-written station list at the scenario's population."""
        _env, app, _driver = sc.build(seed=3)
        model = build_fluid_model(app, "go", sc.think_time)
        exact = solve_mva(sc.stations(), sc.population, sc.think_time)
        fluid = model.solve(sc.population)
        assert fluid.throughput == pytest.approx(exact.throughput,
                                                 rel=1e-9)
        assert fluid.cycle_time == pytest.approx(exact.cycle_time,
                                                 rel=1e-9)

    def test_unknown_request_type_rejected(self):
        _env, app, _driver = FAMILY[0].build(seed=1)
        with pytest.raises(KeyError):
            build_fluid_model(app, "nope", 1.0)


class TestSolvers:
    def test_solve_mva_all_matches_pointwise(self):
        sc = FAMILY[0]
        every = solve_mva_all(sc.stations(), 40, sc.think_time)
        assert len(every) == 41
        for n in (0, 1, 5, 17, 40):
            one = solve_mva(sc.stations(), n, sc.think_time)
            assert every[n].population == n
            assert every[n].throughput == pytest.approx(
                one.throughput, rel=1e-12)
            assert every[n].queue_lengths == pytest.approx(
                one.queue_lengths, rel=1e-9)

    @pytest.mark.parametrize("sc", FAMILY, ids=lambda sc: sc.name)
    def test_schweitzer_error_profile(self, sc):
        """AMVA shows the textbook error profile: up to ~5-6% on
        throughput at the small-N saturation knee — a regime
        ``FluidModel.solve`` never uses it in (exact MVA handles
        populations up to the cutoff) — and well under 0.5% above the
        exact cutoff, where it actually runs."""
        for factor in (0.5, 1.0, 2.0, 8.0):
            n = max(1, int(sc.population * factor))
            exact = solve_mva(sc.stations(), n, sc.think_time)
            approx = solve_mva_schweitzer(sc.stations(), n,
                                          sc.think_time)
            assert approx.throughput == pytest.approx(
                exact.throughput, rel=0.06)
        n = EXACT_POPULATION_CUTOFF + 1
        exact = solve_mva(sc.stations(), n, sc.think_time)
        approx = solve_mva_schweitzer(sc.stations(), n, sc.think_time)
        assert approx.throughput == pytest.approx(exact.throughput,
                                                  rel=0.005)

    def test_schweitzer_million_users_fast(self):
        """Cost is independent of N: a 1M-user solve is instant (the
        exact recursion would take ~N iterations)."""
        sc = FAMILY[0]
        result = solve_mva_schweitzer(sc.stations(), 1_000_000,
                                      sc.think_time)
        assert result.population == 1_000_000
        assert result.throughput > 0


class TestFluidVsSimulation:
    def test_fluid_matches_des_steady_state(self):
        """A flat-trace fluid sweep agrees with the DES throughput of
        the same scenario (conformance-style bound)."""
        sc = FAMILY[1]  # single_knee: contention without saturation
        env, app, driver = sc.build(seed=23)
        driver.start()
        duration = 80.0
        env.run(until=duration)
        warmup = 20.0
        times, _lat = app.latency["go"].window(since=warmup,
                                               until=duration)
        des_throughput = times.size / (duration - warmup)
        model = build_fluid_model(app, "go", sc.think_time)
        fluid = model.solve(sc.population)
        assert des_throughput == pytest.approx(fluid.throughput,
                                               rel=0.10)


class TestRunFluid:
    def test_diurnal_sweep_shape(self):
        _env, app, _driver = FAMILY[0].build(seed=5)
        trace = diurnal(duration=3600.0, peak_users=300, min_users=20)
        result = run_fluid(app, "go", trace, think_time=1.0,
                           interval=60.0)
        assert len(result.times) == 61
        assert result.total_requests > 0
        assert float(result.throughput.max()) > 0
        summary = result.summary()
        assert summary["peak_users"] == 300
        assert summary["elapsed_seconds"] < 30.0

    def test_exact_seeding_matches_per_population_solves(self):
        """The solve_mva_all seeding is an optimization only: each
        sample equals an individually solved population."""
        _env, app, _driver = FAMILY[2].build(seed=5)
        trace = diurnal(duration=600.0, peak_users=90, min_users=10)
        assert trace.peak_users <= EXACT_POPULATION_CUTOFF
        result = run_fluid(app, "go", trace, think_time=1.0,
                           interval=60.0)
        model = build_fluid_model(app, "go", 1.0)
        for i, t in enumerate(result.times):
            solo = model.solve(int(result.populations[i]))
            assert result.throughput[i] == pytest.approx(
                solo.throughput, rel=1e-12)

    def test_invalid_interval_rejected(self):
        _env, app, _driver = FAMILY[0].build(seed=1)
        trace = diurnal(duration=600.0, peak_users=50, min_users=5)
        with pytest.raises(ValueError):
            run_fluid(app, "go", trace, think_time=1.0, interval=0.0)


class TestHybrid:
    def test_scenario_hybrid_end_to_end(self):
        trace = build_trace("dual_phase", duration=600.0,
                            peak_users=100, min_users=25)
        scenario = social_network_drift_scenario(trace=trace, seed=11,
                                                 controller="none",
                                                 autoscaler="none")
        result = run_scenario_hybrid(scenario, duration=600.0,
                                     des_window=60.0, interval=30.0)
        assert result.fluid.times[0] == 60.0
        assert result.fluid.times[-1] == 600.0
        assert result.calibrated_demands  # measured, not defaulted
        assert all(d > 0 for d in result.calibrated_demands.values())
        summary = result.summary()
        assert summary["des_window"] == 60.0
        assert summary["fluid"]["peak_throughput"] > 0

    def test_hybrid_calibration_tracks_des_throughput(self):
        """The calibrated fluid tail should continue roughly where the
        DES head's steady state left off (flat trace, same load)."""
        flat = WorkloadTrace("flat", 400.0, 60, 60, lambda u: 1.0)
        scenario = social_network_drift_scenario(trace=flat, seed=7,
                                                 controller="none",
                                                 autoscaler="none")
        result = run_scenario_hybrid(scenario, duration=400.0,
                                     des_window=80.0, interval=40.0)
        app = scenario.app
        times, _lat = app.latency["read_home_timeline"].window(
            since=20.0, until=80.0)
        des_throughput = times.size / 60.0
        assert float(result.fluid.throughput[0]) == pytest.approx(
            des_throughput, rel=0.15)

    def test_fluid_trace_override_scales_to_a_million(self):
        """The fleet pattern: tiny DES head, million-user target
        trace, whole day swept in seconds."""
        calibration = WorkloadTrace("calib", 60.0, 40, 40,
                                    lambda u: 1.0)
        scenario = social_network_drift_scenario(trace=calibration,
                                                 seed=3,
                                                 controller="none",
                                                 autoscaler="none")
        target = diurnal(peak_users=1_000_000, min_users=50_000)
        result = run_scenario_hybrid(scenario, duration=86400.0,
                                     des_window=60.0, interval=60.0,
                                     fluid_trace=target)
        assert result.fluid.populations.max() >= 900_000
        assert result.fluid.elapsed < 60.0  # "minutes", with margin
        assert result.fluid.total_requests > 0

    def test_bad_window_rejected(self):
        flat = WorkloadTrace("flat", 100.0, 20, 20, lambda u: 1.0)
        scenario = social_network_drift_scenario(trace=flat, seed=2,
                                                 controller="none",
                                                 autoscaler="none")
        with pytest.raises(ValueError):
            run_scenario_hybrid(scenario, duration=100.0,
                                des_window=0.0)


class TestCalibration:
    def test_measured_demands_are_positive_and_complete(self):
        trace = WorkloadTrace("flat", 120.0, 50, 50, lambda u: 1.0)
        scenario = social_network_drift_scenario(trace=trace, seed=9,
                                                 controller="none",
                                                 autoscaler="none")
        from repro.experiments.harness import run_scenario
        run_scenario(scenario, duration=60.0)
        demands, visits = calibrate_from_application(
            scenario.app, "read_home_timeline")
        assert set(demands) <= set(scenario.app.services)
        assert demands  # the hot path definitely completed work
        assert all(d > 0 for d in demands.values())
        assert all(v > 0 for v in visits.values())
