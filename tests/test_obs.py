"""Unit tests for the ``repro.obs`` observability layer."""

import io
import json
import logging
import math

import numpy as np
import pytest

from repro.obs import (
    NULL,
    ControlRoundRecord,
    DecisionLog,
    DriftRecord,
    EngineProfiler,
    Histogram,
    MetricsRegistry,
    Observability,
    PhaseProfiler,
    ScaleEventRecord,
    TargetDecision,
    configure_logging,
    quiet,
    record_from_dict,
    render_html,
    render_text,
)
from repro.obs.registry import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM
from repro.sim import Environment


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2.5)
        assert registry.counter("c").value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(7.0)
        assert registry.gauge("g").value == 7.0

    def test_histogram_running_aggregates_cover_everything(self):
        hist = Histogram("h", capacity=8)
        for value in range(100):
            hist.observe(float(value))
        assert hist.count == 100
        assert hist.min == 0.0
        assert hist.max == 99.0
        assert hist.mean == pytest.approx(49.5)

    def test_histogram_ring_is_bounded_and_recent(self):
        hist = Histogram("h", capacity=8)
        for value in range(100):
            hist.observe(float(value))
        recent = hist.recent()
        assert recent.size == 8
        # Only the last 8 observations are retained.
        assert set(recent.tolist()) == set(float(v) for v in range(92, 100))
        assert hist.percentile(0.0) >= 92.0

    def test_empty_histogram_percentile_is_nan(self):
        assert math.isnan(Histogram("h").percentile(50.0))

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_disabled_registry_hands_out_null_singletons(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c") is NULL_COUNTER
        assert registry.gauge("g") is NULL_GAUGE
        assert registry.histogram("h") is NULL_HISTOGRAM
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        assert registry.snapshot() == {}
        assert registry.names() == []

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(2.0)
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "value": 1.0}
        assert snap["h"]["count"] == 1
        assert snap["h"]["p50"] == 2.0


def _decision(**overrides):
    payload = dict(target="cart.threads", trigger="periodic",
                   outcome="applied", reason="knee", before=5, after=8,
                   threshold=0.35, method="knee", knee_concurrency=4.2,
                   knee_rate=120.0, poly_degree=6, samples=480,
                   max_concurrency=9.5, growth_can_help=True,
                   curve=((1.0, 10.0), (2.0, 30.0), (4.0, 55.0)))
    payload.update(overrides)
    return TargetDecision(**payload)


def _round(time=15.0, decisions=()):
    return ControlRoundRecord(
        time=time, controller="scg", trigger="periodic",
        critical_service="cart", dominant_path=("front-end", "cart"),
        correlations={"cart": 0.97, "cart-db": 0.2},
        candidates=("cart",), thresholds={"cart.threads": 0.35},
        decisions=tuple(decisions), traces=1200, wall_ms=12.5)


class TestDecisionLog:
    def test_jsonl_round_trip_is_lossless(self):
        log = DecisionLog()
        log.append(_round(decisions=[_decision()]))
        log.append(ScaleEventRecord(time=30.0, service="cart",
                                    scale_kind="vertical", before=2,
                                    after=3, autoscaler="FirmAutoscaler"))
        log.append(DriftRecord(time=45.0, target="cart.threads"))
        text = log.to_jsonl()
        restored = DecisionLog.from_jsonl(text)
        assert restored.to_jsonl() == text
        assert [r.kind for r in restored] == \
            ["control-round", "scale-event", "drift"]
        assert restored.rounds()[0].decisions[0] == _decision()

    def test_applied_extracts_changes_in_order(self):
        log = DecisionLog()
        log.append(_round(time=15.0, decisions=[
            _decision(outcome="hold", reason="unchanged", after=5)]))
        log.append(_round(time=30.0, decisions=[_decision(after=8)]))
        log.append(_round(time=45.0, decisions=[
            _decision(before=8, after=12, reason="saturation-grow")]))
        applied = log.applied()
        assert [(t, d.after) for t, d in applied] == [(30.0, 8),
                                                      (45.0, 12)]

    def test_bounded_eviction(self):
        log = DecisionLog(max_records=4)
        for index in range(10):
            log.append(DriftRecord(time=float(index), target="t"))
        assert len(log) == 4
        assert log.total_recorded == 10
        assert [r.time for r in log.records()] == [6.0, 7.0, 8.0, 9.0]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown record kind"):
            record_from_dict({"kind": "mystery"})

    def test_write_and_read_file(self, tmp_path):
        log = DecisionLog()
        log.append(_round(decisions=[_decision()]))
        path = tmp_path / "nested" / "decisions.jsonl"
        assert log.write_jsonl(path) == 1
        restored = DecisionLog.read_jsonl(path)
        assert restored.to_jsonl() == log.to_jsonl()
        # Each line is standalone JSON.
        for line in path.read_text().strip().splitlines():
            json.loads(line)


class TestProfiling:
    def test_phase_profiler_aggregates(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("localize"):
                pass
        stats = profiler.phases["localize"]
        assert stats.count == 3
        assert stats.total >= 0.0
        assert stats.max >= stats.last >= 0.0
        assert "localize" in profiler.summary()

    def test_engine_profiler_counts_every_event(self):
        env = Environment()

        def ticker():
            for _ in range(50):
                yield env.timeout(1.0)

        env.process(ticker())
        profiler = EngineProfiler(env, sample_every=10)
        profiler.attach()
        env.run()
        profiler.detach()
        summary = profiler.summary()
        assert summary["events"] > 50
        assert summary["wall_seconds"] > 0.0
        assert summary["samples"] >= 1
        assert summary["queue_depth_max"] >= 0

    def test_detach_stops_counting(self):
        env = Environment()
        profiler = EngineProfiler(env)
        profiler.attach()
        profiler.detach()

        def ticker():
            yield env.timeout(1.0)

        env.process(ticker())
        env.run()
        assert profiler.events == 0

    def test_profilers_never_touch_simulated_time(self):
        # Two identical runs, one profiled, must produce the same
        # event stream (the fingerprint the replay checker hashes).
        def run(profiled):
            env = Environment()
            seen = []
            env.add_monitor(
                lambda when, eid, _e: seen.append((when, eid)))
            if profiled:
                profiler = EngineProfiler(env, sample_every=4)
                profiler.attach()

            def ticker():
                for _ in range(20):
                    yield env.timeout(0.5)

            env.process(ticker())
            env.run()
            return seen

        assert run(profiled=False) == run(profiled=True)


class TestObservabilityFacade:
    def test_null_is_falsy_and_inert(self):
        assert not NULL
        NULL.record(DriftRecord(time=1.0, target="t"))
        with NULL.phase("anything"):
            pass
        assert len(NULL.decisions) == 0
        assert NULL.profiler.phases == {}
        assert NULL.registry.snapshot() == {}

    def test_enabled_records_and_times(self):
        obs = Observability()
        assert obs
        obs.record(DriftRecord(time=1.0, target="t"))
        with obs.phase("adapt"):
            pass
        obs.registry.counter("controller.rounds").inc()
        assert len(obs.decisions) == 1
        assert obs.profiler.phases["adapt"].count == 1
        summary = obs.summary()
        assert summary["metrics"]["controller.rounds"]["value"] == 1.0
        assert summary["engine"] is None

    def test_watch_engine_lifecycle(self):
        env = Environment()
        obs = Observability()
        obs.watch_engine(env, sample_every=8)

        def ticker():
            for _ in range(10):
                yield env.timeout(1.0)

        env.process(ticker())
        env.run()
        obs.unwatch_engine()
        assert obs.engine is not None
        assert obs.engine.events > 0
        assert obs.summary()["engine"]["events"] > 0

    def test_disabled_watch_engine_is_noop(self):
        env = Environment()
        disabled = Observability(enabled=False)
        disabled.watch_engine(env)
        assert disabled.engine is None
        assert env.queue_depth == 0


class TestLogging:
    def teardown_method(self):
        quiet()

    def test_configure_streams_namespaced_records(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        logging.getLogger("repro.core.sora").info("round complete")
        assert "repro.core.sora: round complete" in stream.getvalue()

    def test_configure_is_idempotent(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging("info", stream=first)
        configure_logging("info", stream=second)
        logging.getLogger("repro.obs").info("hello")
        assert first.getvalue() == ""
        assert "hello" in second.getvalue()
        root = logging.getLogger("repro")
        stream_handlers = [h for h in root.handlers
                           if isinstance(h, logging.StreamHandler)]
        assert len(stream_handlers) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("loud")

    def test_quiet_by_default(self):
        # The library installs only a NullHandler: no output and no
        # "no handler" warnings without explicit configuration.
        quiet()
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler)
                   for h in root.handlers)


class TestReport:
    def _obs_with_history(self):
        obs = Observability()
        obs.record(_round(time=15.0, decisions=[
            _decision(outcome="hold", reason="no-estimate",
                      after=5, method=None, curve=None)]))
        obs.record(_round(time=30.0, decisions=[_decision()]))
        obs.record(ScaleEventRecord(time=40.0, service="cart",
                                    scale_kind="vertical", before=2,
                                    after=3, autoscaler="FirmAutoscaler"))
        obs.record(DriftRecord(time=50.0, target="cart.threads"))
        obs.registry.counter("controller.rounds").inc(2)
        obs.registry.histogram("controller.allocation").observe(8.0)
        with obs.phase("localize"):
            pass
        return obs

    def test_text_report_explains_decisions(self):
        report = render_text(self._obs_with_history(), title="unit run")
        assert "unit run" in report
        assert "cart.threads" in report
        assert "5 -> 8" in report
        assert "knee" in report
        assert "no-estimate" in report
        assert "FirmAutoscaler" in report
        assert "Drift" in report
        assert "localize" in report
        assert "controller.rounds" in report

    def test_text_report_on_empty_log(self):
        report = render_text(Observability(), title="empty")
        assert "0 records total" in report
        assert "no adaptations were applied" in report.lower()

    def test_html_report_is_selfcontained(self):
        html = render_html(self._obs_with_history(), title="unit run")
        assert html.startswith("<!DOCTYPE html>")
        assert "unit run" in html
        assert "cart.threads" in html
        assert "<svg" in html  # knee curve snapshot
        assert "http" not in html.split("</style>")[1]  # no external deps

    def test_html_escapes_content(self):
        obs = Observability()
        obs.record(_round(decisions=[
            _decision(target="a<b>&c", curve=None)]))
        html = render_html(obs, title="<script>alert(1)</script>")
        assert "<script>alert(1)" not in html
        assert "a<b>&c" not in html


class TestDecisionCurves:
    def test_curve_survives_round_trip_with_rounding(self):
        decision = _decision(
            curve=tuple((float(q), float(q) * 10.0)
                        for q in np.linspace(0, 8, 16)))
        restored = TargetDecision.from_dict(
            json.loads(json.dumps(decision.to_dict())))
        assert len(restored.curve) == 16
        assert restored.curve[3][1] == pytest.approx(
            decision.curve[3][1])
