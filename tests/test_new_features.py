"""Tests for heavy-tail distributions, workload mixes, and trace export."""

import json

import numpy as np
import pytest

from repro.app import Application, Compute, Microservice, Operation
from repro.sim import (
    Constant,
    Environment,
    Pareto,
    RandomStreams,
    Weibull,
)
from repro.tracing import export_traces, trace_to_jaeger, write_traces
from repro.workloads import ClosedLoopDriver, WorkloadTrace


class TestHeavyTailDistributions:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_pareto_mean(self):
        dist = Pareto(mean=0.05, alpha=2.8)
        samples = [dist.sample(self.rng) for _ in range(100000)]
        assert np.mean(samples) == pytest.approx(0.05, rel=0.05)

    def test_pareto_heavier_tail_than_weibull(self):
        pareto = Pareto(mean=1.0, alpha=2.2)
        weibull = Weibull(mean=1.0, k=2.0)
        p = np.array([pareto.sample(self.rng) for _ in range(50000)])
        w = np.array([weibull.sample(self.rng) for _ in range(50000)])
        assert np.percentile(p, 99.9) > 2 * np.percentile(w, 99.9)

    def test_pareto_validation(self):
        with pytest.raises(ValueError):
            Pareto(mean=0.0)
        with pytest.raises(ValueError):
            Pareto(mean=1.0, alpha=1.0)  # infinite mean

    def test_weibull_mean(self):
        for k in (0.7, 1.0, 2.0):
            dist = Weibull(mean=0.02, k=k)
            samples = [dist.sample(self.rng) for _ in range(50000)]
            assert np.mean(samples) == pytest.approx(0.02, rel=0.05)

    def test_weibull_validation(self):
        with pytest.raises(ValueError):
            Weibull(mean=0.0)
        with pytest.raises(ValueError):
            Weibull(mean=1.0, k=0.0)

    def test_samples_non_negative(self):
        for dist in (Pareto(1.0, 2.5), Weibull(1.0, 0.8)):
            assert all(dist.sample(self.rng) >= 0 for _ in range(1000))


def two_type_app(env, streams):
    app = Application(env)
    svc = Microservice(env, "svc", streams.stream("svc"), cores=4.0)
    svc.add_operation(Operation("fast", [Compute(Constant(0.001))]))
    svc.add_operation(Operation("slow", [Compute(Constant(0.002))]))
    app.add_service(svc)
    app.set_entrypoint("fast", "svc", "fast")
    app.set_entrypoint("slow", "svc", "slow")
    return app


class TestRequestMix:
    def test_mix_roughly_matches_weights(self):
        env = Environment()
        streams = RandomStreams(0)
        app = two_type_app(env, streams)
        trace = WorkloadTrace("flat", 30.0, 40, 40, lambda u: 1.0)
        driver = ClosedLoopDriver(env, app, {"fast": 3.0, "slow": 1.0},
                                  trace, streams.stream("drv"))
        driver.start()
        env.run()
        fast = app.latency["fast"].total
        slow = app.latency["slow"].total
        assert fast + slow == driver.submitted
        assert fast / (fast + slow) == pytest.approx(0.75, abs=0.05)

    def test_empty_mix_rejected(self):
        env = Environment()
        streams = RandomStreams(0)
        app = two_type_app(env, streams)
        trace = WorkloadTrace("flat", 5.0, 5, 5, lambda u: 1.0)
        with pytest.raises(ValueError):
            ClosedLoopDriver(env, app, {}, trace, streams.stream("d"))

    def test_negative_weight_rejected(self):
        env = Environment()
        streams = RandomStreams(0)
        app = two_type_app(env, streams)
        trace = WorkloadTrace("flat", 5.0, 5, 5, lambda u: 1.0)
        with pytest.raises(ValueError):
            ClosedLoopDriver(env, app, {"fast": -1.0}, trace,
                             streams.stream("d"))


class TestTraceExport:
    def finished_trace(self):
        env = Environment()
        streams = RandomStreams(0)
        from repro.app import Call
        app = Application(env)
        a = Microservice(env, "a", streams.stream("a"), cores=2.0,
                         thread_pool_size=4)
        b = Microservice(env, "b", streams.stream("b"), cores=2.0)
        b.add_operation(Operation("default", [Compute(Constant(0.002))]))
        a.add_operation(Operation("default", [
            Compute(Constant(0.001)), Call("b")]))
        app.add_service(a)
        app.add_service(b)
        app.set_entrypoint("go", "a", "default")
        request, proc = app.submit("go")
        env.run(until=proc)
        return request.root_span

    def test_jaeger_structure(self):
        root = self.finished_trace()
        document = trace_to_jaeger(root)
        assert len(document["spans"]) == 2
        assert set(document["processes"]) == {"a", "b"}
        child = [s for s in document["spans"]
                 if s["references"]][0]
        assert child["references"][0]["refType"] == "CHILD_OF"
        assert all(s["duration"] >= 0 for s in document["spans"])

    def test_export_is_valid_json(self):
        root = self.finished_trace()
        text = export_traces([root])
        parsed = json.loads(text)
        assert len(parsed["data"]) == 1

    def test_export_deterministic(self):
        root = self.finished_trace()
        assert export_traces([root]) == export_traces([root])

    def test_unfinished_rejected(self):
        from repro.tracing import Span
        with pytest.raises(ValueError):
            trace_to_jaeger(Span(1, "a", "default", 0.0))

    def test_write_traces(self, tmp_path):
        root = self.finished_trace()
        path = tmp_path / "traces.json"
        count = write_traces(str(path), [root])
        assert count == 1
        parsed = json.loads(path.read_text())
        assert parsed["data"][0]["spans"]

    def test_tags_carry_self_time_and_queue_wait(self):
        root = self.finished_trace()
        document = trace_to_jaeger(root)
        for span in document["spans"]:
            keys = {tag["key"] for tag in span["tags"]}
            assert {"queue_wait_us", "self_time_us",
                    "operation"} <= keys
