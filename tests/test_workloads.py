"""Tests for workload traces and drivers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app import Application, Compute, Microservice, Operation
from repro.sim import Constant, Environment, RandomStreams
from repro.workloads import (
    TRACE_NAMES,
    ClosedLoopDriver,
    OpenLoopDriver,
    WorkloadTrace,
    all_traces,
    big_spike,
    build_trace,
    dual_phase,
    steep_tri_phase,
)


def tiny_app(env, streams, demand=0.001):
    app = Application(env)
    svc = Microservice(env, "svc", streams.stream("svc"), cores=4.0)
    svc.add_operation(Operation("default", [Compute(Constant(demand))]))
    app.add_service(svc)
    app.set_entrypoint("go", "svc", "default")
    return app


class TestTraces:
    @pytest.mark.parametrize("name", TRACE_NAMES)
    def test_all_traces_within_bounds(self, name):
        trace = build_trace(name, duration=100.0, peak_users=200,
                            min_users=20)
        for t, users in trace.series(interval=1.0):
            assert 20 <= users <= 200, f"{name} at t={t}: {users}"

    @pytest.mark.parametrize("name", TRACE_NAMES)
    def test_traces_actually_vary(self, name):
        trace = build_trace(name, duration=100.0, peak_users=200,
                            min_users=20)
        users = [u for _t, u in trace.series(interval=1.0)]
        assert max(users) - min(users) > 50

    def test_big_spike_peaks_mid_trace(self):
        trace = big_spike(duration=100.0, peak_users=200, min_users=20)
        users = {t: u for t, u in trace.series(interval=1.0)}
        assert users[50.0] == max(users.values())
        assert users[50.0] > 2 * users[5.0]

    def test_dual_phase_two_levels(self):
        trace = dual_phase(duration=100.0, peak_users=200, min_users=20)
        early = trace.users(10.0)
        late = trace.users(90.0)
        assert late > 1.5 * early

    def test_steep_tri_phase_overload_middle(self):
        trace = steep_tri_phase(duration=100.0, peak_users=200,
                                min_users=20)
        assert trace.users(52.0) > trace.users(10.0)
        assert trace.users(52.0) > trace.users(95.0)

    def test_load_clamps_outside_extent(self):
        trace = big_spike(duration=100.0)
        assert trace.load(-5.0) == trace.load(0.0)
        assert trace.load(500.0) == trace.load(100.0)

    def test_unknown_trace_name(self):
        with pytest.raises(KeyError):
            build_trace("nope")

    def test_all_traces_returns_six(self):
        traces = all_traces(duration=50.0)
        assert [t.name for t in traces] == list(TRACE_NAMES)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            big_spike(duration=0.0)
        with pytest.raises(ValueError):
            big_spike(peak_users=0)
        with pytest.raises(ValueError):
            big_spike(peak_users=10, min_users=20)

    def test_series_interval_validation(self):
        with pytest.raises(ValueError):
            big_spike(duration=10.0).series(interval=0.0)

    @settings(max_examples=20, deadline=None)
    @given(
        name=st.sampled_from(TRACE_NAMES),
        t=st.floats(0.0, 100.0),
    )
    def test_users_deterministic(self, name, t):
        a = build_trace(name, duration=100.0).users(t)
        b = build_trace(name, duration=100.0).users(t)
        assert a == b


class TestClosedLoopDriver:
    def test_population_follows_trace(self):
        env = Environment()
        streams = RandomStreams(0)
        app = tiny_app(env, streams)
        trace = WorkloadTrace("step", 20.0, 50, 10,
                              lambda u: 0.0 if u < 0.5 else 1.0)
        driver = ClosedLoopDriver(env, app, "go", trace,
                                  streams.stream("drv"))
        populations = []

        def watcher(env):
            while env.now < 19.0:
                populations.append((env.now, driver.active_users))
                yield env.timeout(1.0)

        driver.start()
        env.process(watcher(env))
        env.run(until=25.0)
        early = [p for t, p in populations if 2 < t < 8]
        late = [p for t, p in populations if 12 < t < 18]
        assert max(early) <= 10
        assert min(late) >= 45

    def test_submits_requests(self):
        env = Environment()
        streams = RandomStreams(0)
        app = tiny_app(env, streams)
        trace = WorkloadTrace("flat", 10.0, 20, 20, lambda u: 1.0)
        driver = ClosedLoopDriver(env, app, "go", trace,
                                  streams.stream("drv"))
        driver.start()
        env.run(until=15.0)
        # ~20 users with 1s think and ~0ms service -> ~200 requests.
        assert driver.submitted > 100
        assert app.latency["go"].total == pytest.approx(
            driver.submitted, abs=20)

    def test_population_drains_after_trace_ends(self):
        env = Environment()
        streams = RandomStreams(0)
        app = tiny_app(env, streams)
        trace = WorkloadTrace("flat", 5.0, 10, 10, lambda u: 1.0)
        driver = ClosedLoopDriver(env, app, "go", trace,
                                  streams.stream("drv"))
        driver.start()
        env.run()
        assert driver.active_users == 0
        assert app.in_flight == 0

    def test_start_idempotent(self):
        env = Environment()
        streams = RandomStreams(0)
        app = tiny_app(env, streams)
        trace = WorkloadTrace("flat", 5.0, 5, 5, lambda u: 1.0)
        driver = ClosedLoopDriver(env, app, "go", trace,
                                  streams.stream("drv"))
        driver.start()
        driver.start()
        env.run(until=2.0)
        assert driver.active_users == 5

    def test_invalid_control_interval(self):
        env = Environment()
        streams = RandomStreams(0)
        app = tiny_app(env, streams)
        trace = WorkloadTrace("flat", 5.0, 5, 5, lambda u: 1.0)
        with pytest.raises(ValueError):
            ClosedLoopDriver(env, app, "go", trace,
                             streams.stream("drv"), control_interval=0.0)


class TestOpenLoopDriver:
    def test_constant_rate(self):
        env = Environment()
        streams = RandomStreams(0)
        app = tiny_app(env, streams)
        driver = OpenLoopDriver(env, app, "go", rate=100.0,
                                rng=streams.stream("arrivals"),
                                duration=20.0)
        driver.start()
        env.run()
        assert driver.submitted == pytest.approx(2000, rel=0.1)

    def test_time_varying_rate(self):
        env = Environment()
        streams = RandomStreams(0)
        app = tiny_app(env, streams)
        driver = OpenLoopDriver(
            env, app, "go",
            rate=lambda t: 200.0 if t < 10.0 else 20.0,
            rng=streams.stream("arrivals"), duration=20.0)
        driver.start()

        counts = {"early": 0, "late": 0}

        def watcher(env):
            yield env.timeout(10.0)
            counts["early"] = driver.submitted
            yield env.timeout(10.0)
            counts["late"] = driver.submitted - counts["early"]

        env.process(watcher(env))
        env.run()
        assert counts["early"] > 5 * counts["late"]

    def test_zero_rate_stalls_politely(self):
        env = Environment()
        streams = RandomStreams(0)
        app = tiny_app(env, streams)
        driver = OpenLoopDriver(env, app, "go", rate=0.0,
                                rng=streams.stream("arrivals"),
                                duration=5.0)
        driver.start()
        env.run()
        assert driver.submitted == 0

    def test_stops_at_duration(self):
        env = Environment()
        streams = RandomStreams(0)
        app = tiny_app(env, streams)
        driver = OpenLoopDriver(env, app, "go", rate=50.0,
                                rng=streams.stream("arrivals"),
                                duration=4.0)
        driver.start()
        env.run(until=100.0)
        assert env.peek() == float("inf")  # no events left: driver quit
