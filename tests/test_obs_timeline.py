"""Tests for the bounded telemetry timeline and log-projected annotations."""

import numpy as np
import pytest

from repro.obs import (
    AlertRecord,
    Annotation,
    ControlRoundRecord,
    DecisionLog,
    DriftRecord,
    FaultRecord,
    ScaleEventRecord,
    SeriesBuffer,
    TargetDecision,
    Timeline,
    annotations_from_log,
)
from repro.obs.timeline import NULL_SERIES, NULL_TIMELINE


class TestSeriesBuffer:
    def test_records_in_order(self):
        buf = SeriesBuffer("goodput", capacity=16)
        for t in range(10):
            buf.append(float(t), float(t) * 2.0)
        times, values = buf.data()
        assert list(times) == [float(t) for t in range(10)]
        assert list(values) == [float(t) * 2.0 for t in range(10)]
        assert buf.latest() == (9.0, 18.0)
        assert buf.stride == 1

    def test_memory_bound_under_unbounded_appends(self):
        capacity = 16
        buf = SeriesBuffer("s", capacity=capacity)
        for t in range(100_000):
            buf.append(float(t), 1.0)
        assert len(buf) <= capacity
        assert buf.total_appended == 100_000
        # Stride grew to cover the run; retained points still span it.
        assert buf.stride >= 100_000 // capacity
        times, _ = buf.data()
        assert times[0] < 100.0
        assert times[-1] > 50_000.0

    def test_decimation_keeps_whole_run_coverage(self):
        buf = SeriesBuffer("s", capacity=8)
        for t in range(64):
            buf.append(float(t), float(t))
        times, values = buf.data()
        # Times stay sorted and values stay consistent with times.
        assert list(times) == sorted(times)
        assert list(times) == list(values)

    def test_capacity_floor(self):
        with pytest.raises(ValueError, match=">= 8"):
            SeriesBuffer("s", capacity=4)

    def test_empty_latest_raises(self):
        with pytest.raises(ValueError, match="empty"):
            SeriesBuffer("s").latest()

    def test_round_trip_preserves_points_and_stride(self):
        buf = SeriesBuffer("latency.p99", capacity=8)
        for t in range(40):
            buf.append(float(t), 0.1 * t)
        buf.append(40.0, float("nan"))  # NaN survives as None in JSON
        clone = SeriesBuffer.from_dict(buf.to_dict())
        assert clone.name == buf.name
        assert clone.capacity == buf.capacity
        assert clone.stride == buf.stride
        assert clone.total_appended == buf.total_appended
        times, values = buf.data()
        ctimes, cvalues = clone.data()
        np.testing.assert_allclose(ctimes, times, atol=1e-6)
        np.testing.assert_allclose(cvalues, values, atol=1e-6)


class TestTimeline:
    def test_series_created_on_first_use(self):
        timeline = Timeline(capacity=8)
        timeline.record("goodput", 1.0, 100.0)
        timeline.record("goodput", 2.0, 90.0)
        timeline.record("cpu.cart", 1.0, 0.5)
        assert timeline.names() == ["cpu.cart", "goodput"]
        assert len(timeline) == 2
        assert timeline.series("goodput").latest() == (2.0, 90.0)

    def test_disabled_timeline_is_falsy_noop(self):
        assert not NULL_TIMELINE
        NULL_TIMELINE.record("x", 1.0, 2.0)
        assert len(NULL_TIMELINE) == 0
        series = NULL_TIMELINE.series("x")
        assert series is NULL_SERIES
        series.append(1.0, 2.0)
        assert len(series) == 0
        times, values = series.data()
        assert times.size == values.size == 0

    def test_enabled_timeline_is_truthy(self):
        assert Timeline()

    def test_round_trip(self):
        timeline = Timeline(capacity=8)
        for t in range(20):
            timeline.record("a", float(t), float(t))
            timeline.record("b", float(t), -float(t))
        clone = Timeline.from_dict(timeline.to_dict())
        assert clone.names() == timeline.names()
        for name in timeline.names():
            np.testing.assert_allclose(
                clone.series(name).data()[1],
                timeline.series(name).data()[1], atol=1e-6)


class TestAnnotations:
    def test_projects_every_record_kind_sorted(self):
        log = DecisionLog()
        log.append(ControlRoundRecord(
            time=30.0, controller="sora", trigger="periodic",
            decisions=(TargetDecision(
                target="cart.threads", trigger="periodic",
                outcome="applied", reason="knee", before=5, after=12),)))
        log.append(DriftRecord(time=10.0, target="cart.threads"))
        log.append(FaultRecord(time=20.0, fault="cpu-interference",
                               phase="inject", service="cart"))
        log.append(ScaleEventRecord(time=25.0, service="cart",
                                    scale_kind="out", before=2, after=3))
        log.append(AlertRecord(time=40.0, slo="cart-rt", rule="fast-burn",
                               phase="fire", severity="page",
                               burn_long=12.0, burn_short=50.0,
                               factor=8.0, budget_remaining=-1.0))
        annotations = annotations_from_log(log)
        assert [a.kind for a in annotations] == [
            "drift", "fault", "scale", "decision", "alert"]
        assert [a.time for a in annotations] == [
            10.0, 20.0, 25.0, 30.0, 40.0]
        decision = annotations[3]
        assert "cart.threads" in decision.label
        assert "5→12" in decision.label
        alert = annotations[4]
        assert "fast-burn fire" in alert.label

    def test_unapplied_decisions_are_not_annotated(self):
        log = DecisionLog()
        log.append(ControlRoundRecord(
            time=5.0, controller="sora", trigger="periodic",
            decisions=(TargetDecision(
                target="cart.threads", trigger="periodic",
                outcome="hold", reason="unchanged", before=5, after=5),)))
        assert annotations_from_log(log) == []

    def test_annotation_is_a_named_tuple(self):
        a = Annotation(1.0, "fault", "boom")
        assert a.time == 1.0 and a.kind == "fault" and a.label == "boom"
