"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "cart"
        assert args.controller == "sora"
        assert args.sla == 0.4

    def test_invalid_trace_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--trace", "nope"])

    def test_invalid_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "nope"])

    def test_validate_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["validate"])

    def test_validate_conformance_defaults(self):
        args = build_parser().parse_args(["validate", "conformance"])
        assert args.validate_command == "conformance"
        assert args.seed == 17
        assert args.replications == 2
        assert args.duration_scale == 1.0
        assert args.scenario is None

    def test_validate_replay_defaults(self):
        args = build_parser().parse_args(["validate", "replay"])
        assert args.validate_command == "replay"
        assert args.scenario == "tandem_balanced"
        assert args.perturb_at is None

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    def test_obs_report_defaults(self):
        args = build_parser().parse_args(["obs", "report"])
        assert args.obs_command == "report"
        assert args.controller == "sora"
        assert args.html is None
        assert args.jsonl is None
        assert args.log_level is None

    def test_serve_exclude_flags_replace_the_default(self):
        from repro.cli import _exclude_services

        parse = build_parser().parse_args
        # Absent: the front-end default applies.
        assert (_exclude_services(parse(["serve"]))
                == ("front-end",))
        # Given: flags replace (not extend) the default, so front-end
        # can be un-excluded from the CLI.
        assert (_exclude_services(parse(["serve", "--exclude", "cart",
                                         "--exclude", "db"]))
                == ("cart", "db"))
        # Empty string: exclude nothing at all.
        assert _exclude_services(parse(["serve", "--exclude", ""])) == ()


class TestCommands:
    def test_traces_command(self, capsys):
        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        assert "big_spike" in out
        assert "steep_tri_phase" in out

    def test_run_command_small(self, capsys):
        code = main(["run", "--scenario", "cart", "--trace", "big_spike",
                     "--controller", "none", "--autoscaler", "none",
                     "--duration", "15", "--peak-users", "60",
                     "--min-users", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "p99" in out

    def test_compare_command_small(self, capsys):
        code = main(["compare", "--scenario", "cart", "--trace",
                     "big_spike", "--controller", "sora",
                     "--autoscaler", "none", "--duration", "15",
                     "--peak-users", "60", "--min-users", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hardware-only" in out
        assert "sora" in out

    def test_obs_report_command_small(self, capsys, tmp_path):
        html = tmp_path / "report.html"
        jsonl = tmp_path / "decisions.jsonl"
        code = main(["obs", "report", "--scenario", "cart", "--trace",
                     "big_spike", "--controller", "sora",
                     "--autoscaler", "none", "--duration", "40",
                     "--peak-users", "60", "--min-users", "20",
                     "--html", str(html), "--jsonl", str(jsonl)])
        assert code == 0
        out = capsys.readouterr().out
        assert "control rounds" in out
        assert "Localization" in out
        assert "Metrics registry" in out
        assert html.read_text().startswith("<!DOCTYPE html>")
        assert jsonl.exists()

    def test_obs_dashboard_live_run_saves_and_renders(self, capsys,
                                                      tmp_path):
        html = tmp_path / "dash.html"
        saved = tmp_path / "run.json"
        code = main(["obs", "dashboard", "--scenario", "cart",
                     "--trace", "big_spike", "--controller", "sora",
                     "--autoscaler", "none", "--duration", "30",
                     "--peak-users", "60", "--min-users", "20",
                     "--html", str(html), "--save", str(saved)])
        assert code == 0
        content = html.read_text()
        assert content.startswith("<!DOCTYPE html>")
        assert "goodput" in content
        assert "http://" not in content and "https://" not in content
        assert saved.exists()

        # The persisted run renders without re-simulating, in both
        # text (sparkline) and OpenMetrics form.
        capsys.readouterr()
        assert main(["obs", "dashboard", "--input", str(saved)]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        exported = tmp_path / "metrics.om"
        assert main(["obs", "export", "--input", str(saved),
                     "--output", str(exported)]) == 0
        assert exported.read_text().rstrip().endswith("# EOF")

    def test_obs_export_requires_telemetry_free_input_gracefully(
            self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        code = main(["obs", "dashboard", "--input", str(missing)])
        assert code == 2
        assert "nope.json" in capsys.readouterr().err

    def test_obs_dashboard_defaults(self):
        args = build_parser().parse_args(["obs", "dashboard"])
        assert args.obs_command == "dashboard"
        assert args.slo_objective == 0.99
        assert args.html is None
        assert args.input is None

    def test_obs_export_defaults(self):
        args = build_parser().parse_args(["obs", "export"])
        assert args.obs_command == "export"
        assert args.format == "openmetrics"


class TestValidateCommands:
    def test_conformance_smoke(self, capsys):
        # Scaled-down plumbing run; tolerances only gate at scale 1.0,
        # so only check the report rendered and the exit code range.
        code = main(["validate", "conformance", "--scenario",
                     "tandem_balanced", "--duration-scale", "0.1",
                     "--replications", "1"])
        out = capsys.readouterr().out
        assert "tandem_balanced" in out
        assert "scenarios within tolerance" in out
        assert code in (0, 1)

    def test_conformance_unknown_scenario(self, capsys):
        code = main(["validate", "conformance", "--scenario", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'nope'" in err

    def test_conformance_bad_replications(self, capsys):
        code = main(["validate", "conformance", "--replications", "0"])
        assert code == 2
        assert "--replications" in capsys.readouterr().err

    def test_replay_bad_duration(self, capsys):
        code = main(["validate", "replay", "--duration", "0",
                     "--no-subprocess"])
        assert code == 2
        assert "--duration" in capsys.readouterr().err

    def test_replay_identical(self, capsys):
        code = main(["validate", "replay", "--scenario",
                     "tandem_balanced", "--duration", "8",
                     "--no-subprocess"])
        assert code == 0
        out = capsys.readouterr().out
        assert "identical" in out

    def test_replay_perturbed_detects(self, capsys):
        code = main(["validate", "replay", "--scenario",
                     "tandem_balanced", "--duration", "8",
                     "--perturb-at", "3.0", "--no-subprocess"])
        assert code == 0  # detection demonstrated = success
        out = capsys.readouterr().out
        assert "first divergence at event #" in out
