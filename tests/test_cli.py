"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "cart"
        assert args.controller == "sora"
        assert args.sla == 0.4

    def test_invalid_trace_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--trace", "nope"])

    def test_invalid_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "nope"])


class TestCommands:
    def test_traces_command(self, capsys):
        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        assert "big_spike" in out
        assert "steep_tri_phase" in out

    def test_run_command_small(self, capsys):
        code = main(["run", "--scenario", "cart", "--trace", "big_spike",
                     "--controller", "none", "--autoscaler", "none",
                     "--duration", "15", "--peak-users", "60",
                     "--min-users", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "p99" in out

    def test_compare_command_small(self, capsys):
        code = main(["compare", "--scenario", "cart", "--trace",
                     "big_spike", "--controller", "sora",
                     "--autoscaler", "none", "--duration", "15",
                     "--peak-users", "60", "--min-users", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hardware-only" in out
        assert "sora" in out
