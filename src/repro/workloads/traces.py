"""The six real-world bursty workload trace shapes (paper Table 2).

The paper drives its evaluation with six bursty traces from Gandhi et
al.'s AutoScale work (TOCS'12): *Large Variation*, *Quick Varying*,
*Slowly Varying*, *Big Spike*, *Dual Phase*, and *Steep Tri Phase*.
The originals are demand curves measured against production systems;
here each shape is re-created parametrically (normalized load in
``[0, 1]`` over a configurable duration, scaled to a user population),
preserving the qualitative burst structure each name describes.

All trace functions are deterministic; stochasticity enters through the
workload drivers (think times / Poisson arrivals).
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass

TRACE_NAMES = (
    "large_variation",
    "quick_varying",
    "slowly_varying",
    "big_spike",
    "dual_phase",
    "steep_tri_phase",
)


@dataclass(frozen=True)
class WorkloadTrace:
    """A time-varying user population.

    Attributes:
        name: trace identifier.
        duration: trace length in seconds.
        peak_users: population at normalized load 1.0.
        min_users: floor population (keeps the system warm).
    """

    name: str
    duration: float
    peak_users: int
    min_users: int
    _shape: _t.Callable[[float], float]

    def load(self, t: float) -> float:
        """Normalized load in [0, 1] at time ``t`` (clamped to extent)."""
        clamped = min(max(t, 0.0), self.duration)
        return min(1.0, max(0.0, self._shape(clamped / self.duration)))

    def users(self, t: float) -> int:
        """Concurrent user population at time ``t``."""
        span = self.peak_users - self.min_users
        return self.min_users + int(round(self.load(t) * span))

    def series(self, interval: float = 1.0) -> list[tuple[float, int]]:
        """``(time, users)`` samples across the whole trace."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        steps = int(self.duration / interval) + 1
        return [(i * interval, self.users(i * interval))
                for i in range(steps)]


def _check(duration: float, peak_users: int, min_users: int) -> None:
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if peak_users < 1:
        raise ValueError(f"peak_users must be >= 1, got {peak_users}")
    if not 0 <= min_users <= peak_users:
        raise ValueError(
            f"need 0 <= min_users <= peak_users, got {min_users}")


def large_variation(duration: float = 720.0, peak_users: int = 350,
                    min_users: int = 60) -> WorkloadTrace:
    """Repeated large swings: ±60% of peak on a ~100 s period with an
    irregular secondary oscillation."""

    def shape(u: float) -> float:
        main = 0.55 + 0.4 * math.sin(2 * math.pi * 7.0 * u)
        ripple = 0.12 * math.sin(2 * math.pi * 17.0 * u + 1.0)
        return main + ripple

    _check(duration, peak_users, min_users)
    return WorkloadTrace("large_variation", duration, peak_users,
                         min_users, shape)


def quick_varying(duration: float = 720.0, peak_users: int = 350,
                  min_users: int = 60) -> WorkloadTrace:
    """Fast oscillation: moderate amplitude on a ~30 s period."""

    def shape(u: float) -> float:
        return 0.6 + 0.35 * math.sin(2 * math.pi * 24.0 * u)

    _check(duration, peak_users, min_users)
    return WorkloadTrace("quick_varying", duration, peak_users,
                         min_users, shape)


def slowly_varying(duration: float = 720.0, peak_users: int = 350,
                   min_users: int = 60) -> WorkloadTrace:
    """One slow rise-and-fall across the whole trace."""

    def shape(u: float) -> float:
        return 0.25 + 0.75 * math.sin(math.pi * u) ** 2

    _check(duration, peak_users, min_users)
    return WorkloadTrace("slowly_varying", duration, peak_users,
                         min_users, shape)


def big_spike(duration: float = 720.0, peak_users: int = 350,
              min_users: int = 60) -> WorkloadTrace:
    """A flat baseline with one short, violent spike mid-trace."""

    def shape(u: float) -> float:
        baseline = 0.35 + 0.05 * math.sin(2 * math.pi * 5.0 * u)
        spike = math.exp(-((u - 0.5) ** 2) / (2 * 0.035 ** 2))
        return baseline + (1.0 - baseline) * spike

    _check(duration, peak_users, min_users)
    return WorkloadTrace("big_spike", duration, peak_users,
                         min_users, shape)


def dual_phase(duration: float = 720.0, peak_users: int = 350,
               min_users: int = 60) -> WorkloadTrace:
    """Two plateaus: a low morning phase then a high afternoon phase."""

    def shape(u: float) -> float:
        low, high = 0.35, 0.95
        # Smooth step between phases around u = 0.45.
        blend = 1.0 / (1.0 + math.exp(-(u - 0.45) * 40.0))
        wobble = 0.05 * math.sin(2 * math.pi * 10.0 * u)
        return low + (high - low) * blend + wobble

    _check(duration, peak_users, min_users)
    return WorkloadTrace("dual_phase", duration, peak_users,
                         min_users, shape)


def steep_tri_phase(duration: float = 720.0, peak_users: int = 350,
                    min_users: int = 60) -> WorkloadTrace:
    """Three phases separated by steep ramps: low, overload, medium —
    the trace used in the paper's Fig. 10 walkthrough."""

    def shape(u: float) -> float:
        wobble = 0.04 * math.sin(2 * math.pi * 12.0 * u)
        if u < 0.30:
            base = 0.35
        elif u < 0.42:
            base = 0.35 + (1.0 - 0.35) * (u - 0.30) / 0.12
        elif u < 0.62:
            base = 1.0
        elif u < 0.72:
            base = 1.0 - (1.0 - 0.55) * (u - 0.62) / 0.10
        else:
            base = 0.55
        return base + wobble

    _check(duration, peak_users, min_users)
    return WorkloadTrace("steep_tri_phase", duration, peak_users,
                         min_users, shape)


def diurnal(duration: float = 86400.0, peak_users: int = 1_000_000,
            min_users: int = 50_000) -> WorkloadTrace:
    """A 24-hour day/night cycle: a smooth cosine trough in the small
    hours rising to an evening peak, with a small lunchtime shoulder.

    This is not one of the paper's six traces — it is the fleet-scale
    workload for the hybrid fluid/DES mode (see ``repro.sim.fluid``),
    where a million-user day is swept analytically in seconds. The
    defaults (24 h, 1M peak) match the scale-sweep benchmark.
    """

    def shape(u: float) -> float:
        base = 0.5 * (1.0 - math.cos(2 * math.pi * (u - 0.17)))
        shoulder = 0.08 * math.exp(-((u - 0.52) ** 2) / (2 * 0.04 ** 2))
        return min(1.0, base + shoulder)

    _check(duration, peak_users, min_users)
    return WorkloadTrace("diurnal", duration, peak_users, min_users,
                         shape)


_BUILDERS: dict[str, _t.Callable[..., WorkloadTrace]] = {
    "large_variation": large_variation,
    "quick_varying": quick_varying,
    "slowly_varying": slowly_varying,
    "big_spike": big_spike,
    "dual_phase": dual_phase,
    "steep_tri_phase": steep_tri_phase,
    "diurnal": diurnal,
}


def build_trace(name: str, duration: float = 720.0, peak_users: int = 350,
                min_users: int = 60) -> WorkloadTrace:
    """Build a trace by name (the six paper traces, plus ``diurnal``)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown trace {name!r} (have: {', '.join(_BUILDERS)})"
        ) from None
    return builder(duration=duration, peak_users=peak_users,
                   min_users=min_users)


def all_traces(duration: float = 720.0, peak_users: int = 350,
               min_users: int = 60) -> list[WorkloadTrace]:
    """All six traces with shared parameters, in the paper's order."""
    return [build_trace(name, duration, peak_users, min_users)
            for name in TRACE_NAMES]
