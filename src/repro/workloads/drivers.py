"""Workload drivers: closed-loop user populations and open-loop arrivals.

The paper drives its benchmarks with the RUBBoS generator: a closed
loop of simulated users that think, issue an HTTP request, and wait for
the response, with the population following a bursty trace. The
:class:`ClosedLoopDriver` reproduces that; :class:`OpenLoopDriver`
offers rate-driven Poisson arrivals for controlled model-validation
experiments.
"""

from __future__ import annotations

import typing as _t
from heapq import heappush

import numpy as np

from repro.app.application import Application
from repro.sim.distributions import Distribution, Exponential
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.sim.process import Process
from repro.workloads.traces import WorkloadTrace


class _UserFlag:
    """Cooperative stop flag handed to each closed-loop user."""

    __slots__ = ("stopped",)

    def __init__(self) -> None:
        self.stopped = False


class ClosedLoopDriver:
    """A trace-following population of think-submit-wait users.

    Args:
        env: simulation environment.
        app: the application under test.
        request_type: entrypoint to exercise — either a single type
            name, or a ``{type: weight}`` mix from which each user draws
            independently per request (the way RUBBoS interleaves page
            types).
        trace: user-population trace to follow.
        rng: random generator (think times and mix draws).
        think_time: per-user think-time distribution (default Exp(1 s),
            the classic RUBBoS setting).
        control_interval: how often the population is reconciled with
            the trace.
        ramp_up: seconds over which the initial population is phased in
            (avoids an artificial t=0 stampede of simultaneous users
            into a cold system; 0 disables).
    """

    def __init__(self, env: Environment, app: Application,
                 request_type: str | dict[str, float],
                 trace: WorkloadTrace,
                 rng: np.random.Generator,
                 think_time: Distribution | None = None,
                 control_interval: float = 1.0,
                 ramp_up: float = 0.0) -> None:
        if control_interval <= 0:
            raise ValueError(
                f"control_interval must be positive, got {control_interval}")
        if ramp_up < 0:
            raise ValueError(f"negative ramp_up {ramp_up}")
        self.env = env
        self.app = app
        self.request_type = request_type
        self._mix_types: list[str] | None = None
        self._mix_weights: np.ndarray | None = None
        if isinstance(request_type, dict):
            if not request_type:
                raise ValueError("empty request mix")
            weights = np.asarray(list(request_type.values()),
                                 dtype=float)
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError(
                    f"invalid mix weights {list(request_type.values())}")
            self._mix_types = list(request_type)
            self._mix_weights = weights / weights.sum()
        self.trace = trace
        self.think_time = think_time or Exponential(mean=1.0)
        self.control_interval = control_interval
        self.ramp_up = ramp_up
        self._rng = rng
        self._flags: list[_UserFlag] = []
        self._started = False
        self.submitted = 0

    @property
    def active_users(self) -> int:
        """Current population size."""
        return len(self._flags)

    def start(self) -> None:
        """Launch the population controller (idempotent)."""
        if self._started:
            return
        self._started = True
        self.env.process(self._control(), name=f"driver:{self.trace.name}")

    def _control(self):
        start_time = self.env.now
        while self.env.now - start_time <= self.trace.duration:
            elapsed = self.env.now - start_time
            target = self.trace.users(elapsed)
            if self.ramp_up > 0 and elapsed < self.ramp_up:
                target = int(round(target * (elapsed + 1.0) /
                                   (self.ramp_up + 1.0)))
            deficit = target - len(self._flags)
            if deficit > 0:
                # A population step-up is a homogeneous burst: all the
                # user bootstraps ride one scheduler entry instead of
                # one each (byte-identical stream, same serials).
                bootstraps: list[Event] = []
                for _ in range(deficit):
                    flag = _UserFlag()
                    self._flags.append(flag)
                    Process(self.env, self._user(flag), name="user",
                            defer_to=bootstraps)
                self.env.schedule_batch(bootstraps)
            while len(self._flags) > target:
                self._flags.pop().stopped = True
            yield self.env.timeout(self.control_interval)
        for flag in self._flags:
            flag.stopped = True
        self._flags.clear()

    def _pick_type(self) -> str:
        if self._mix_types is None:
            return _t.cast(str, self.request_type)
        index = int(self._rng.choice(len(self._mix_types),
                                     p=self._mix_weights))
        return self._mix_types[index]

    def _user(self, flag: _UserFlag):
        while not flag.stopped:
            yield self.env.timeout(self.think_time.sample(self._rng))
            if flag.stopped:
                return
            self.submitted += 1
            _request, process = self.app.submit(self._pick_type())
            yield process


class OpenLoopDriver:
    """Poisson arrivals at a (possibly time-varying) rate.

    With a constant rate the driver runs in *batch* mode: inter-arrival
    gaps are pre-sampled in numpy chunks (bit-identical to the
    equivalent one-at-a-time draws) and arrivals fire from a single
    reusable callback event instead of a generator resuming through a
    fresh ``Timeout`` per arrival. Arrival times, submission order and
    the random stream are exactly those of the generator path; only the
    kernel's per-arrival overhead changes. Time-varying (callable)
    rates keep the generator path, since each gap depends on the rate
    at the previous arrival.

    Args:
        env: simulation environment.
        app: the application under test.
        request_type: entrypoint to exercise.
        rate: requests/second — a constant or a callable of absolute
            simulation time.
        rng: random generator (inter-arrival draws).
        duration: stop submitting after this many seconds (None = run
            until the environment stops).
        batch: chunk size for pre-sampled gaps in batch mode; 1
            disables batching entirely.
    """

    def __init__(self, env: Environment, app: Application,
                 request_type: str,
                 rate: float | _t.Callable[[float], float],
                 rng: np.random.Generator,
                 duration: float | None = None,
                 batch: int = 256) -> None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.env = env
        self.app = app
        self.request_type = request_type
        self._rate = rate
        self._rng = rng
        self.duration = duration
        self.batch = int(batch)
        self._started = False
        self.submitted = 0
        self._gaps: np.ndarray | None = None
        self._gap_i = 0
        self._pump_start = 0.0

    def current_rate(self) -> float:
        """Arrival rate at the current simulation time."""
        if callable(self._rate):
            return float(self._rate(self.env.now))
        return float(self._rate)

    def start(self) -> None:
        """Launch the arrival process (idempotent)."""
        if self._started:
            return
        self._started = True
        if self.batch > 1 and not callable(self._rate) and \
                float(self._rate) > 0:
            self._pump_start = self.env.now
            if self.duration is not None and self.duration <= 0:
                return
            self._arm()
        else:
            self.env.process(self._arrivals(), name="open-loop-driver")

    # ------------------------------------------------------------------
    # Batch mode: chunk-sampled gaps, one reusable pump event
    # ------------------------------------------------------------------
    def _next_gap(self) -> float:
        gaps = self._gaps
        i = self._gap_i
        if gaps is None or i >= len(gaps):
            # One chunked draw consumes the random stream exactly like
            # ``len(gaps)`` scalar draws (numpy Generator guarantee,
            # relied on since the batched demand-sampling work).
            gaps = self._gaps = self._rng.exponential(
                1.0 / float(self._rate), self.batch)
            i = 0
        self._gap_i = i + 1
        return float(gaps[i])

    def _arm(self) -> None:
        env = self.env
        event = Event(env)
        event.callbacks.append(self._pump)
        event._ok = True
        event._value = None
        heappush(env._heap, (env._now + self._next_gap(), 1,
                             next(env._eid), event))

    def _pump(self, event: Event) -> None:
        env = self.env
        now = env._now
        if self.duration is not None and \
                now - self._pump_start >= self.duration:
            return
        self.submitted += 1
        self.app.submit(self.request_type)
        # Re-arm by reusing the fired event (its callback list was
        # detached by the engine, so the object is free again).
        event.callbacks = [self._pump]
        heappush(env._heap, (now + self._next_gap(), 1,
                             next(env._eid), event))

    def _arrivals(self):
        start_time = self.env.now
        while True:
            if self.duration is not None and \
                    self.env.now - start_time >= self.duration:
                return
            rate = self.current_rate()
            if rate <= 0:
                yield self.env.timeout(0.1)
                continue
            yield self.env.timeout(self._rng.exponential(1.0 / rate))
            if self.duration is not None and \
                    self.env.now - start_time >= self.duration:
                return
            self.submitted += 1
            self.app.submit(self.request_type)
