"""Workload traces and drivers (RUBBoS-style closed loop, Poisson open loop)."""

from repro.workloads.drivers import ClosedLoopDriver, OpenLoopDriver
from repro.workloads.traces import (
    TRACE_NAMES,
    WorkloadTrace,
    all_traces,
    big_spike,
    build_trace,
    diurnal,
    dual_phase,
    large_variation,
    quick_varying,
    slowly_varying,
    steep_tri_phase,
)

__all__ = [
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "TRACE_NAMES",
    "WorkloadTrace",
    "all_traces",
    "big_spike",
    "build_trace",
    "diurnal",
    "dual_phase",
    "large_variation",
    "quick_varying",
    "slowly_varying",
    "steep_tri_phase",
]
