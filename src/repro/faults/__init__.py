"""``repro.faults``: deterministic fault injection and resilience.

Two halves, both deterministic under a fixed seed:

- **Injection** (:mod:`repro.faults.plan`,
  :mod:`repro.faults.injectors`): a JSON-loadable
  :class:`FaultPlan` of crash/restart, CPU-interference, edge-latency,
  edge-failure, and replica-blackout specs, executed by a
  :class:`FaultInjector` that perturbs the application through its
  public scaling/demand APIs and records every transition in the
  observability decision log.

- **Resilience** (:mod:`repro.faults.resilience`): per-edge
  :class:`CallPolicy` (timeout, retry with backoff + jitter, circuit
  breaker, load shedding / graceful degradation) attached via
  :meth:`repro.app.service.Microservice.set_call_policy`, plus the
  :class:`CallError` hierarchy the application layer uses to account
  failed requests.

With no plan and no policies attached, every hook in the hot path is a
single attribute check — simulated outcomes stay byte-identical to a
build without this package (replay fingerprints unchanged).
"""

from repro.faults.injectors import EdgeDisruption, FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    BlackoutFault,
    CrashFault,
    EdgeFailureFault,
    EdgeLatencyFault,
    FaultPlan,
    FaultSpec,
    InterferenceFault,
    spec_from_dict,
)
from repro.faults.resilience import (
    BoundPolicy,
    CallError,
    CallPolicy,
    CallTimeout,
    CircuitBreaker,
    CircuitBreakerPolicy,
    CircuitOpenError,
    InjectedFailure,
    LoadShedError,
    RetryPolicy,
    ServiceUnavailable,
)

__all__ = [
    "FAULT_KINDS",
    "BlackoutFault",
    "BoundPolicy",
    "CallError",
    "CallPolicy",
    "CallTimeout",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "CircuitOpenError",
    "CrashFault",
    "EdgeDisruption",
    "EdgeFailureFault",
    "EdgeLatencyFault",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFailure",
    "InterferenceFault",
    "LoadShedError",
    "RetryPolicy",
    "ServiceUnavailable",
    "spec_from_dict",
]
