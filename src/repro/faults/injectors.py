"""Deterministic fault-injection processes driven by a fault plan.

A :class:`FaultInjector` turns every spec in a
:class:`~repro.faults.plan.FaultPlan` into one simulation process that
fires at the spec's schedule, mutates the application through the same
public APIs operators use (``demand_scale``, ``set_cores``,
``scale_replicas``, crash/restore), and emits a
:class:`~repro.obs.events.FaultRecord` into the run's decision log so
the explainability report shows injected causes next to the
controller's reactions.

Determinism: injector schedules are fixed by the plan; the only random
draws (edge latency jitter, edge failure coin flips) come from
dedicated ``fault.<kind>.<index>`` streams, so a plan never perturbs
the draws of any other subsystem and fault runs replay bit-identically
for a fixed seed. Starting an injector with an *empty* plan spawns no
processes and leaves the event stream byte-identical to a run without
the injector.
"""

from __future__ import annotations

import typing as _t

import repro.obs as obs_mod
from repro.faults.plan import (
    BlackoutFault,
    CrashFault,
    EdgeFailureFault,
    EdgeLatencyFault,
    FaultPlan,
    InterferenceFault,
)
from repro.obs.events import FaultRecord

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    import numpy as np

    from repro.app.application import Application
    from repro.sim.engine import Environment
    from repro.sim.rng import RandomStreams


class EdgeDisruption:
    """Active latency/failure state for one ``caller -> callee`` edge.

    Installed on the caller service while the fault window is open;
    the caller's guarded invoke path samples it once per attempt. All
    draws come from the disruption's own stream.
    """

    __slots__ = ("delay", "jitter", "probability", "rng")

    def __init__(self, *, delay: float = 0.0, jitter: float = 0.0,
                 probability: float = 0.0,
                 rng: "np.random.Generator | None" = None) -> None:
        self.delay = delay
        self.jitter = jitter
        self.probability = probability
        self.rng = rng

    def sample_latency(self) -> float:
        """Extra seconds this attempt pays before reaching the callee."""
        if self.delay <= 0.0:
            return 0.0
        if self.jitter > 0.0 and self.rng is not None:
            return self.delay * (1.0 - self.jitter
                                 + 2.0 * self.jitter * self.rng.random())
        return self.delay

    def sample_failure(self) -> bool:
        """Whether this attempt fails before reaching the callee."""
        if self.probability <= 0.0 or self.rng is None:
            return False
        return float(self.rng.random()) < self.probability


class FaultInjector:
    """Runs a :class:`FaultPlan` against one application.

    Args:
        env: simulation environment.
        app: the application under test.
        plan: the faults to inject.
        streams: the run's named random streams; injectors draw only
            from fresh ``fault.*`` streams.
        obs: observability scope receiving one
            :class:`~repro.obs.events.FaultRecord` per inject/recover
            transition (defaults to the disabled ``NULL``).

    The injector also keeps its own ``log`` of emitted records, so
    benches can assert on fault timing without enabling observability.
    """

    def __init__(self, env: "Environment", app: "Application",
                 plan: FaultPlan, streams: "RandomStreams",
                 obs: obs_mod.Observability | None = None) -> None:
        self.env = env
        self.app = app
        self.plan = plan
        self.streams = streams
        self.obs = obs if obs is not None else obs_mod.NULL
        self.log: list[FaultRecord] = []
        self._started = False

    def start(self) -> None:
        """Validate the plan and launch one process per fault
        (idempotent; a no-op for an empty plan)."""
        if self._started:
            return
        self._started = True
        self.plan.validate(self.app)
        for index, spec in enumerate(self.plan.faults):
            if isinstance(spec, CrashFault):
                if spec.mode == "drop":
                    # Arm in-flight tracking before the run starts so
                    # the crash can find the processes to drop.
                    self.app.service(spec.service).track_inflight()
                runner = self._run_crash(spec)
            elif isinstance(spec, InterferenceFault):
                runner = self._run_interference(spec)
            elif isinstance(spec, (EdgeLatencyFault, EdgeFailureFault)):
                runner = self._run_edge(spec, index)
            elif isinstance(spec, BlackoutFault):
                runner = self._run_blackout(spec)
            else:  # pragma: no cover - plan validates spec types
                raise TypeError(f"unknown fault spec {spec!r}")
            self.env.process(runner, name=f"fault:{spec.kind}:{index}")

    # ------------------------------------------------------------------
    # Runners (one simulation process per fault spec)
    # ------------------------------------------------------------------
    def _emit(self, fault: str, phase: str, *, service: str | None = None,
              edge: str | None = None,
              detail: dict | None = None) -> None:
        record = FaultRecord(time=self.env.now, fault=fault, phase=phase,
                             service=service, edge=edge,
                             detail=detail or {})
        self.log.append(record)
        if self.obs:
            self.obs.record(record)

    def _run_crash(self, spec: CrashFault):
        service = self.app.service(spec.service)
        yield self.env.timeout(spec.at)
        dropped = service.crash(drop_inflight=(spec.mode == "drop"))
        self._emit("crash", "inject", service=spec.service,
                   detail={"mode": spec.mode, "dropped": dropped})
        if spec.restart_after is not None:
            yield self.env.timeout(spec.restart_after)
            service.restore()
            self._emit("crash", "recover", service=spec.service)

    def _run_interference(self, spec: InterferenceFault):
        service = self.app.service(spec.service)
        yield self.env.timeout(spec.at)
        service.demand_scale *= spec.demand_factor
        if spec.core_steal > 0.0:
            service.set_cores(service.cores_per_replica
                              * (1.0 - spec.core_steal))
        self._emit("interference", "inject", service=spec.service,
                   detail={"demand_factor": spec.demand_factor,
                           "core_steal": spec.core_steal})
        if spec.duration is not None:
            yield self.env.timeout(spec.duration)
            # Multiplicative restore composes with autoscaler actions
            # taken while the fault was active.
            service.demand_scale /= spec.demand_factor
            if spec.core_steal > 0.0:
                service.set_cores(service.cores_per_replica
                                  / (1.0 - spec.core_steal))
            self._emit("interference", "recover", service=spec.service)

    def _run_edge(self, spec: EdgeLatencyFault | EdgeFailureFault,
                  index: int):
        caller = self.app.service(spec.caller)
        rng = self.streams.stream(f"fault.{spec.kind}.{index}")
        if isinstance(spec, EdgeLatencyFault):
            disruption = EdgeDisruption(delay=spec.delay,
                                        jitter=spec.jitter, rng=rng)
            detail: dict = {"delay": spec.delay, "jitter": spec.jitter}
        else:
            disruption = EdgeDisruption(probability=spec.probability,
                                        rng=rng)
            detail = {"probability": spec.probability}
        edge = f"{spec.caller}->{spec.callee}"
        yield self.env.timeout(spec.at)
        caller.add_edge_disruption(spec.callee, disruption)
        self._emit(spec.kind, "inject", edge=edge, detail=detail)
        if spec.duration is not None:
            yield self.env.timeout(spec.duration)
            caller.remove_edge_disruption(spec.callee, disruption)
            self._emit(spec.kind, "recover", edge=edge)

    def _run_blackout(self, spec: BlackoutFault):
        service = self.app.service(spec.service)
        yield self.env.timeout(spec.at)
        down = min(spec.replicas, service.replica_count - 1)
        if down > 0:
            service.scale_replicas(service.replica_count - down)
        self._emit("blackout", "inject", service=spec.service,
                   detail={"replicas_down": down})
        yield self.env.timeout(spec.duration)
        if down > 0:
            service.scale_replicas(service.replica_count + down)
        self._emit("blackout", "recover", service=spec.service,
                   detail={"replicas_restored": down})
