"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a small, JSON-serializable description of the
faults to inject into one run: service crashes (with or without a
restart), CPU interference / noisy neighbors, latency jitter or
failures on specific call edges, and replica blackouts. Scenarios and
the CLI (``repro faults run --plan plan.json``) load plans from a dict
or JSON document; the :class:`~repro.faults.injectors.FaultInjector`
turns each spec into a deterministic simulation process.

Determinism contract: a spec contains *only* schedule and magnitude —
every random draw an injector makes comes from a dedicated named
stream (``fault.<kind>.<index>``), so adding or removing faults never
perturbs the draws of workload, demand, or resilience streams.
"""

from __future__ import annotations

import json
import pathlib
import typing as _t
from dataclasses import dataclass, fields

if _t.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.app.application import Application


def _check_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def _check_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class CrashFault:
    """A whole-service crash at ``at`` seconds.

    While down, every invocation of the service fails immediately with
    :class:`~repro.faults.resilience.ServiceUnavailable` (callers with
    a retry policy see it as a retryable error). ``mode`` controls the
    fate of requests already inside the service:

    - ``"drain"``: in-flight requests finish normally (a graceful
      SIGTERM-style stop);
    - ``"drop"``: in-flight requests are interrupted and accounted as
      failed (a kill -9 / node loss).

    ``restart_after`` seconds later the service comes back; ``None``
    means it never restarts.
    """

    kind: _t.ClassVar[str] = "crash"

    service: str
    at: float
    mode: str = "drain"
    restart_after: float | None = None

    def __post_init__(self) -> None:
        _check_non_negative("at", self.at)
        if self.mode not in ("drain", "drop"):
            raise ValueError(
                f"crash mode must be 'drain' or 'drop', got {self.mode!r}")
        if self.restart_after is not None:
            _check_positive("restart_after", self.restart_after)


@dataclass(frozen=True)
class InterferenceFault:
    """CPU interference / noisy neighbor on one service.

    Models a co-located tenant stealing capacity: every sampled CPU
    demand is multiplied by ``demand_factor`` (work takes longer per
    unit of progress) and/or a ``core_steal`` fraction of the current
    core limit disappears. Both are applied *multiplicatively* and
    undone by division when the fault clears, so they compose with any
    autoscaler decisions taken while the fault is active.

    ``duration=None`` makes the interference persistent — the regime
    shift the paper's §2.3 argues moves the soft-resource knee.
    """

    kind: _t.ClassVar[str] = "interference"

    service: str
    at: float
    duration: float | None = None
    demand_factor: float = 1.0
    core_steal: float = 0.0

    def __post_init__(self) -> None:
        _check_non_negative("at", self.at)
        if self.duration is not None:
            _check_positive("duration", self.duration)
        _check_positive("demand_factor", self.demand_factor)
        if not 0.0 <= self.core_steal < 1.0:
            raise ValueError(
                f"core_steal must be in [0, 1), got {self.core_steal}")


@dataclass(frozen=True)
class EdgeLatencyFault:
    """Extra latency on every call over one ``caller -> callee`` edge.

    Each attempt over the edge pays ``delay`` additional seconds,
    jittered uniformly in ``[delay*(1-jitter), delay*(1+jitter)]``
    from the fault's own named stream. ``duration=None`` keeps the
    degradation until the end of the run.
    """

    kind: _t.ClassVar[str] = "edge-latency"

    caller: str
    callee: str
    at: float
    duration: float | None = None
    delay: float = 0.05
    jitter: float = 0.0

    def __post_init__(self) -> None:
        _check_non_negative("at", self.at)
        if self.duration is not None:
            _check_positive("duration", self.duration)
        _check_positive("delay", self.delay)
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")


@dataclass(frozen=True)
class EdgeFailureFault:
    """Probabilistic connection failures on one call edge.

    Each attempt over the edge fails (instantaneously, before reaching
    the callee) with ``probability``, drawn from the fault's own named
    stream. Callers with a retry policy absorb low probabilities;
    callers without one surface failed requests.
    """

    kind: _t.ClassVar[str] = "edge-failure"

    caller: str
    callee: str
    at: float
    duration: float | None = None
    probability: float = 0.1

    def __post_init__(self) -> None:
        _check_non_negative("at", self.at)
        if self.duration is not None:
            _check_positive("duration", self.duration)
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}")


@dataclass(frozen=True)
class BlackoutFault:
    """Temporary loss of ``replicas`` replicas of one service.

    The lost replicas drain (finish their in-flight work but accept no
    new requests) and the survivors absorb the load; after
    ``duration`` seconds the same number of fresh replicas come back.
    At least one replica always survives.
    """

    kind: _t.ClassVar[str] = "blackout"

    service: str
    at: float
    duration: float
    replicas: int = 1

    def __post_init__(self) -> None:
        _check_non_negative("at", self.at)
        _check_positive("duration", self.duration)
        if self.replicas < 1:
            raise ValueError(
                f"replicas must be >= 1, got {self.replicas}")


FaultSpec = _t.Union[CrashFault, InterferenceFault, EdgeLatencyFault,
                     EdgeFailureFault, BlackoutFault]

FAULT_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (CrashFault, InterferenceFault, EdgeLatencyFault,
                EdgeFailureFault, BlackoutFault)
}


def _spec_to_dict(spec: FaultSpec) -> dict:
    payload: dict[str, _t.Any] = {"kind": spec.kind}
    for field in fields(spec):
        value = getattr(spec, field.name)
        if value is not None:
            payload[field.name] = value
    return payload


def spec_from_dict(payload: dict) -> FaultSpec:
    """Rebuild one fault spec from its ``to_dict`` payload."""
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = FAULT_KINDS.get(_t.cast(str, kind))
    if cls is None:
        raise ValueError(
            f"unknown fault kind {kind!r} (have: {sorted(FAULT_KINDS)})")
    allowed = {field.name for field in fields(cls)}
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(
            f"unknown field(s) {sorted(unknown)} for fault kind {kind!r}")
    return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of fault specs.

    Truthiness follows content: an empty plan is falsy and injecting
    it is a provable no-op (see ``test_empty_plan_is_byte_identical``).
    """

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> _t.Iterator[FaultSpec]:
        return iter(self.faults)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready payload (``{"faults": [...]}``)."""
        return {"faults": [_spec_to_dict(spec) for spec in self.faults]}

    @classmethod
    def from_dict(cls, payload: dict | list) -> "FaultPlan":
        """Build a plan from ``to_dict`` output (or a bare spec list)."""
        if isinstance(payload, list):
            specs = payload
        else:
            specs = payload.get("faults", [])
        return cls(faults=tuple(spec_from_dict(spec) for spec in specs))

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, 2-space indent)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def read_json(cls, path: str | pathlib.Path) -> "FaultPlan":
        """Load a plan from a JSON file."""
        return cls.from_json(
            pathlib.Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, app: "Application") -> None:
        """Check every spec references services the app actually has."""
        known = app.services
        for spec in self.faults:
            for attr in ("service", "caller", "callee"):
                name = getattr(spec, attr, None)
                if name is not None and name not in known:
                    raise ValueError(
                        f"{spec.kind} fault references unknown service "
                        f"{name!r} (has: {sorted(known)})")
