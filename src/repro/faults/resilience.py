"""Call-layer resilience: timeouts, retries, breakers, load shedding.

Real meshes do not surface raw downstream behavior to their callers —
clients time out, retry with backoff, trip circuit breakers, and shed
load when their connection pools saturate. This module provides those
policies for the simulated application layer so Sora's goodput
sampling sees retries and timeouts the way a production mesh would.

A :class:`CallPolicy` is attached to a specific ``caller -> callee``
edge via :meth:`repro.app.service.Microservice.set_call_policy`; the
caller's ``_invoke`` path then routes that edge through the guarded
slow path. Retry backoff jitter is drawn from an explicit, dedicated
RNG stream handed in at attach time, which keeps replay fingerprints
stable: edges without a policy never consume a draw.

Failures surface as :class:`CallError` subclasses carrying the name of
the service that failed, so retry logic can tell "my downstream died"
from "I was interrupted for an unrelated reason".
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.sim.errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - type-only import
    import numpy as np


class CallError(SimulationError):
    """An application-layer invocation failed.

    Attributes:
        service: the service whose invocation failed.
        reason: short machine-readable cause.
    """

    def __init__(self, service: str, reason: str) -> None:
        super().__init__(f"call to {service!r} failed: {reason}")
        self.service = service
        self.reason = reason


class ServiceUnavailable(CallError):
    """The target service is crashed/blacked out and refused the call."""


class CallTimeout(CallError):
    """The call exceeded the policy's per-attempt timeout."""


class InjectedFailure(CallError):
    """An injected edge fault failed the connection before the callee."""


class LoadShedError(CallError):
    """The caller shed the call because its client pool is saturated."""


class CircuitOpenError(CallError):
    """The caller's circuit breaker is open; the call was not attempted."""


@dataclass(frozen=True)
class RetryPolicy:
    """Retry with exponential backoff and uniform jitter.

    Attempt ``i`` (0-based) that fails is retried after
    ``min(max_backoff, base_backoff * factor**i)`` seconds, scaled
    uniformly in ``[1 - jitter, 1 + jitter]`` when an RNG stream is
    available.
    """

    max_attempts: int = 3
    base_backoff: float = 0.05
    factor: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(
                f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, attempt: int,
                rng: "np.random.Generator | None" = None) -> float:
        """Delay before retry number ``attempt + 1`` (0-based)."""
        delay = min(self.max_backoff,
                    self.base_backoff * self.factor ** attempt)
        if rng is not None and self.jitter > 0.0 and delay > 0.0:
            delay *= 1.0 - self.jitter + 2.0 * self.jitter * rng.random()
        return delay


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Classic three-state breaker configuration.

    The breaker opens after ``failure_threshold`` consecutive
    failures; after ``recovery_time`` seconds it lets one probe call
    through (half-open) and closes again on the first success.
    """

    failure_threshold: int = 5
    recovery_time: float = 5.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, "
                             f"got {self.failure_threshold}")
        if self.recovery_time <= 0:
            raise ValueError(f"recovery_time must be positive, "
                             f"got {self.recovery_time}")


class CircuitBreaker:
    """Runtime state for one edge's :class:`CircuitBreakerPolicy`."""

    def __init__(self, policy: CircuitBreakerPolicy) -> None:
        self.policy = policy
        self._failures = 0
        self._opened_at: float | None = None
        self._half_open = False

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"``."""
        if self._opened_at is None:
            return "closed"
        return "half-open" if self._half_open else "open"

    def allow(self, now: float) -> bool:
        """Whether a call may be attempted at simulated time ``now``."""
        if self._opened_at is None:
            return True
        if self._half_open:
            return False  # one probe already in flight
        if now - self._opened_at >= self.policy.recovery_time:
            self._half_open = True
            return True
        return False

    def record_success(self) -> None:
        """Reset the breaker to closed after a successful call."""
        self._failures = 0
        self._opened_at = None
        self._half_open = False

    def record_failure(self, now: float) -> None:
        """Count a failed call; opens the breaker at the threshold
        (or immediately when a half-open probe fails)."""
        self._failures += 1
        if self._half_open or \
                self._failures >= self.policy.failure_threshold:
            self._opened_at = now
            self._half_open = False


@dataclass(frozen=True)
class CallPolicy:
    """Resilience configuration for one ``caller -> callee`` edge.

    Attributes:
        timeout: per-attempt deadline in seconds (``None`` disables).
        retry: retry/backoff policy (``None`` = single attempt).
        breaker: circuit-breaker policy (``None`` disables).
        shed_queue_limit: shed the call (without attempting it) when
            the edge's client pool already has at least this many
            waiters queued — graceful degradation under
            ``SoftResourcePool`` saturation. ``None`` disables.
        degrade: when every attempt fails, return ``None`` from the
            call instead of failing the whole request (the caller's
            operation continues without the callee's contribution).
    """

    timeout: float | None = None
    retry: RetryPolicy | None = None
    breaker: CircuitBreakerPolicy | None = None
    shed_queue_limit: int | None = None
    degrade: bool = False

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be positive, got {self.timeout}")
        if self.shed_queue_limit is not None and self.shed_queue_limit < 1:
            raise ValueError(f"shed_queue_limit must be >= 1, "
                             f"got {self.shed_queue_limit}")

    @property
    def max_attempts(self) -> int:
        """Total attempts per call (1 when no retry policy is set)."""
        return self.retry.max_attempts if self.retry is not None else 1


def _zero_stats() -> dict[str, int]:
    return {"attempts": 0, "retries": 0, "timeouts": 0, "failures": 0,
            "injected": 0, "shed": 0, "short_circuited": 0,
            "degraded": 0, "successes": 0}


@dataclass
class BoundPolicy:
    """A :class:`CallPolicy` attached to an edge, with runtime state.

    Holds the breaker instance, the dedicated jitter stream, and the
    per-edge counters the explainability report surfaces.
    """

    policy: CallPolicy
    rng: "np.random.Generator | None" = None
    breaker: CircuitBreaker | None = None
    stats: dict[str, int] = field(default_factory=_zero_stats)

    def __post_init__(self) -> None:
        if self.policy.breaker is not None and self.breaker is None:
            self.breaker = CircuitBreaker(self.policy.breaker)
