"""Hardware-only autoscalers: HPA, VPA, FIRM-like, and a no-op."""

from repro.autoscalers.base import Autoscaler, NullAutoscaler, ScaleEvent
from repro.autoscalers.firm import FirmAutoscaler
from repro.autoscalers.hpa import HorizontalPodAutoscaler
from repro.autoscalers.predictive import PredictiveAutoscaler
from repro.autoscalers.vpa import VerticalPodAutoscaler

__all__ = [
    "Autoscaler",
    "FirmAutoscaler",
    "HorizontalPodAutoscaler",
    "NullAutoscaler",
    "PredictiveAutoscaler",
    "ScaleEvent",
    "VerticalPodAutoscaler",
]
