"""FIRM-style hardware-only autoscaler (paper baseline, §5.2).

FIRM (OSDI'20) detects the critical microservice instance behind SLO
violations and reprovisions its low-level hardware resources
(fine-grained CPU scaling), learning its policy with RL. For the
comparison the paper makes, what matters is FIRM's *shape*: accurate
critical-component localization plus reactive, fine-grained **vertical
CPU scaling** that never touches soft resources. This implementation
reproduces exactly that shape deterministically:

1. localize the critical service (utilization screen + Pearson
   correlation, the same two-step method FIRM inspired in §3.2);
2. on SLO violation or near-saturation, grow that service's CPU limit
   by a fine-grained step; shrink it when comfortably idle.
"""

from __future__ import annotations

import numpy as np

from repro.app.application import Application
from repro.autoscalers.base import Autoscaler, ScaleEvent
from repro.core.localization import CriticalServiceLocator
from repro.core.monitoring import MonitoringModule
from repro.sim.engine import Environment


class FirmAutoscaler(Autoscaler):
    """Critical-service-targeted vertical CPU scaling.

    Args:
        env: simulation environment.
        app: the application (end-to-end latency source).
        monitoring: utilization source.
        request_type: the request class whose SLO is enforced.
        sla: end-to-end SLO in seconds.
        scalable: names of services FIRM may scale (defaults to all
            services that appear in the app).
        locator: critical-service locator (a default is built).
        step: cores per scaling action (FIRM is fine-grained).
        min_cores / max_cores: CPU limit bounds.
        violation_quantile: latency percentile checked against the SLO.
        util_high / util_low: saturation / idleness thresholds.
        period / window: control period and analysis window.
    """

    def __init__(self, env: Environment, app: Application,
                 monitoring: MonitoringModule, *, request_type: str,
                 sla: float, scalable: list[str] | None = None,
                 locator: CriticalServiceLocator | None = None,
                 step: float = 1.0, min_cores: float = 1.0,
                 max_cores: float = 8.0,
                 violation_quantile: float = 95.0,
                 util_high: float = 0.8, util_low: float = 0.3,
                 period: float = 15.0, window: float = 15.0,
                 scale_down_stabilization: float = 60.0) -> None:
        super().__init__(env, period=period)
        if sla <= 0:
            raise ValueError(f"sla must be positive, got {sla}")
        self.app = app
        self.monitoring = monitoring
        self.request_type = request_type
        self.sla = sla
        self.scalable = set(scalable if scalable is not None
                            else app.services)
        self.locator = locator or CriticalServiceLocator(
            utilization_threshold=util_high, exclude=("front-end",))
        self.step = step
        self.min_cores = min_cores
        self.max_cores = max_cores
        self.violation_quantile = violation_quantile
        self.util_high = util_high
        self.util_low = util_low
        self.window = window
        self.scale_down_stabilization = scale_down_stabilization
        self._calm_since: dict[str, float] = {}
        #: Localization reports per control tick (diagnostics).
        self.reports = []

    def _slo_violated(self) -> bool:
        since = self.env.now - self.window
        _times, latencies = self.app.latency[self.request_type].window(
            since, self.env.now)
        if latencies.size == 0:
            return False
        return float(np.percentile(latencies,
                                   self.violation_quantile)) > self.sla

    def control(self) -> None:
        since = self.env.now - self.window
        traces = self.app.warehouse.traces(since, self.env.now)
        utilizations = self.monitoring.utilizations(self.window)
        report = self.locator.locate(traces, utilizations)
        self.reports.append(report)
        critical = report.critical_service
        if critical is None or critical not in self.scalable:
            return
        service = self.app.service(critical)
        utilization = utilizations.get(critical, 0.0)
        current = service.cores_per_replica

        if (self._slo_violated() or utilization > self.util_high) and \
                current < self.max_cores:
            self._calm_since.pop(critical, None)
            after = min(self.max_cores, current + self.step)
            service.set_cores(after)
            self._emit(ScaleEvent(time=self.env.now, service=critical,
                                  kind="vertical", before=current,
                                  after=after))
        elif utilization < self.util_low and not self._slo_violated() \
                and current > self.min_cores:
            started = self._calm_since.setdefault(critical, self.env.now)
            if self.env.now - started >= self.scale_down_stabilization:
                after = max(self.min_cores, current - self.step)
                service.set_cores(after)
                self._emit(ScaleEvent(time=self.env.now, service=critical,
                                      kind="vertical", before=current,
                                      after=after))
                self._calm_since.pop(critical, None)
        else:
            self._calm_since.pop(critical, None)
