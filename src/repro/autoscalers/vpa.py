"""Threshold-based Vertical Pod Autoscaler (paper §5.2, ConScale/Sora
substrate).

Adjusts the per-replica CPU limit in whole steps when the observed
utilization leaves a dead band, with stabilization on scale-down.
"""

from __future__ import annotations

from repro.app.service import Microservice
from repro.autoscalers.base import Autoscaler, ScaleEvent
from repro.core.monitoring import MonitoringModule
from repro.sim.engine import Environment


class VerticalPodAutoscaler(Autoscaler):
    """Threshold-based per-replica CPU scaling.

    Args:
        env: simulation environment.
        service: the scaled service.
        monitoring: utilization source.
        low / high: utilization dead band — scale up above ``high``,
            down below ``low``.
        step: cores added/removed per action.
        min_cores / max_cores: CPU limit bounds.
        period: control period.
        scale_down_stabilization: required persistence below ``low``
            before shrinking.
        window: utilization averaging window.
    """

    def __init__(self, env: Environment, service: Microservice,
                 monitoring: MonitoringModule, *, low: float = 0.35,
                 high: float = 0.8, step: float = 1.0,
                 min_cores: float = 1.0, max_cores: float = 8.0,
                 period: float = 15.0,
                 scale_down_stabilization: float = 60.0,
                 window: float = 15.0) -> None:
        super().__init__(env, period=period)
        if not 0.0 <= low < high <= 1.0:
            raise ValueError(f"need 0 <= low < high <= 1, got "
                             f"[{low}, {high}]")
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if not 0 < min_cores <= max_cores:
            raise ValueError(f"need 0 < min_cores <= max_cores, got "
                             f"[{min_cores}, {max_cores}]")
        self.service = service
        self.monitoring = monitoring
        self.low = low
        self.high = high
        self.step = step
        self.min_cores = min_cores
        self.max_cores = max_cores
        self.scale_down_stabilization = scale_down_stabilization
        self.window = window
        self._below_since: float | None = None

    def control(self) -> None:
        observed = self.monitoring.utilization_over(
            self.service.name, self.window)
        current = self.service.cores_per_replica
        if observed > self.high and current < self.max_cores:
            self._below_since = None
            after = min(self.max_cores, current + self.step)
            self._apply(current, after)
        elif observed < self.low and current > self.min_cores:
            if self._below_since is None:
                self._below_since = self.env.now
            if self.env.now - self._below_since >= \
                    self.scale_down_stabilization:
                after = max(self.min_cores, current - self.step)
                self._apply(current, after)
                self._below_since = None
        else:
            self._below_since = None

    def _apply(self, before: float, after: float) -> None:
        self.service.set_cores(after)
        self._emit(ScaleEvent(time=self.env.now, service=self.service.name,
                              kind="vertical", before=before, after=after))
