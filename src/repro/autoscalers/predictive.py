"""Predictive (trend-extrapolating) horizontal autoscaler.

An additional baseline beyond the paper's reactive scalers: fits a
linear trend to the recent utilization series and scales on the
*forecast* utilization one horizon ahead, so capacity arrives before
the burst instead of after it. Statistical-profiling autoscalers of
this family (e.g. AutoScale itself, the source of the six traces) are
the classic alternative to threshold rules.
"""

from __future__ import annotations

import math

import numpy as np

from repro.app.service import Microservice
from repro.autoscalers.base import Autoscaler, ScaleEvent
from repro.core.monitoring import MonitoringModule
from repro.sim.engine import Environment


class PredictiveAutoscaler(Autoscaler):
    """Trend-forecast replica scaling.

    Args:
        env: simulation environment.
        service: the scaled service.
        monitoring: utilization source.
        target_utilization: desired utilization fraction at the
            forecast point.
        horizon: how far ahead (seconds) to extrapolate the trend.
        history: utilization window used for the fit.
        min_replicas / max_replicas: bounds.
        period: control period.
        scale_down_stabilization: persistence required for scale-down.
    """

    def __init__(self, env: Environment, service: Microservice,
                 monitoring: MonitoringModule, *,
                 target_utilization: float = 0.5, horizon: float = 30.0,
                 history: float = 60.0, min_replicas: int = 1,
                 max_replicas: int = 8, period: float = 15.0,
                 scale_down_stabilization: float = 60.0) -> None:
        super().__init__(env, period=period)
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError(
                f"target_utilization must be in (0, 1], got "
                f"{target_utilization}")
        if horizon <= 0 or history <= 0:
            raise ValueError("horizon and history must be positive")
        if not 1 <= min_replicas <= max_replicas:
            raise ValueError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"[{min_replicas}, {max_replicas}]")
        self.service = service
        self.monitoring = monitoring
        self.target_utilization = target_utilization
        self.horizon = horizon
        self.history = history
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.scale_down_stabilization = scale_down_stabilization
        self._below_since: float | None = None

    def forecast_utilization(self) -> float:
        """Linear-trend extrapolation of utilization, clamped >= 0."""
        series = self.monitoring.utilization[self.service.name]
        times, values = series.window(self.env.now - self.history)
        if values.size == 0:
            return 0.0
        if values.size < 3:
            return float(values[-1])
        slope, intercept = np.polyfit(times, values, 1)
        predicted = slope * (self.env.now + self.horizon) + intercept
        return max(0.0, float(predicted))

    def desired_replicas(self) -> int:
        """Replica recommendation for the forecast utilization."""
        predicted = self.forecast_utilization()
        current = self.service.replica_count
        desired = math.ceil(current * predicted /
                            self.target_utilization) \
            if predicted > 0 else self.min_replicas
        return max(self.min_replicas, min(self.max_replicas, desired))

    def control(self) -> None:
        current = self.service.replica_count
        desired = self.desired_replicas()
        if desired > current:
            self._below_since = None
            self._apply(current, desired)
        elif desired < current:
            if self._below_since is None:
                self._below_since = self.env.now
            if self.env.now - self._below_since >= \
                    self.scale_down_stabilization:
                self._apply(current, desired)
                self._below_since = None
        else:
            self._below_since = None

    def _apply(self, before: int, after: int) -> None:
        self.service.scale_replicas(after)
        self._emit(ScaleEvent(time=self.env.now, service=self.service.name,
                              kind="horizontal", before=before,
                              after=after))
