"""Kubernetes Horizontal Pod Autoscaler (rule-based, paper §5.3).

Implements the documented HPA algorithm shape::

    desired = ceil(current_replicas * observed_util / target_util)

with a tolerance band around 1.0 and a scale-down stabilization window
(scale-down applies only after the lower recommendation has persisted).
"""

from __future__ import annotations

import math

from repro.app.service import Microservice
from repro.autoscalers.base import Autoscaler, ScaleEvent
from repro.core.monitoring import MonitoringModule
from repro.sim.engine import Environment


class HorizontalPodAutoscaler(Autoscaler):
    """Rule-based replica scaling on CPU utilization.

    Args:
        env: simulation environment.
        service: the scaled service.
        monitoring: utilization source.
        target_utilization: desired mean utilization fraction (the
            paper's rule of thumb is "CPU utilization > 80%" to scale).
        min_replicas / max_replicas: replica bounds.
        period: control period (Kubernetes default 15 s).
        tolerance: no action when ``observed/target`` is within
            ``1 ± tolerance``.
        scale_down_stabilization: a lower recommendation must persist
            this long before it is applied (Kubernetes default 300 s;
            shortened here to match scaled-down trace durations).
        window: utilization averaging window.
    """

    def __init__(self, env: Environment, service: Microservice,
                 monitoring: MonitoringModule, *,
                 target_utilization: float = 0.5,
                 min_replicas: int = 1, max_replicas: int = 8,
                 period: float = 15.0, tolerance: float = 0.1,
                 scale_down_stabilization: float = 60.0,
                 window: float = 15.0) -> None:
        super().__init__(env, period=period)
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError(
                f"target_utilization must be in (0, 1], got "
                f"{target_utilization}")
        if not 1 <= min_replicas <= max_replicas:
            raise ValueError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"[{min_replicas}, {max_replicas}]")
        self.service = service
        self.monitoring = monitoring
        self.target_utilization = target_utilization
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.tolerance = tolerance
        self.scale_down_stabilization = scale_down_stabilization
        self.window = window
        self._below_since: float | None = None

    def desired_replicas(self) -> int:
        """The HPA recommendation for the current observation."""
        observed = self.monitoring.utilization_over(
            self.service.name, self.window)
        current = self.service.replica_count
        ratio = observed / self.target_utilization
        if abs(ratio - 1.0) <= self.tolerance:
            return current
        desired = math.ceil(current * ratio)
        return max(self.min_replicas, min(self.max_replicas, desired))

    def control(self) -> None:
        current = self.service.replica_count
        desired = self.desired_replicas()
        if desired > current:
            self._below_since = None
            self._apply(current, desired)
        elif desired < current:
            if self._below_since is None:
                self._below_since = self.env.now
            persisted = self.env.now - self._below_since
            if persisted >= self.scale_down_stabilization:
                self._apply(current, desired)
                self._below_since = None
        else:
            self._below_since = None

    def _apply(self, before: int, after: int) -> None:
        self.service.scale_replicas(after)
        self._emit(ScaleEvent(time=self.env.now, service=self.service.name,
                              kind="horizontal", before=before,
                              after=after))
