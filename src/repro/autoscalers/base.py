"""Autoscaler interface and scale-event plumbing.

Sora is deliberately decoupled from the hardware scaler (paper §4.1):
any autoscaler that emits :class:`ScaleEvent` notifications can host
Sora's Concurrency Adapter, which re-applies optimal soft-resource
allocations right after hardware changes.
"""

from __future__ import annotations

import abc
import logging
import typing as _t
from dataclasses import dataclass

import repro.obs as obs_mod
from repro.obs.events import ScaleEventRecord
from repro.sim.engine import Environment

logger = logging.getLogger(__name__)

ScaleKind = _t.Literal["horizontal", "vertical"]


@dataclass(frozen=True)
class ScaleEvent:
    """One hardware scaling action.

    Attributes:
        time: when it happened.
        service: the scaled service's name.
        kind: "horizontal" (replicas) or "vertical" (cores).
        before / after: replica count or core limit around the action.
    """

    time: float
    service: str
    kind: ScaleKind
    before: float
    after: float


class Autoscaler(abc.ABC):
    """A periodic hardware-scaling control loop."""

    def __init__(self, env: Environment, period: float = 15.0) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.env = env
        self.period = period
        self.scale_log: list[ScaleEvent] = []
        self._callbacks: list[_t.Callable[[ScaleEvent], None]] = []
        self._started = False
        #: Observability scope; a hosting controller that owns an enabled
        #: scope shares it so scale events land in the same audit trail.
        self.obs = obs_mod.NULL

    def on_scale(self, callback: _t.Callable[[ScaleEvent], None]) -> None:
        """Register a callback invoked after every scaling action."""
        self._callbacks.append(callback)

    def start(self) -> None:
        """Launch the control loop (idempotent)."""
        if self._started:
            return
        self._started = True
        self.env.process(self._loop(),
                         name=f"autoscaler:{type(self).__name__}")

    @abc.abstractmethod
    def control(self) -> None:
        """Run one control iteration (may emit scale events)."""

    def _emit(self, event: ScaleEvent) -> None:
        self.scale_log.append(event)
        logger.info("t=%.1f %s scaled %s %s: %g -> %g",
                    event.time, type(self).__name__, event.service,
                    event.kind, event.before, event.after)
        if self.obs:
            self.obs.record(ScaleEventRecord(
                time=event.time, service=event.service,
                scale_kind=event.kind, before=event.before,
                after=event.after, autoscaler=type(self).__name__))
            self.obs.registry.counter("autoscaler.scale_events").inc()
        for callback in self._callbacks:
            callback(event)

    def _loop(self):
        while True:
            yield self.env.timeout(self.period)
            self.control()


class NullAutoscaler(Autoscaler):
    """No hardware scaling at all (static-provisioning baseline)."""

    def control(self) -> None:
        """Do nothing."""
