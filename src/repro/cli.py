"""Command-line interface: run reproduction scenarios from the shell.

Examples::

    python -m repro.cli traces
    python -m repro.cli run --scenario cart --trace steep_tri_phase \\
        --controller sora --autoscaler firm --duration 240
    python -m repro.cli compare --scenario drift --trace large_variation
    python -m repro.cli validate conformance --verbose
    python -m repro.cli validate replay --scenario tandem_balanced
    python -m repro.cli obs report --scenario cart --controller sora \\
        --html report.html --jsonl decisions.jsonl
    python -m repro.cli obs dashboard --scenario cart --controller sora \\
        --html dashboard.html --save run.json
    python -m repro.cli obs dashboard --input run.json
    python -m repro.cli obs export --format openmetrics --input run.json
    python -m repro.cli faults example > plan.json
    python -m repro.cli faults run --plan plan.json --scenario drift \\
        --controller sora --autoscaler hpa --report
    python -m repro.cli zoo list
    python -m repro.cli zoo show --archetype quorum_reads
    python -m repro.cli matrix run --out results/matrix --parallel \\
        --rerun-check
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ascii_table,
    run_scenario,
    social_network_drift_scenario,
    sock_shop_cart_scenario,
    sock_shop_catalogue_scenario,
)
from repro.experiments.reporting import sparkline
from repro.workloads import TRACE_NAMES, build_trace

SCENARIOS = {
    "cart": sock_shop_cart_scenario,
    "catalogue": sock_shop_catalogue_scenario,
    "drift": social_network_drift_scenario,
}


def _build_scenario(args, controller: str, obs=None, fault_plan=None):
    trace = build_trace(args.trace, duration=args.duration,
                        peak_users=args.peak_users,
                        min_users=args.min_users)
    builder = SCENARIOS[args.scenario]
    kwargs = dict(trace=trace, controller=controller,
                  autoscaler=args.autoscaler, sla=args.sla,
                  seed=args.seed)
    if obs is not None:
        kwargs["obs"] = obs
    if fault_plan is not None:
        kwargs["fault_plan"] = fault_plan
    if args.scenario == "drift":
        kwargs["drift_at"] = args.duration / 3.0
    return builder(**kwargs)


def _attach_sampling(args, scenario, obs) -> bool:
    """Attach the requested trace sampler + streaming aggregator.

    Sampling decisions draw from the dedicated ``tracing.sampler``
    stream, so the simulated outcome stays byte-identical to an
    unsampled run. Returns ``False`` on invalid arguments (after
    printing the error).
    """
    if getattr(args, "sampler", "none") == "none":
        return True
    from repro.tracing import (
        CriticalPathAggregator,
        HeadSampler,
        TailSampler,
        sampler_stream,
    )

    if not 0.0 <= args.sample_rate <= 1.0:
        print(f"error: --sample-rate must be in [0, 1], got "
              f"{args.sample_rate}", file=sys.stderr)
        return False
    rng = sampler_stream(scenario.streams)
    if args.sampler == "head":
        sampler = HeadSampler(args.sample_rate, rng,
                              slo_threshold=args.sla)
    else:
        sampler = TailSampler(args.sample_rate, rng,
                              slo_threshold=args.sla)
    scenario.app.warehouse.attach(sampler=sampler,
                                  analytics=CriticalPathAggregator())
    obs.attach_trace_analytics(scenario.app.warehouse)
    return True


def _report(result, label: str) -> list:
    summary = result.summary_row()
    _t, rt = result.response_time_series(interval=args_interval(result))
    print(f"{label:<14} p95 over time: {sparkline(rt * 1000)}")
    return [label, summary["goodput_rps"], summary["p95_ms"],
            summary["p99_ms"], len(result.scale_events),
            len(result.adaptation_actions)]


def args_interval(result) -> float:
    return max(2.0, result.duration / 48.0)


def cmd_traces(_args) -> int:
    rows = []
    for name in TRACE_NAMES:
        trace = build_trace(name, duration=120.0, peak_users=100,
                            min_users=10)
        users = [u for _t, u in trace.series(interval=2.0)]
        rows.append([name, sparkline(users, width=48)])
    print(ascii_table(["trace", "shape"], rows,
                      title="The six bursty workload traces (Table 2)"))
    return 0


def cmd_run(args) -> int:
    scenario = _build_scenario(args, args.controller)
    result = run_scenario(scenario, duration=args.duration)
    row = _report(result, args.controller)
    print(ascii_table(
        ["controller", "goodput [req/s]", "p95 [ms]", "p99 [ms]",
         "HW scalings", "adaptations"], [row],
        title=f"{args.scenario} / {args.trace} "
              f"(SLA {args.sla * 1000:.0f} ms)"))
    return 0


def cmd_compare(args) -> int:
    rows = []
    for controller in ("none", args.controller):
        scenario = _build_scenario(args, controller)
        result = run_scenario(scenario, duration=args.duration)
        label = ("hardware-only" if controller == "none"
                 else controller)
        rows.append(_report(result, label))
    print(ascii_table(
        ["controller", "goodput [req/s]", "p95 [ms]", "p99 [ms]",
         "HW scalings", "adaptations"], rows,
        title=f"{args.scenario} / {args.trace} "
              f"(SLA {args.sla * 1000:.0f} ms)"))
    return 0


def cmd_bench(args) -> int:
    from repro.experiments.bench import (
        render_report,
        run_bench_suite,
        write_report,
    )

    if args.scale <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    if args.repeats < 1:
        print("error: --repeats must be >= 1", file=sys.stderr)
        return 2
    report = run_bench_suite(scale=args.scale,
                             max_workers=args.workers,
                             include_parallel=not args.no_parallel,
                             include_scale_sweep=not args.no_scale_sweep,
                             repeats=args.repeats)
    print(render_report(report))
    if args.output:
        path = write_report(report, args.output)
        print(f"wrote {path}")
    return 0


def cmd_hybrid(args) -> int:
    from repro.sim.fluid import run_scenario_hybrid
    from repro.workloads.traces import WorkloadTrace

    if args.des_window <= 0 or args.des_window > args.duration:
        print("error: need 0 < --des-window <= --duration",
              file=sys.stderr)
        return 2
    target = build_trace(args.trace, duration=args.duration,
                         peak_users=args.peak_users,
                         min_users=args.min_users)
    # The DES head runs a small flat calibration population: measured
    # per-request demands don't depend on how many users submit, and a
    # million-user head would take longer than the day it calibrates.
    calibration = WorkloadTrace(
        "calibration", max(args.des_window, 1.0),
        args.calibration_users, args.calibration_users, lambda u: 1.0)
    builder = SCENARIOS[args.scenario]
    scenario = builder(trace=calibration, controller=args.controller,
                       autoscaler=args.autoscaler, sla=args.sla,
                       seed=args.seed)
    result = run_scenario_hybrid(scenario, duration=args.duration,
                                 des_window=args.des_window,
                                 interval=args.interval,
                                 fluid_trace=target)
    fluid = result.fluid
    print(f"{args.scenario} / {args.trace}: DES head "
          f"{args.des_window:g}s ({args.calibration_users} users) + "
          f"fluid tail to {args.duration:g}s "
          f"(peak {args.peak_users:,} users)")
    print(f"fluid sweep: {len(fluid.times)} samples in "
          f"{fluid.elapsed:.2f}s wall")
    print(f"users      : {sparkline(fluid.populations)}")
    print(f"throughput : {sparkline(fluid.throughput)}  "
          f"peak {float(fluid.throughput.max()):,.0f} req/s")
    print(f"response   : {sparkline(fluid.response_times * 1000)}  "
          f"max {float(fluid.response_times.max()) * 1000:,.1f} ms")
    print(f"requests served (trapezoid): "
          f"{fluid.total_requests:,.0f}")
    rows = [[name, f"{demand * 1000:.3f}",
             f"{result.calibrated_visits.get(name, 1.0):.2f}"]
            for name, demand in
            sorted(result.calibrated_demands.items())]
    print(ascii_table(["service", "demand [ms]", "visits"], rows,
                      title="calibrated from the DES head"))
    return 0


def cmd_obs_report(args) -> int:
    from repro.obs import (
        Observability,
        configure_logging,
        render_html,
        render_text,
    )

    if args.log_level:
        configure_logging(args.log_level)
    obs = Observability()
    scenario = _build_scenario(args, args.controller, obs=obs)
    if not _attach_sampling(args, scenario, obs):
        return 2
    result = run_scenario(scenario, duration=args.duration)
    title = (f"{args.scenario} / {args.trace} / "
             f"{args.controller}+{args.autoscaler} "
             f"(SLA {args.sla * 1000:.0f} ms)")
    print(render_text(obs, title=title))
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_html(obs, title=title))
        print(f"wrote {args.html}")
    if args.jsonl:
        count = obs.decisions.write_jsonl(args.jsonl)
        print(f"wrote {count} records to {args.jsonl}")
    if args.traces_out:
        from repro.tracing.export import write_traces

        roots = scenario.app.warehouse.traces(
            0.0, result.duration + 10.0)
        count = write_traces(args.traces_out, roots,
                             decisions=obs.decisions.applied())
        print(f"wrote {count} traces to {args.traces_out}")
    return 0


def _obs_from_args(args, *, need_telemetry: bool = True):
    """Shared front half of ``obs dashboard``/``obs export``.

    Either loads a persisted run (``--input``) or runs one scenario
    live with telemetry + SLO monitoring enabled. Returns
    ``(obs, title)`` or an exit code on error.
    """
    from repro.obs import Observability, SLOSpec

    if args.input:
        from repro.experiments.persistence import load_result

        try:
            result = load_result(args.input)
        except (OSError, ValueError) as error:
            print(f"error: cannot load {args.input!r}: {error}",
                  file=sys.stderr)
            return 2
        obs = result.obs
        if need_telemetry and not obs:
            print(f"error: {args.input!r} carries no telemetry "
                  "(was the run made with observability enabled?)",
                  file=sys.stderr)
            return 2
        return obs, result.name
    obs = Observability()
    scenario = _build_scenario(args, args.controller, obs=obs)
    if not _attach_sampling(args, scenario, obs):
        return 2
    scenario.slo = SLOSpec(name=f"{args.scenario}-rt",
                           latency_threshold=args.sla,
                           objective=args.slo_objective)
    result = run_scenario(scenario, duration=args.duration)
    if args.save:
        from repro.experiments.persistence import save_result

        save_result(args.save, result)
        print(f"wrote {args.save}", file=sys.stderr)
    title = (f"{args.scenario} / {args.trace} / "
             f"{args.controller}+{args.autoscaler} "
             f"(SLA {args.sla * 1000:.0f} ms)")
    return obs, title


def cmd_obs_dashboard(args) -> int:
    from repro.obs import render_dashboard_html, render_sparklines

    resolved = _obs_from_args(args)
    if isinstance(resolved, int):
        return resolved
    obs, title = resolved
    try:
        html = render_dashboard_html(obs, title=title)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(html)
        print(f"wrote {args.html}", file=sys.stderr)
    if not args.html or args.text:
        print(render_sparklines(obs, title=title))
    return 0


def cmd_obs_export(args) -> int:
    from repro.obs import render_openmetrics

    resolved = _obs_from_args(args, need_telemetry=False)
    if isinstance(resolved, int):
        return resolved
    obs, _title = resolved
    text = render_openmetrics(obs)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_obs_trends(args) -> int:
    from repro.obs.trends import (
        collect_artifacts,
        find_crossings,
        render_trends_html,
    )

    points = collect_artifacts(args.paths)
    if len(points) < 2:
        print(f"error: found {len(points)} recognizable artifact(s) "
              f"under {args.paths}; need at least 2 for a trend "
              f"(commit BENCH_*.json reports or matrix index.json "
              f"files)", file=sys.stderr)
        return 2
    html = render_trends_html(points, threshold_pct=args.threshold,
                              title=args.title)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(html)
    crossings = find_crossings(points, args.threshold)
    print(f"aggregated {len(points)} artifacts "
          f"({points[0].timestamp} .. {points[-1].timestamp}); "
          f"{len(crossings)} threshold crossing(s) at "
          f"±{args.threshold:g}%")
    for entry in crossings[:10]:
        print(f"  {entry['metric']}: {entry['before']:g} -> "
              f"{entry['after']:g} ({entry['change_pct']:+.1f}%) "
              f"between {entry['from']} and {entry['to']}")
    print(f"wrote {args.output}")
    return 0


#: Sample plan printed by ``repro faults example`` — one spec of each
#: kind, sized for the default cart scenario.
_EXAMPLE_PLAN = {
    "faults": [
        {"kind": "crash", "service": "cart-db", "at": 60.0,
         "mode": "drain", "restart_after": 10.0},
        {"kind": "interference", "service": "cart", "at": 100.0,
         "duration": 40.0, "demand_factor": 2.0, "core_steal": 0.25},
        {"kind": "edge-latency", "caller": "cart", "callee": "cart-db",
         "at": 150.0, "duration": 20.0, "delay": 0.02, "jitter": 0.5},
        {"kind": "edge-failure", "caller": "front-end", "callee": "cart",
         "at": 180.0, "duration": 15.0, "probability": 0.2},
        {"kind": "blackout", "service": "cart", "at": 200.0,
         "duration": 15.0, "replicas": 1},
    ],
}


def cmd_faults_example(_args) -> int:
    from repro.faults import FaultPlan

    print(FaultPlan.from_dict(_EXAMPLE_PLAN).to_json())
    return 0


def cmd_faults_run(args) -> int:
    from repro.faults import FaultPlan
    from repro.obs import Observability, render_text

    try:
        plan = FaultPlan.read_json(args.plan)
    except (OSError, ValueError) as error:
        print(f"error: cannot load plan {args.plan!r}: {error}",
              file=sys.stderr)
        return 2
    if not plan:
        print(f"error: plan {args.plan!r} has no faults",
              file=sys.stderr)
        return 2
    obs = Observability()
    try:
        scenario = _build_scenario(args, args.controller, obs=obs,
                                   fault_plan=plan)
        scenario.faults.plan.validate(scenario.app)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = run_scenario(scenario, duration=args.duration)
    rows = [[f"{r.time:.1f}", r.fault, r.phase, r.service or r.edge or ""]
            for r in result.fault_events]
    print(ascii_table(["t [s]", "fault", "phase", "where"], rows,
                      title=f"Fault plan {args.plan} "
                            f"({len(plan)} specs)"))
    row = _report(result, args.controller)
    print(ascii_table(
        ["controller", "goodput [req/s]", "p95 [ms]", "p99 [ms]",
         "HW scalings", "adaptations"], [row],
        title=f"{args.scenario} / {args.trace} under faults "
              f"(SLA {args.sla * 1000:.0f} ms, "
              f"{result.failed_total} requests failed)"))
    if args.report:
        print(render_text(obs, title=f"{args.scenario} under faults"))
    if args.jsonl:
        count = obs.decisions.write_jsonl(args.jsonl)
        print(f"wrote {count} records to {args.jsonl}")
    return 0


def cmd_zoo_list(_args) -> int:
    from repro.scenarios import ARCHETYPES, ZooParams, bottleneck_service

    rows = []
    for archetype in ARCHETYPES:
        params = ZooParams(archetype=archetype)
        rows.append([archetype, params.label,
                     bottleneck_service(params)])
    print(ascii_table(["archetype", "default label", "bottleneck"],
                      rows, title="Scenario zoo archetypes"))
    return 0


def cmd_zoo_show(args) -> int:
    import json as _json

    from repro.scenarios import (
        ZooParams,
        build_topology,
        topology_fingerprint,
        topology_to_dict,
    )
    from repro.sim import Environment, RandomStreams

    params = ZooParams(archetype=args.archetype, shards=args.shards,
                       storm_at=args.storm_at)
    env = Environment()
    topology = build_topology(env, RandomStreams(args.seed), params)
    print(_json.dumps(topology_to_dict(topology.app), indent=2,
                      sort_keys=True))
    print(f"# structural fingerprint: "
          f"{topology_fingerprint(topology.app)}", file=sys.stderr)
    return 0


def cmd_matrix_run(args) -> int:
    import os

    from repro.experiments.matrix import default_matrix, run_matrix
    from repro.scenarios import ZOO_FAULT_KINDS

    smoke = os.environ.get("REPRO_EXAMPLE_SMOKE", "") == "1"
    archetypes = (args.archetypes.split(",") if args.archetypes
                  else ["fanout_slow_shard", "cache_aside",
                        "quorum_reads"])
    traces = (args.traces.split(",") if args.traces
              else ["slowly_varying", "big_spike"])
    faults = (args.faults.split(",") if args.faults
              else ["none", "interference"])
    controllers = (args.controllers.split(",") if args.controllers
                   else ["none", "sora"])
    for fault in faults:
        if fault not in ZOO_FAULT_KINDS:
            print(f"error: unknown fault kind {fault!r} "
                  f"(have: {', '.join(ZOO_FAULT_KINDS)})",
                  file=sys.stderr)
            return 2
    if smoke:
        # CI mini-matrix: 2x2x1, short runs, under results/smoke/.
        archetypes = archetypes[:2]
        traces = traces[:2]
        faults = faults[:1]
        controllers = controllers[:1]
        duration, peak_users, min_users = 20.0, 30, 10
    else:
        duration, peak_users, min_users = (args.duration,
                                           args.peak_users,
                                           args.min_users)
    out_dir = args.out
    if out_dir is None:
        base = os.path.join("benchmarks", "results")
        out_dir = (os.path.join(base, "smoke", "matrix") if smoke
                   else os.path.join(base, "matrix"))
    try:
        cells = default_matrix(
            archetypes=archetypes, traces=traces, faults=faults,
            controllers=controllers, autoscaler=args.autoscaler,
            duration=duration, peak_users=peak_users,
            min_users=min_users, seed=args.seed, sla=args.sla,
            telemetry=args.telemetry)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"running {len(cells)} cells "
          f"({len(archetypes)} topologies x {len(traces)} traces x "
          f"{len(faults)} faults x {len(controllers)} controllers) "
          f"-> {out_dir}", file=sys.stderr)
    matrix = run_matrix(cells, out_dir, parallel=args.parallel,
                        max_workers=args.workers,
                        rerun_check=args.rerun_check)
    print(matrix.summary_table())
    print(f"index: {os.path.join(out_dir, 'index.html')}")
    if args.rerun_check:
        failures = matrix.replay_failures
        if failures:
            print(f"replay FAILED for {len(failures)} cells: "
                  f"{', '.join(failures)}", file=sys.stderr)
            return 1
        print(f"replay OK: all {len(matrix)} cells reproduced "
              "byte-identical fingerprints")
    return 0


def cmd_validate_conformance(args) -> int:
    from repro.validation import (
        generate_scenarios,
        run_conformance,
        scenario_by_name,
    )

    if args.replications < 1:
        print("error: --replications must be >= 1", file=sys.stderr)
        return 2
    if args.duration_scale <= 0:
        print("error: --duration-scale must be positive",
              file=sys.stderr)
        return 2
    if args.scenario:
        try:
            scenarios = [scenario_by_name(name)
                         for name in args.scenario]
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
    else:
        scenarios = generate_scenarios()
    report = run_conformance(scenarios, seed=args.seed,
                             duration_scale=args.duration_scale,
                             replications=args.replications)
    print(report.render(verbose=args.verbose))
    print(f"\n{sum(r.passed for r in report.results)}"
          f"/{len(report.results)} scenarios within tolerance")
    return 0 if report.passed else 1


def cmd_validate_replay(args) -> int:
    from repro.validation import check_replay

    if args.duration <= 0:
        print("error: --duration must be positive", file=sys.stderr)
        return 2
    try:
        result = check_replay(args.scenario, seed=args.seed,
                              duration=args.duration,
                              across_processes=not args.no_subprocess,
                              perturb_at=args.perturb_at)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    print(result.render())
    if args.perturb_at is not None:
        # Perturbed mode *demonstrates* detection: divergence expected.
        if result.identical:
            print("expected divergence was NOT detected")
            return 1
        return 0
    return 0 if result.identical else 1


def _exclude_services(args) -> tuple:
    """Resolve ``--exclude`` flags: absent means the front-end default,
    given flags *replace* it (so the default can be un-excluded), and
    empty strings are dropped (``--exclude ''`` excludes nothing)."""
    if args.exclude is None:
        return ("front-end",)
    return tuple(service for service in args.exclude if service)


def _service_config(args):
    """Build a :class:`~repro.service.domain.ServiceConfig` from the
    shared service flags (``serve`` / ``service drive --spawn`` /
    ``service replay`` must agree for replay to be exact)."""
    from repro.core.scg import ScatterModelConfig
    from repro.service import ServiceConfig

    return ServiceConfig(
        sla=args.sla,
        cadence=args.round_interval,
        window=args.window,
        utilization_threshold=args.utilization_threshold,
        max_pending=args.max_pending,
        decide_top_k=args.decide_top_k,
        exclude=_exclude_services(args),
        latency_slo=args.latency_slo,
        flight_rounds=args.flight_rounds,
        scatter=ScatterModelConfig(min_samples=args.min_samples,
                                   min_distinct=args.min_distinct,
                                   quantum=args.quantum))


def cmd_serve(args) -> int:
    from repro.obs import configure_logging
    from repro.service import ControllerService

    if args.log_level:
        configure_logging(args.log_level)
    service = ControllerService(
        _service_config(args), host=args.host, port=args.port,
        cadence=args.cadence, journal_path=args.journal,
        decisions_path=args.decisions,
        journal_segment_bytes=args.journal_segment_bytes,
        journal_segment_age=args.journal_segment_age,
        journal_compact=args.journal_compact)

    def announce(message: str) -> None:
        print(message, flush=True)
        if args.port_file:
            import pathlib

            path = pathlib.Path(args.port_file)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(f"{service.port}\n", encoding="utf-8")

    service.run(announce=announce)
    return 0


def cmd_service_drive(args) -> int:
    import json
    import os
    import pathlib
    import subprocess
    import time
    import urllib.request

    from repro.obs import configure_logging
    from repro.service import (
        ServiceClient,
        drive,
        verify_chain,
        verify_replay,
    )

    if args.log_level:
        configure_logging(args.log_level)
    duration = args.duration
    if os.environ.get("REPRO_EXAMPLE_SMOKE"):
        duration = min(duration, 60.0)

    out = pathlib.Path(args.out) if args.out else None
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)

    process = None
    journal = decisions = None
    url = args.url
    try:
        if args.spawn:
            artifacts = out or pathlib.Path("service-artifacts")
            artifacts.mkdir(parents=True, exist_ok=True)
            journal = artifacts / "journal.jsonl"
            decisions = artifacts / "decisions.jsonl"
            port_file = artifacts / "port"
            if port_file.exists():
                port_file.unlink()
            command = [sys.executable, "-m", "repro.cli", "serve",
                       "--host", "127.0.0.1", "--port", "0",
                       "--port-file", str(port_file),
                       "--journal", str(journal),
                       "--decisions", str(decisions)]
            if args.journal_segment_bytes:
                command.extend(["--journal-segment-bytes",
                                str(args.journal_segment_bytes)])
            if args.journal_segment_age:
                command.extend(["--journal-segment-age",
                                str(args.journal_segment_age)])
            if args.journal_compact:
                command.append("--journal-compact")
            if args.log_level:
                command.extend(["--log-level", args.log_level])
            command.extend(_service_flag_values(args))
            process = subprocess.Popen(command)
            deadline = time.time() + 30.0
            while not port_file.exists():
                if process.poll() is not None:
                    print("error: spawned service exited early",
                          file=sys.stderr)
                    return 1
                if time.time() > deadline:
                    print("error: spawned service never announced "
                          "its port", file=sys.stderr)
                    return 1
                time.sleep(0.05)
            port = int(port_file.read_text().strip())
            url = f"http://127.0.0.1:{port}"
        if url is None:
            print("error: --url or --spawn is required",
                  file=sys.stderr)
            return 2

        report = drive(
            url, scenario=args.scenario, trace=args.trace,
            duration=duration, interval=args.interval,
            tick_every=args.tick_every, sla=args.sla,
            seed=args.seed, peak_users=args.peak_users,
            min_users=args.min_users, autoscaler=args.autoscaler,
            apply=args.apply,
            traces_per_batch=args.traces_per_batch)

        client = ServiceClient(url)
        if out is not None:
            (out / "drive.json").write_text(
                json.dumps(report.to_dict(), indent=2,
                           sort_keys=True) + "\n", encoding="utf-8")
            (out / "report.txt").write_text(
                client.request("GET", "/report")["text"],
                encoding="utf-8")
            # Flight-recorder artifacts: per-round span summaries,
            # the live ops console, and journal lifecycle health.
            (out / "rounds.json").write_text(
                json.dumps(client.request("GET", "/debug/rounds"),
                           indent=2, sort_keys=True) + "\n",
                encoding="utf-8")
            (out / "dashboard.html").write_text(
                client.request("GET", "/debug/dashboard")["text"],
                encoding="utf-8")
            (out / "journal_health.json").write_text(
                json.dumps(client.request("GET", "/debug/journal"),
                           indent=2, sort_keys=True) + "\n",
                encoding="utf-8")
        if args.spawn:
            try:
                client.request("POST", "/admin/shutdown", b"")
            except (urllib.error.URLError, ConnectionError):
                pass
    finally:
        if process is not None:
            try:
                process.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

    recommendations = report.recommendations
    print(f"drove {duration:g}s of simulated {args.scenario!r} load: "
          f"{report.snapshots} snapshots, {report.traces_sent} traces "
          f"in {report.trace_batches} batches, {report.ticks} rounds")
    for name, rec in sorted(recommendations.items()):
        print(f"  {name}: allocation {rec['before']} -> "
              f"{rec['allocation']} ({rec['method']}, threshold "
              f"{rec['threshold'] * 1e3:.0f} ms, "
              f"{rec['samples']} samples)")
    latency = report.status.get("recommendation_latency", {})
    if latency.get("count"):
        print(f"  controller: p50 {latency['p50_ms']:.2f} ms / "
              f"p99 {latency['p99_ms']:.2f} ms over "
              f"{latency['count']} recommendations")

    if journal is not None and decisions is not None \
            and decisions.exists():
        identical, detail = verify_replay(journal, decisions,
                                          _service_config(args))
        print(f"  audit replay: {detail}")
        if not identical:
            return 1
        intact, chain_detail = verify_chain(journal)
        print(f"  audit chain: {chain_detail}")
        if not intact:
            return 1
    if args.expect_recommendation and not recommendations:
        print("error: no recommendation was served", file=sys.stderr)
        return 1
    return 0


def _service_flag_values(args) -> list:
    """Config flags forwarded verbatim to a spawned ``serve``."""
    flags = ["--sla", str(args.sla),
             "--round-interval", str(args.round_interval),
             "--window", str(args.window),
             "--utilization-threshold",
             str(args.utilization_threshold),
             "--max-pending", str(args.max_pending),
             "--decide-top-k", str(args.decide_top_k),
             "--min-samples", str(args.min_samples),
             "--min-distinct", str(args.min_distinct),
             "--quantum", str(args.quantum),
             "--latency-slo", str(args.latency_slo),
             "--flight-rounds", str(args.flight_rounds)]
    excluded = _exclude_services(args)
    for service in excluded:
        flags.extend(["--exclude", service])
    if not excluded:
        # Forward the emptiness explicitly, or the spawned serve would
        # fall back to its own front-end default and replay diverges.
        flags.extend(["--exclude", ""])
    return flags


def cmd_service_replay(args) -> int:
    from repro.service import verify_replay

    identical, detail = verify_replay(args.journal, args.decisions,
                                      _service_config(args))
    print(detail)
    return 0 if identical else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sora (Middleware '23) reproduction scenarios")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("traces", help="show the six workload trace shapes")

    def add_run_args(p):
        p.add_argument("--scenario", choices=sorted(SCENARIOS),
                       default="cart")
        p.add_argument("--trace", choices=TRACE_NAMES,
                       default="steep_tri_phase")
        p.add_argument("--controller",
                       choices=("sora", "conscale", "none"),
                       default="sora")
        p.add_argument("--autoscaler",
                       choices=("firm", "vpa", "hpa", "none"),
                       default="firm")
        p.add_argument("--duration", type=float, default=240.0)
        p.add_argument("--peak-users", type=int, default=450)
        p.add_argument("--min-users", type=int, default=80)
        p.add_argument("--sla", type=float, default=0.4,
                       help="end-to-end SLA in seconds")
        p.add_argument("--seed", type=int, default=42)

    run_parser = sub.add_parser("run", help="run one scenario")
    add_run_args(run_parser)
    compare_parser = sub.add_parser(
        "compare",
        help="run hardware-only vs the chosen controller side by side")
    add_run_args(compare_parser)

    bench = sub.add_parser(
        "bench",
        help="kernel performance suite (events/sec, requests/sec, "
             "parallel fan-out speedup)")
    bench.add_argument("--scale", type=float, default=1.0,
                       help="workload multiplier (smoke: < 1.0)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="best-of count per benchmark")
    bench.add_argument("--workers", type=int, default=None,
                       help="worker processes for the fan-out bench "
                            "(default: CPU count)")
    bench.add_argument("--no-parallel", action="store_true",
                       help="skip the parallel fan-out benchmark")
    bench.add_argument("--no-scale-sweep", action="store_true",
                       help="skip the 10k-1M user scale sweep "
                            "(timer wheel vs heap, DES point, fluid "
                            "diurnal day)")
    bench.add_argument("--output", default=None, metavar="PATH",
                       help="also write the JSON report here "
                            "(e.g. benchmarks/results/"
                            "BENCH_kernel.json)")

    hybrid = sub.add_parser(
        "hybrid",
        help="hybrid fluid/DES: simulate a short head for calibration, "
             "sweep the rest of the trace analytically (a million-user "
             "day in seconds)")
    hybrid.add_argument("--scenario", choices=sorted(SCENARIOS),
                        default="cart")
    hybrid.add_argument("--trace",
                        choices=TRACE_NAMES + ("diurnal",),
                        default="diurnal")
    hybrid.add_argument("--duration", type=float, default=86400.0,
                        help="target trace horizon in seconds")
    hybrid.add_argument("--peak-users", type=int, default=1_000_000)
    hybrid.add_argument("--min-users", type=int, default=50_000)
    hybrid.add_argument("--des-window", type=float, default=60.0,
                        help="simulated seconds of DES head used to "
                             "calibrate the fluid model")
    hybrid.add_argument("--interval", type=float, default=60.0,
                        help="fluid sweep sampling interval")
    hybrid.add_argument("--calibration-users", type=int, default=80,
                        help="flat population for the DES head")
    hybrid.add_argument("--controller",
                        choices=("sora", "conscale", "none"),
                        default="none")
    hybrid.add_argument("--autoscaler",
                        choices=("firm", "vpa", "hpa", "none"),
                        default="none")
    hybrid.add_argument("--sla", type=float, default=0.4)
    hybrid.add_argument("--seed", type=int, default=42)

    obs = sub.add_parser(
        "obs",
        help="observability: run a scenario with the audit trail on "
             "and render the explainability report")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report",
        help="run one scenario with observability enabled and explain "
             "every adaptation decision")
    def add_sampler_args(p):
        p.add_argument("--sampler", choices=("none", "head", "tail"),
                       default="none",
                       help="trace sampler for the live run's "
                            "warehouse: 'tail' retains every "
                            "SLO-violating/cancelled trace and "
                            "downsamples the healthy bulk; 'head' "
                            "flips a coin up front")
        p.add_argument("--sample-rate", type=float, default=0.1,
                       help="bulk keep probability (default 0.1)")

    add_run_args(report)
    add_sampler_args(report)
    report.add_argument("--html", default=None, metavar="PATH",
                        help="also write an HTML report here")
    report.add_argument("--jsonl", default=None, metavar="PATH",
                        help="write the decision log as JSONL here")
    report.add_argument("--traces-out", default=None, metavar="PATH",
                        help="write decision-tagged Jaeger traces here")
    report.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="also stream repro.* logs to stderr")

    def add_telemetry_source_args(p):
        p.add_argument("--input", default=None, metavar="PATH",
                       help="render a persisted run (from --save or "
                            "save_result) instead of running live")
        p.add_argument("--save", default=None, metavar="PATH",
                       help="persist the live run's result (with "
                            "telemetry) here")
        p.add_argument("--slo-objective", type=float, default=0.99,
                       help="SLO good-fraction objective for the live "
                            "run (default 0.99; threshold is --sla)")

    dashboard = obs_sub.add_parser(
        "dashboard",
        help="annotated telemetry dashboard (self-contained HTML or "
             "text sparklines) for a live or persisted run")
    add_run_args(dashboard)
    add_sampler_args(dashboard)
    add_telemetry_source_args(dashboard)
    dashboard.add_argument("--html", default=None, metavar="PATH",
                           help="write the self-contained HTML "
                                "dashboard here")
    dashboard.add_argument("--text", action="store_true",
                           help="print text sparklines even when "
                                "--html is given")

    export = obs_sub.add_parser(
        "export",
        help="expose the metrics registry + final SLO state in "
             "OpenMetrics text format")
    add_run_args(export)
    add_sampler_args(export)
    add_telemetry_source_args(export)
    export.add_argument("--format", choices=("openmetrics",),
                        default="openmetrics")
    export.add_argument("--output", default=None, metavar="PATH",
                        help="write the exposition here instead of "
                             "stdout")

    trends = obs_sub.add_parser(
        "trends",
        help="longitudinal perf trends: aggregate committed "
             "BENCH_*.json reports and matrix index.json files into "
             "a regression-timeline HTML report")
    trends.add_argument("paths", nargs="*",
                        default=["BENCH_kernel.json", "benchmarks"],
                        metavar="PATH",
                        help="artifact files or directories to sweep "
                             "(default: BENCH_kernel.json + "
                             "benchmarks/)")
    trends.add_argument("--output", default="trends.html",
                        metavar="PATH",
                        help="write the self-contained HTML report "
                             "here (default trends.html)")
    trends.add_argument("--threshold", type=float, default=20.0,
                        help="callout threshold in percent for "
                             "consecutive-artifact moves (default 20)")
    trends.add_argument("--title", default="repro perf trends")

    faults = sub.add_parser(
        "faults",
        help="fault injection: run a scenario under a JSON fault plan")
    faults_sub = faults.add_subparsers(dest="faults_command",
                                       required=True)
    faults_run = faults_sub.add_parser(
        "run",
        help="run one scenario with a fault plan injected and report "
             "fault transitions + goodput impact")
    add_run_args(faults_run)
    faults_run.add_argument("--plan", required=True, metavar="PATH",
                            help="JSON fault plan (see 'faults example')")
    faults_run.add_argument("--report", action="store_true",
                            help="also render the full observability "
                                 "report (faults + decisions)")
    faults_run.add_argument("--jsonl", default=None, metavar="PATH",
                            help="write the decision log (including "
                                 "fault records) as JSONL here")
    faults_sub.add_parser(
        "example",
        help="print a sample fault plan covering every fault kind")

    zoo = sub.add_parser(
        "zoo",
        help="generated scenario archetypes (repro.scenarios.zoo)")
    zoo_sub = zoo.add_subparsers(dest="zoo_command", required=True)
    zoo_sub.add_parser("list", help="list the generator archetypes")
    zoo_show = zoo_sub.add_parser(
        "show",
        help="print one generated topology's canonical structural "
             "JSON (the golden-snapshot form)")
    zoo_show.add_argument("--archetype", required=True,
                          help="archetype name (see 'zoo list')")
    zoo_show.add_argument("--shards", type=int, default=4)
    zoo_show.add_argument("--storm-at", type=float, default=None,
                          help="cache_aside invalidation-storm start")
    zoo_show.add_argument("--seed", type=int, default=42)

    matrix = sub.add_parser(
        "matrix",
        help="matrix runner: topology x workload x fault x controller "
             "grids over generated scenarios")
    matrix_sub = matrix.add_subparsers(dest="matrix_command",
                                       required=True)
    matrix_run = matrix_sub.add_parser(
        "run",
        help="run a cell grid, persist per-cell JSONs, and write a "
             "queryable index (REPRO_EXAMPLE_SMOKE=1 shrinks to a "
             "CI mini-matrix)")
    matrix_run.add_argument("--out", default=None, metavar="DIR",
                            help="results directory (default: "
                                 "benchmarks/results/matrix, or "
                                 ".../smoke/matrix under "
                                 "REPRO_EXAMPLE_SMOKE=1)")
    matrix_run.add_argument("--archetypes", default=None,
                            help="comma-separated archetype names")
    matrix_run.add_argument("--traces", default=None,
                            help="comma-separated trace names")
    matrix_run.add_argument("--faults", default=None,
                            help="comma-separated zoo fault kinds")
    matrix_run.add_argument("--controllers", default=None,
                            help="comma-separated controller kinds")
    matrix_run.add_argument("--autoscaler",
                            choices=("firm", "vpa", "hpa", "none"),
                            default="hpa")
    matrix_run.add_argument("--duration", type=float, default=90.0)
    matrix_run.add_argument("--peak-users", type=int, default=100)
    matrix_run.add_argument("--min-users", type=int, default=25)
    matrix_run.add_argument("--sla", type=float, default=0.4)
    matrix_run.add_argument("--seed", type=int, default=42)
    matrix_run.add_argument("--parallel", action="store_true",
                            help="fan cells out over worker processes")
    matrix_run.add_argument("--workers", type=int, default=None)
    matrix_run.add_argument("--rerun-check", action="store_true",
                            help="re-run every cell and verify "
                                 "byte-identical replay fingerprints")
    matrix_run.add_argument("--telemetry", action="store_true",
                            help="stream per-cell telemetry with tail "
                                 "sampling and emit a dashboard HTML + "
                                 "sampling-coverage JSON next to each "
                                 "cell result, linked from index.html")

    def add_service_config_args(p):
        p.add_argument("--sla", type=float, default=0.4,
                       help="end-to-end SLA in seconds")
        p.add_argument("--round-interval", type=float, default=15.0,
                       help="logical seconds one control round "
                            "advances the service clock")
        p.add_argument("--window", type=float, default=120.0,
                       help="logical seconds of <Q, GP> pairs per "
                            "round")
        p.add_argument("--utilization-threshold", type=float,
                       default=0.7)
        p.add_argument("--max-pending", type=int, default=256,
                       help="snapshots allowed to queue between "
                            "rounds before HTTP 429")
        p.add_argument("--decide-top-k", type=int, default=1,
                       help="correlation-ranked services estimated "
                            "per round (0 = every series)")
        p.add_argument("--min-samples", type=int, default=30,
                       help="scatter-model minimum pair count")
        p.add_argument("--min-distinct", type=int, default=5,
                       help="scatter-model minimum distinct "
                            "concurrency levels")
        p.add_argument("--quantum", type=float, default=1.0,
                       help="scatter-model concurrency grid")
        p.add_argument("--latency-slo", type=float, default=0.25,
                       help="wall seconds one recommendation may "
                            "take (controller's own SLO)")
        p.add_argument("--exclude", action="append",
                       default=None, metavar="SERVICE",
                       help="service never nominated as critical "
                            "(repeatable; replaces the default of "
                            "front-end; pass an empty string to "
                            "exclude nothing)")
        p.add_argument("--flight-rounds", type=int, default=256,
                       help="control rounds the self-tracing flight "
                            "recorder retains (0 disables "
                            "self-tracing entirely)")

    def add_journal_lifecycle_args(p):
        p.add_argument("--journal-segment-bytes", type=int, default=0,
                       help="rotate the audit journal into a numbered "
                            "segment once the active file reaches "
                            "this many bytes (0 = never)")
        p.add_argument("--journal-segment-age", type=float,
                       default=0.0,
                       help="rotate once the active segment spans "
                            "this many logical seconds (0 = never)")
        p.add_argument("--journal-compact", action="store_true",
                       help="collapse closed segments into a "
                            "checkpoint entry after each rotation "
                            "(drops superseded snapshots, keeps "
                            "every decision; replay stays "
                            "byte-identical)")
        p.add_argument("--log-level", default=None,
                       choices=("debug", "info", "warning", "error"),
                       help="stream repro.* logs to stderr")

    serve = sub.add_parser(
        "serve",
        help="run the standalone Sora control-plane service "
             "(asyncio HTTP JSON API)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address; the API is unauthenticated, "
                            "so non-loopback binds expose ingestion "
                            "and /admin/shutdown to the network")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port (0 picks a free one)")
    serve.add_argument("--cadence", type=float, default=0.0,
                       help="wall seconds between automatic control "
                            "rounds (0 = rounds only via "
                            "POST /control/tick)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="JSONL audit journal of accepted stimuli")
    serve.add_argument("--decisions", default=None, metavar="PATH",
                       help="decision-log JSONL, rewritten each round")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound port here after startup")
    add_service_config_args(serve)
    add_journal_lifecycle_args(serve)

    service = sub.add_parser(
        "service",
        help="drive or audit a running control-plane service")
    service_sub = service.add_subparsers(dest="service_command",
                                         required=True)
    service_drive = service_sub.add_parser(
        "drive",
        help="point the simulator at a service as a load generator")
    service_drive.add_argument("--url", default=None,
                               help="base URL of a running service")
    service_drive.add_argument("--spawn", action="store_true",
                               help="boot a serve subprocess, drive "
                                    "it, shut it down, verify replay")
    service_drive.add_argument("--scenario",
                               choices=sorted(SCENARIOS),
                               default="cart")
    service_drive.add_argument("--trace", choices=TRACE_NAMES,
                               default="steep_tri_phase")
    service_drive.add_argument("--duration", type=float, default=120.0)
    service_drive.add_argument("--interval", type=float, default=0.5,
                               help="simulated seconds per exported "
                                    "snapshot")
    service_drive.add_argument("--tick-every", type=float,
                               default=15.0,
                               help="simulated seconds between forced "
                                    "control rounds")
    service_drive.add_argument("--seed", type=int, default=42)
    service_drive.add_argument("--peak-users", type=int, default=250)
    service_drive.add_argument("--min-users", type=int, default=40)
    service_drive.add_argument("--autoscaler",
                               choices=("firm", "vpa", "hpa", "none"),
                               default="none")
    service_drive.add_argument("--apply", action="store_true",
                               help="apply recommendations back onto "
                                    "the simulated pool")
    service_drive.add_argument("--traces-per-batch", type=int,
                               default=200)
    service_drive.add_argument("--out", default=None, metavar="DIR",
                               help="write drive.json + report.txt "
                                    "(and spawn artifacts) here")
    service_drive.add_argument("--expect-recommendation",
                               action="store_true",
                               help="exit non-zero unless at least "
                                    "one recommendation was served")
    add_service_config_args(service_drive)
    add_journal_lifecycle_args(service_drive)
    service_replay = service_sub.add_parser(
        "replay",
        help="re-derive the decision log from a journal and verify "
             "byte-identity")
    service_replay.add_argument("--journal", required=True)
    service_replay.add_argument("--decisions", required=True)
    add_service_config_args(service_replay)

    validate = sub.add_parser(
        "validate",
        help="validation subsystem: theory conformance and replay")
    validate_sub = validate.add_subparsers(dest="validate_command",
                                           required=True)
    conf = validate_sub.add_parser(
        "conformance",
        help="check the simulator against exact MVA on a scenario "
             "family")
    conf.add_argument("--scenario", action="append", default=None,
                      help="run only this scenario (repeatable; "
                           "default: the whole family)")
    conf.add_argument("--seed", type=int, default=17)
    conf.add_argument("--replications", type=int, default=2)
    conf.add_argument("--duration-scale", type=float, default=1.0,
                      help="scale scenario durations (sub-unity for "
                           "smoke runs; tolerances assume 1.0)")
    conf.add_argument("--verbose", action="store_true",
                      help="per-station residence and queue detail")
    replay = validate_sub.add_parser(
        "replay",
        help="verify deterministic replay (same seed => identical "
             "event stream, in-process and across processes)")
    replay.add_argument("--scenario", default="tandem_balanced")
    replay.add_argument("--seed", type=int, default=17)
    replay.add_argument("--duration", type=float, default=40.0)
    replay.add_argument("--no-subprocess", action="store_true",
                        help="skip the spawned-subprocess run")
    replay.add_argument("--perturb-at", type=float, default=None,
                        help="inject a divergence at this simulated "
                             "time to demonstrate detection")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "traces":
        return cmd_traces(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "compare":
        return cmd_compare(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "hybrid":
        return cmd_hybrid(args)
    if args.command == "obs":
        if args.obs_command == "report":
            return cmd_obs_report(args)
        if args.obs_command == "dashboard":
            return cmd_obs_dashboard(args)
        if args.obs_command == "export":
            return cmd_obs_export(args)
        if args.obs_command == "trends":
            return cmd_obs_trends(args)
    if args.command == "faults":
        if args.faults_command == "run":
            return cmd_faults_run(args)
        if args.faults_command == "example":
            return cmd_faults_example(args)
    if args.command == "zoo":
        if args.zoo_command == "list":
            return cmd_zoo_list(args)
        if args.zoo_command == "show":
            return cmd_zoo_show(args)
    if args.command == "matrix":
        if args.matrix_command == "run":
            return cmd_matrix_run(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "service":
        if args.service_command == "drive":
            return cmd_service_drive(args)
        if args.service_command == "replay":
            return cmd_service_replay(args)
    if args.command == "validate":
        if args.validate_command == "conformance":
            return cmd_validate_conformance(args)
        if args.validate_command == "replay":
            return cmd_validate_replay(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
