"""Validation subsystem: does the substrate behave like the theory says?

Everything above the simulator — the SCG estimator, the controllers,
the paper-figure benches — is only as trustworthy as the simulator
itself. This package makes that trust checkable, and keeps it checked:

- :mod:`repro.validation.scenarios` — generated families of closed
  queueing-network scenarios that both the simulator and the exact MVA
  solver can consume.
- :mod:`repro.validation.conformance` — the theory-conformance
  harness: run each scenario through both, compare throughput /
  response time / queue length within declared tolerances
  (``repro validate conformance``).
- :mod:`repro.validation.fingerprint` — canonical run fingerprints
  (hashed event stream + summary metrics).
- :mod:`repro.validation.replay` — deterministic-replay checking with
  first-divergence reports (``repro validate replay``), the regression
  net for future parallelism/caching work.
- :mod:`repro.validation.invariants` — always-on invariant checkers
  (clock monotonicity, request conservation, pool occupancy) that can
  be armed on any :class:`~repro.sim.engine.Environment`.
- :mod:`repro.validation.strategies` — hypothesis strategies for
  scatter samples, call-graph topologies, and workloads, shared by the
  property/metamorphic test layer.
"""

from repro.validation.conformance import (
    ConformanceReport,
    ScenarioResult,
    StationError,
    Tolerance,
    run_conformance,
    run_scenario_conformance,
)
from repro.validation.fingerprint import (
    Fingerprint,
    RunRecorder,
    fingerprint_traces,
)
from repro.validation.invariants import (
    InvariantChecker,
    InvariantViolation,
)
from repro.validation.replay import (
    DivergenceReport,
    ReplayResult,
    check_replay,
    diff_fingerprints,
    run_fingerprint,
)
from repro.validation.scenarios import (
    ConformanceScenario,
    generate_scenarios,
    scenario_by_name,
)

__all__ = [
    "ConformanceReport",
    "ConformanceScenario",
    "DivergenceReport",
    "Fingerprint",
    "InvariantChecker",
    "InvariantViolation",
    "ReplayResult",
    "RunRecorder",
    "ScenarioResult",
    "StationError",
    "Tolerance",
    "check_replay",
    "diff_fingerprints",
    "fingerprint_traces",
    "generate_scenarios",
    "run_conformance",
    "run_scenario_conformance",
    "run_fingerprint",
    "scenario_by_name",
]
