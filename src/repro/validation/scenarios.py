"""Generated closed-network scenarios for theory conformance.

Each :class:`ConformanceScenario` describes one closed queueing network
twice over: as a :class:`~repro.analysis.queueing.Station` list the MVA
solver consumes, and as a simulated application (a chain of
processor-sharing microservices driven by a think-submit-wait user
population). The generated family spans the dimensions along which the
simulator could plausibly diverge from product-form theory:

- chain depth and demand balance (uniform vs bottlenecked),
- service-time distribution (PS insensitivity: lognormal, exponential,
  and constant demands must all match the same MVA solution),
- think time (light vs heavy load relative to saturation),
- multi-core stations (exact load-dependent MVA),
- repeated calls (visit ratios above 1),
- non-binding thread pools (admission gates that must not perturb a
  product-form network when they never fill).

Pool-*limited* behavior is deliberately out of scope here — a binding
admission limit breaks product form, so those paths are exercised by
the replay and property layers instead.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.analysis.queueing import Station
from repro.app.application import Application
from repro.app.behavior import Call, Compute, Operation, Step
from repro.app.service import Microservice
from repro.sim.distributions import (
    Constant,
    Distribution,
    Erlang,
    Exponential,
    LogNormal,
)
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams
from repro.workloads.drivers import ClosedLoopDriver
from repro.workloads.traces import WorkloadTrace

DemandShape = _t.Literal["lognormal", "exponential", "constant"]
ThinkShape = _t.Literal["exponential", "erlang", "constant"]


@dataclass(frozen=True)
class ConformanceScenario:
    """One closed network, consumable by both solver and simulator.

    Attributes:
        name: unique scenario identifier.
        demands: per-service mean CPU demand along the chain (seconds).
        cores: per-service core count (1 = exact single-server MVA,
            >1 = exact load-dependent multi-core MVA).
        fanout: sequential calls from service ``i`` to service ``i+1``
            (length ``len(demands) - 1``); visit ratios compound.
        population: closed user population ``N``.
        think_time: mean think time ``Z`` (seconds).
        duration: simulated seconds; measurements use the second half.
        demand_shape: service-demand distribution (PS is insensitive,
            so all shapes must match the same solution).
        think_shape: think-time distribution (delay stations are
            insensitive too; the default Erlang-4 keeps driver noise
            low, while dedicated scenarios exercise exponential and
            constant think).
        thread_pool: optional per-replica thread pool on the entry
            service, sized to never bind (>= population).
        description: one-line note shown in reports.
    """

    name: str
    demands: tuple[float, ...]
    population: int
    think_time: float
    duration: float = 600.0
    cores: tuple[int, ...] = ()
    fanout: tuple[int, ...] = ()
    demand_shape: DemandShape = "lognormal"
    think_shape: ThinkShape = "erlang"
    thread_pool: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.demands:
            raise ValueError("scenario needs at least one service")
        if self.population < 1:
            raise ValueError(f"population must be >= 1, got "
                             f"{self.population}")
        cores = self.cores or (1,) * len(self.demands)
        if len(cores) != len(self.demands):
            raise ValueError("cores must match demands in length")
        fanout = self.fanout or (1,) * (len(self.demands) - 1)
        if len(fanout) != len(self.demands) - 1:
            raise ValueError("fanout must have len(demands) - 1 entries")
        if any(f < 1 for f in fanout):
            raise ValueError(f"fanout entries must be >= 1, got {fanout}")
        if self.thread_pool is not None and \
                self.thread_pool < self.population:
            raise ValueError(
                "thread_pool must be >= population to stay non-binding "
                f"(got {self.thread_pool} < {self.population})")
        object.__setattr__(self, "cores", tuple(cores))
        object.__setattr__(self, "fanout", tuple(fanout))

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    @property
    def service_names(self) -> tuple[str, ...]:
        """Generated service names, one per demand entry."""
        return tuple(f"s{i}" for i in range(len(self.demands)))

    @property
    def visits(self) -> tuple[float, ...]:
        """Visit ratio of each service relative to one user request."""
        ratios = [1.0]
        for calls in self.fanout:
            ratios.append(ratios[-1] * calls)
        return tuple(ratios)

    def stations(self) -> list[Station]:
        """The network as MVA stations (think time is passed as ``Z``)."""
        result = []
        for name, demand, cores, visits in zip(
                self.service_names, self.demands, self.cores, self.visits):
            if cores > 1:
                result.append(Station(name, demand, visits=visits,
                                      kind="multi", servers=cores))
            else:
                result.append(Station(name, demand, visits=visits))
        return result

    # ------------------------------------------------------------------
    # Simulation assembly
    # ------------------------------------------------------------------
    def _demand_distribution(self, mean: float) -> Distribution:
        if self.demand_shape == "lognormal":
            return LogNormal(mean, cv=1.2)
        if self.demand_shape == "exponential":
            return Exponential(mean)
        return Constant(mean)

    def _think_distribution(self) -> Distribution:
        if self.think_shape == "exponential":
            return Exponential(self.think_time)
        if self.think_shape == "erlang":
            return Erlang(4, self.think_time)
        return Constant(self.think_time)

    def build(self, seed: int) -> tuple[Environment, Application,
                                        ClosedLoopDriver]:
        """Instantiate the scenario (not yet started nor run)."""
        env = Environment()
        streams = RandomStreams(seed)
        app = Application(env)
        names = self.service_names
        for index, name in enumerate(names):
            pool = self.thread_pool if index == 0 else None
            service = Microservice(
                env, name, streams.stream(name),
                cores=float(self.cores[index]), cpu_overhead=0.0,
                thread_pool_size=pool)
            steps: list[Step] = [
                Compute(self._demand_distribution(self.demands[index]))]
            if index + 1 < len(names):
                steps.extend(Call(names[index + 1])
                             for _ in range(self.fanout[index]))
            service.add_operation(Operation("default", steps))
            app.add_service(service)
        app.set_entrypoint("go", names[0], "default")
        trace = WorkloadTrace("flat", self.duration, self.population,
                              self.population, lambda _u: 1.0)
        driver = ClosedLoopDriver(env, app, "go", trace,
                                  streams.stream("driver"),
                                  think_time=self._think_distribution())
        return env, app, driver

    def run(self, seed: int) -> tuple[Environment, Application]:
        """Build, start, and run the scenario to its full duration."""
        env, app, driver = self.build(seed)
        driver.start()
        env.run(until=self.duration + 1.0)
        return env, app


# ----------------------------------------------------------------------
# The generated family
# ----------------------------------------------------------------------
def generate_scenarios() -> list[ConformanceScenario]:
    """The standard conformance family (>= 10 scenarios).

    Kept deliberately explicit — each entry names the failure mode it
    guards against — rather than randomized, so a regression points at
    a stable scenario name.
    """
    scenarios = [
        ConformanceScenario(
            name="single_light",
            demands=(0.020,), population=6, think_time=1.0,
            duration=1200.0,
            description="one station, light load (R ~ s)"),
        ConformanceScenario(
            name="single_knee",
            demands=(0.040,), population=25, think_time=1.0,
            duration=1500.0,
            description="one station near the saturation knee (worst "
                        "mixing; longest horizon)"),
        ConformanceScenario(
            name="single_saturated",
            demands=(0.030,), population=50, think_time=0.4,
            description="one station far past saturation (X -> 1/s)"),
        ConformanceScenario(
            name="tandem_balanced",
            demands=(0.025, 0.025), population=16, think_time=0.6,
            description="two equal stations"),
        ConformanceScenario(
            name="tandem_bottleneck",
            demands=(0.012, 0.045), population=20, think_time=0.5,
            duration=900.0,
            description="two stations, 4x demand skew"),
        ConformanceScenario(
            name="chain_deep",
            demands=(0.010, 0.018, 0.008, 0.015), population=18,
            think_time=0.5,
            description="four-station chain, mixed demands"),
        ConformanceScenario(
            name="insensitive_exponential",
            demands=(0.025, 0.035), population=14, think_time=0.5,
            demand_shape="exponential", think_shape="exponential",
            description="PS insensitivity: fully memoryless variant"),
        ConformanceScenario(
            name="insensitive_constant",
            demands=(0.025, 0.035), population=14, think_time=0.5,
            demand_shape="constant",
            description="PS insensitivity: deterministic demands"),
        ConformanceScenario(
            name="constant_think",
            demands=(0.030,), population=12, think_time=0.8,
            think_shape="constant",
            description="delay-station insensitivity: fixed think"),
        ConformanceScenario(
            name="multicore_mid",
            demands=(0.050,), cores=(2,), population=20, think_time=1.0,
            description="2-core station at mid load (exact LD MVA)"),
        ConformanceScenario(
            name="multicore_quad",
            demands=(0.060,), cores=(4,), population=40, think_time=0.8,
            description="4-core station approaching saturation"),
        ConformanceScenario(
            name="multicore_tandem",
            demands=(0.020, 0.048), cores=(1, 2), population=24,
            think_time=0.6,
            description="single-core front, 2-core bottleneck"),
        ConformanceScenario(
            name="repeat_calls",
            demands=(0.008, 0.020), fanout=(2,), population=15,
            think_time=0.6,
            description="visit ratio 2 on the downstream station"),
        ConformanceScenario(
            name="pool_nonbinding",
            demands=(0.030, 0.015), population=12, think_time=0.6,
            thread_pool=64,
            description="non-binding admission pool must not perturb"),
    ]
    names = [s.name for s in scenarios]
    assert len(set(names)) == len(names), "duplicate scenario names"
    return scenarios


def scenario_by_name(name: str) -> ConformanceScenario:
    """Look up one generated scenario by name."""
    for scenario in generate_scenarios():
        if scenario.name == name:
            return scenario
    known = ", ".join(s.name for s in generate_scenarios())
    raise KeyError(f"unknown scenario {name!r} (known: {known})")
