"""Armable simulation invariant checkers.

An :class:`InvariantChecker` attaches to any
:class:`~repro.sim.engine.Environment` as a step monitor and asserts,
on every processed event, the conservation laws the kernel and resource
layer must never violate:

- **Clock monotonicity** — simulated time never runs backwards.
- **Request conservation** — submitted = completed + failed +
  in-flight, and in-flight is never negative (failed counts requests
  abandoned past their resilience policies, so the law holds under
  fault plans too).
- **Pool occupancy** — tokens in use never exceed capacity, except
  transiently after a lazy shrink, during which the overage must only
  drain (never grow).
- **Queue sanity** — admission queues and per-replica active counts
  are never negative.

Violations raise :class:`InvariantViolation` immediately, aborting the
run at the exact event that broke the law — property tests arm a
checker and simply let hypothesis shrink the failing schedule.
"""

from __future__ import annotations

import typing as _t

from repro.sim.engine import Environment
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.app.application import Application
    from repro.resources.pool import SoftResourcePool


class InvariantViolation(AssertionError):
    """A simulation invariant was broken (time and cause included)."""


class InvariantChecker:
    """Continuously verify kernel/application invariants during a run.

    Args:
        env: the environment to observe.
        app: optional application; enables request-conservation and
            pool/replica checks on top of the kernel clock check.

    Usage::

        checker = InvariantChecker(env, app).arm()
        env.run(until=...)
        checker.verify_quiescent()   # post-run conservation
    """

    def __init__(self, env: Environment,
                 app: "Application | None" = None) -> None:
        self.env = env
        self.app = app
        self._last_time = env.now
        self._armed = False
        self.events_checked = 0
        # pool id -> overage at last check (for lazy-shrink draining).
        self._overages: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def arm(self) -> "InvariantChecker":
        """Attach to the environment (idempotent); returns self."""
        if not self._armed:
            self.env.add_monitor(self._check)
            self._armed = True
        return self

    def disarm(self) -> None:
        """Detach from the environment (idempotent)."""
        if self._armed:
            self.env.remove_monitor(self._check)
            self._armed = False

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def _fail(self, when: float, message: str) -> _t.NoReturn:
        raise InvariantViolation(
            f"invariant violated at t={when:.9f} "
            f"(event #{self.events_checked}): {message}")

    def _check_pool(self, when: float, pool: "SoftResourcePool") -> None:
        if pool.in_use < 0:
            self._fail(when, f"pool {pool.name!r}: negative in_use "
                             f"{pool.in_use}")
        if pool.queue_length < 0:  # pragma: no cover - deque length
            self._fail(when, f"pool {pool.name!r}: negative queue")
        overage = pool.in_use - pool.capacity
        previous = self._overages.get(id(pool), 0)
        if overage > 0 and overage > previous:
            self._fail(
                when,
                f"pool {pool.name!r}: occupancy {pool.in_use} grew "
                f"above capacity {pool.capacity} (lazy shrink may only "
                f"drain, had overage {previous})")
        self._overages[id(pool)] = max(0, overage)

    def _check(self, when: float, _sequence: int, _event: Event) -> None:
        self.events_checked += 1
        if when < self._last_time:
            self._fail(when, f"clock ran backwards "
                             f"(previous t={self._last_time:.9f})")
        self._last_time = when
        app = self.app
        if app is None:
            return
        if app.in_flight < 0:
            self._fail(when, f"negative in-flight count {app.in_flight}")
        completed = sum(log.total for log in app.latency.values())
        failed = getattr(app, "failed_total", 0)
        if completed + failed + app.in_flight != app.total_submitted:
            self._fail(
                when,
                f"request conservation broken: submitted "
                f"{app.total_submitted} != completed {completed} + "
                f"failed {failed} + in-flight {app.in_flight}")
        for service in app.services.values():
            for replica in service.replicas:
                if replica.active_requests < 0:
                    self._fail(
                        when,
                        f"replica {replica.name}: negative active "
                        f"count {replica.active_requests}")
                if replica.server_pool is not None:
                    self._check_pool(when, replica.server_pool)
            for pool in service.client_pools.values():
                self._check_pool(when, pool)

    # ------------------------------------------------------------------
    # Post-run verification
    # ------------------------------------------------------------------
    def verify_quiescent(self) -> None:
        """Assert the drained end state: nothing in flight, no tokens
        held, every submitted request accounted for."""
        app = self.app
        if app is None:
            return
        now = self.env.now
        if app.in_flight != 0:
            self._fail(now, f"{app.in_flight} requests still in flight "
                            "after the run drained")
        completed = sum(log.total for log in app.latency.values())
        failed = getattr(app, "failed_total", 0)
        if completed + failed != app.total_submitted:
            self._fail(now, f"completed {completed} + failed {failed} "
                            f"!= submitted {app.total_submitted}")
        for service in app.services.values():
            for replica in service.replicas:
                pool = replica.server_pool
                if pool is not None and pool.in_use != 0:
                    self._fail(now, f"pool {pool.name!r}: {pool.in_use} "
                                    "tokens still held at quiescence")
            for pool in service.client_pools.values():
                if pool.in_use != 0:
                    self._fail(now, f"pool {pool.name!r}: {pool.in_use} "
                                    "tokens still held at quiescence")
