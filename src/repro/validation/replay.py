"""Deterministic replay checking and divergence reports.

The simulator promises common-random-number determinism: the same
scenario under the same master seed must replay the exact same event
stream, in this process, in a fresh process, and on any machine with
the same dependency stack. This module enforces the promise:

- :func:`run_fingerprint` runs one named scenario and returns its
  canonical :class:`~repro.validation.fingerprint.Fingerprint`;
- :func:`check_replay` runs a scenario twice in-process and once in a
  *spawned* subprocess (a cold interpreter, so no inherited state can
  fake determinism) and diffs the fingerprints;
- :func:`diff_fingerprints` pinpoints the first differing event and
  renders a structured divergence report.

This is the regression net for every future parallelism or caching
change: if a worker pool or memoization layer perturbs the event
stream, ``repro validate replay`` names the first event that moved.

An injected perturbation (``perturb_at``) deliberately breaks replay by
scheduling a mid-run demand-scale nudge; the self-test uses it to prove
the checker actually detects divergence rather than vacuously passing.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import typing as _t
from dataclasses import dataclass, replace

from repro.validation.fingerprint import (
    EventRecord,
    Fingerprint,
    RunRecorder,
    fingerprint_traces,
)
from repro.validation.scenarios import scenario_by_name

#: Default replay horizon — long enough for thousands of events, short
#: enough that the check stays interactive.
DEFAULT_DURATION = 40.0

#: Demand multiplier applied by the injected perturbation.
PERTURB_SCALE = 1.001


@dataclass(frozen=True)
class DivergenceReport:
    """Where two event streams first disagree.

    Attributes:
        index: position of the first differing event (0-based), or the
            length of the shorter stream when one is a prefix of the
            other.
        left / right: the differing records (``None`` when that stream
            ended first).
        context: the last few records the streams still share.
        left_label / right_label: which runs are being compared.
    """

    index: int
    left: EventRecord | None
    right: EventRecord | None
    context: tuple[EventRecord, ...]
    left_label: str
    right_label: str

    @staticmethod
    def _describe(record: EventRecord | None) -> str:
        if record is None:
            return "<stream ended>"
        time_hex, kind, detail = record
        time = float.fromhex(time_hex)
        if kind == "Timeout" and detail.startswith("0x"):
            detail = f"delay={float.fromhex(detail):.9f}"
        suffix = f" ({detail})" if detail else ""
        return f"t={time:.9f} {kind}{suffix}"

    def render(self) -> str:
        """Human-readable description of the first divergent event."""
        lines = [
            f"first divergence at event #{self.index}:",
            f"  {self.left_label:<12} {self._describe(self.left)}",
            f"  {self.right_label:<12} {self._describe(self.right)}",
        ]
        if self.context:
            lines.append("  last shared events:")
            for record in self.context:
                lines.append(f"    {self._describe(record)}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of a replay check across several runs of one scenario."""

    scenario: str
    seed: int
    duration: float
    fingerprints: tuple[tuple[str, Fingerprint], ...]
    divergence: DivergenceReport | None

    @property
    def identical(self) -> bool:
        """Whether the replayed run matched the original exactly."""
        return self.divergence is None

    def render(self) -> str:
        """Human-readable verdict with per-run fingerprints."""
        lines = [f"replay check: scenario={self.scenario} "
                 f"seed={self.seed} duration={self.duration:g}s"]
        for label, fingerprint in self.fingerprints:
            lines.append(
                f"  {label:<12} digest={fingerprint.digest} "
                f"events={fingerprint.n_events}")
        if self.identical:
            lines.append("  all fingerprints identical — "
                         "deterministic replay holds")
        else:
            lines.append(self.divergence.render())
        return "\n".join(lines)


def run_fingerprint(scenario_name: str, seed: int,
                    duration: float = DEFAULT_DURATION,
                    keep_events: bool = True,
                    perturb_at: float | None = None) -> Fingerprint:
    """Run one named conformance scenario and fingerprint it.

    Args:
        scenario_name: a :func:`~repro.validation.scenarios
            .generate_scenarios` entry.
        seed: master seed for all random streams.
        duration: simulated horizon (overrides the scenario's own).
        keep_events: retain the event log for divergence pinpointing.
        perturb_at: when set, nudge the entry service's demand scale at
            this simulated time — an injected divergence for testing
            the checker itself.
    """
    scenario = replace(scenario_by_name(scenario_name),
                       duration=duration)
    env, app, driver = scenario.build(seed)
    recorder = RunRecorder(env, keep_events=keep_events)
    if perturb_at is not None:
        entry = app.service(scenario.service_names[0])

        def _perturb() -> None:
            entry.demand_scale *= PERTURB_SCALE

        env.call_at(perturb_at, _perturb)
    driver.start()
    env.run(until=duration + 1.0)
    traces = app.warehouse.traces()
    return recorder.finish(app, extra={
        "trace_digest": fingerprint_traces(traces),
    })


def _worker(args: tuple[str, int, float]) -> Fingerprint:
    scenario_name, seed, duration = args
    return run_fingerprint(scenario_name, seed, duration)


def diff_fingerprints(left: tuple[str, Fingerprint],
                      right: tuple[str, Fingerprint],
                      context: int = 3) -> DivergenceReport | None:
    """First-divergence diff of two fingerprints (``None`` if equal).

    Falls back to a digest-only verdict (index ``-1``) when either
    fingerprint carries no event log.
    """
    left_label, left_fp = left
    right_label, right_fp = right
    if left_fp.digest == right_fp.digest:
        return None
    if left_fp.events is None or right_fp.events is None:
        return DivergenceReport(
            index=-1, left=None, right=None, context=(),
            left_label=left_label, right_label=right_label)
    a, b = left_fp.events, right_fp.events
    limit = min(len(a), len(b))
    index = limit
    for i in range(limit):
        if a[i] != b[i]:
            index = i
            break
    else:
        if len(a) == len(b):
            # Same events, different summary (e.g. trace digest): point
            # past the end with shared tail context.
            index = limit
    shared = a[max(0, index - context):index]
    return DivergenceReport(
        index=index,
        left=a[index] if index < len(a) else None,
        right=b[index] if index < len(b) else None,
        context=tuple(shared),
        left_label=left_label, right_label=right_label)


def check_replay(scenario_name: str, seed: int = 17,
                 duration: float = DEFAULT_DURATION,
                 across_processes: bool = True,
                 perturb_at: float | None = None) -> ReplayResult:
    """Replay a scenario and verify fingerprint identity.

    Runs the scenario twice in this process, and — unless disabled —
    once more in a spawned subprocess (a cold interpreter). When
    ``perturb_at`` is set, the *second* in-process run is perturbed, so
    the result demonstrates divergence detection.
    """
    baseline = ("run-1", run_fingerprint(scenario_name, seed, duration))
    second_label = "run-2" if perturb_at is None else "run-perturbed"
    second = (second_label,
              run_fingerprint(scenario_name, seed, duration,
                              perturb_at=perturb_at))
    fingerprints = [baseline, second]
    if across_processes and perturb_at is None:
        context = multiprocessing.get_context("spawn")
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=1, mp_context=context) as pool:
            remote = pool.submit(
                _worker, (scenario_name, seed, duration)).result()
        fingerprints.append(("subprocess", remote))

    divergence = None
    for other in fingerprints[1:]:
        divergence = diff_fingerprints(baseline, other)
        if divergence is not None:
            break
    return ReplayResult(
        scenario=scenario_name, seed=seed, duration=duration,
        fingerprints=tuple(fingerprints), divergence=divergence)
