"""Hypothesis strategies for the property/metamorphic test layer.

Importing this module requires ``hypothesis`` (a dev dependency); the
rest of :mod:`repro.validation` stays importable without it.

The strategies generate the three input families the SCG pipeline and
the simulator consume:

- :func:`knee_scatters` — noisy ``<concurrency, rate>`` samples drawn
  from a curve with a known capacity knee;
- :func:`chain_specs` (+ :func:`build_chain_app`) — linear-chain
  call-graph topologies with bounded demands and pool sizes;
- :func:`workload_traces` — parametrized bursty traces from the
  paper's six shapes;
- :func:`linear_trace` — synthetic finished span trees with exact,
  chosen per-service self times (for deadline-propagation relations).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np
from hypothesis import strategies as st

from repro.app.application import Application
from repro.app.behavior import Call, Compute, Operation, Step
from repro.app.service import Microservice
from repro.sim.distributions import Constant
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams
from repro.tracing.span import Span
from repro.workloads.traces import TRACE_NAMES, WorkloadTrace, build_trace


# ----------------------------------------------------------------------
# Scatter samples with a known knee
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KneeScatter:
    """A generated scatter with its ground-truth capacity knee."""

    concurrency: np.ndarray
    rate: np.ndarray
    knee: float
    noise: float


@st.composite
def knee_scatters(draw: st.DrawFn,
                  min_knee: float = 5.0,
                  max_knee: float = 30.0,
                  min_samples: int = 80,
                  max_samples: int = 240) -> KneeScatter:
    """Noisy samples from a saturating concurrency-rate curve.

    The underlying curve rises linearly to the knee and stays flat
    beyond it (the idealized Fig. 7 shape); samples cover concurrency
    levels up to ~2x the knee with bounded multiplicative noise.
    """
    knee = draw(st.floats(min_knee, max_knee))
    span = draw(st.floats(1.6, 2.5))
    count = draw(st.integers(min_samples, max_samples))
    noise = draw(st.floats(0.0, 0.04))
    rng_seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(rng_seed)
    concurrency = rng.uniform(1.0, knee * span, size=count)
    rate = np.minimum(concurrency, knee)
    rate = rate * (1.0 + noise * rng.standard_normal(count))
    return KneeScatter(concurrency=concurrency,
                       rate=np.maximum(rate, 0.0), knee=knee,
                       noise=noise)


# ----------------------------------------------------------------------
# Call-graph topologies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChainSpec:
    """A linear-chain application topology.

    Attributes:
        demands_ms: per-service constant CPU demand (milliseconds).
        threads: entry-service thread pool size (``None`` = async).
        cores: per-replica cores for every service.
    """

    demands_ms: tuple[float, ...]
    threads: int | None
    cores: float

    @property
    def depth(self) -> int:
        return len(self.demands_ms)


@st.composite
def chain_specs(draw: st.DrawFn, max_depth: int = 5,
                max_demand_ms: float = 8.0) -> ChainSpec:
    """Bounded linear-chain topologies."""
    depth = draw(st.integers(1, max_depth))
    demands = tuple(
        draw(st.floats(0.2, max_demand_ms)) for _ in range(depth))
    threads = draw(st.one_of(st.none(), st.integers(1, 8)))
    cores = draw(st.sampled_from([1.0, 2.0, 4.0]))
    return ChainSpec(demands_ms=demands, threads=threads, cores=cores)


def build_chain_app(env: Environment, streams: RandomStreams,
                    spec: ChainSpec) -> Application:
    """Instantiate a :class:`ChainSpec` as a runnable application."""
    app = Application(env)
    names = [f"svc{i}" for i in range(spec.depth)]
    for index, name in enumerate(names):
        pool = spec.threads if index == 0 else None
        service = Microservice(env, name, streams.stream(name),
                               cores=spec.cores, thread_pool_size=pool)
        steps: list[Step] = [
            Compute(Constant(spec.demands_ms[index] / 1000.0))]
        if index + 1 < spec.depth:
            steps.append(Call(names[index + 1]))
        service.add_operation(Operation("default", steps))
        app.add_service(service)
    app.set_entrypoint("go", names[0], "default")
    return app


# ----------------------------------------------------------------------
# Workload traces
# ----------------------------------------------------------------------
@st.composite
def workload_traces(draw: st.DrawFn,
                    max_duration: float = 120.0) -> WorkloadTrace:
    """One of the six paper trace shapes with drawn parameters."""
    name = draw(st.sampled_from(TRACE_NAMES))
    duration = draw(st.floats(20.0, max_duration))
    peak = draw(st.integers(20, 200))
    low = draw(st.integers(1, peak))
    return build_trace(name, duration=duration, peak_users=peak,
                       min_users=low)


# ----------------------------------------------------------------------
# Synthetic span trees
# ----------------------------------------------------------------------
def linear_trace(self_times: _t.Sequence[float],
                 start: float = 0.0) -> Span:
    """A finished linear-chain trace with exact per-service self times.

    Service ``svc{i}`` at depth ``i`` gets ``self_times[i]`` seconds of
    processing, split evenly around its single child's interval — so
    ``span.self_time()`` reproduces the input exactly and the critical
    path is the full chain.
    """
    if not self_times:
        raise ValueError("need at least one self time")
    total = list(np.cumsum(list(self_times)[::-1]))[::-1]
    spans: list[Span] = []
    cursor = start
    parent: Span | None = None
    for depth, self_time in enumerate(self_times):
        arrival = cursor
        span = Span(trace_id=1, service=f"svc{depth}",
                    operation="default", arrival=arrival, parent=parent)
        span.started = arrival
        span.departure = arrival + total[depth]
        spans.append(span)
        parent = span
        cursor = arrival + self_time / 2.0
    return spans[0]


# ----------------------------------------------------------------------
# Scenario-zoo parameters
# ----------------------------------------------------------------------
@st.composite
def zoo_params(draw: st.DrawFn,
               archetypes: _t.Sequence[str] | None = None,
               max_shards: int = 6):
    """Valid :class:`~repro.scenarios.zoo.ZooParams` draws.

    Covers every archetype with bounded widths/demands (so property
    tests that *run* the generated scenarios stay fast) while hitting
    the interesting corners: minimum/maximum quorum sizes, storms on
    and off, degrade policies on and off, skewed hot shards.
    """
    from repro.scenarios.zoo import ARCHETYPES, ZooParams

    archetype = draw(st.sampled_from(
        tuple(archetypes) if archetypes else ARCHETYPES))
    shards = draw(st.integers(2, max_shards))
    storm_at = draw(st.one_of(st.none(), st.floats(0.0, 60.0)))
    degrade = draw(st.one_of(st.none(), st.floats(0.05, 0.5)))
    return ZooParams(
        archetype=archetype,
        shards=shards,
        quorum_k=draw(st.integers(1, shards)),
        slow_factor=draw(st.floats(1.0, 8.0)),
        hedge_after=draw(st.floats(0.005, 0.1)),
        hit_ratio=draw(st.floats(0.05, 0.95)),
        storm_at=storm_at,
        storm_duration=draw(st.floats(1.0, 60.0)),
        storm_miss=draw(st.floats(0.1, 1.0)),
        hot_weight=draw(st.floats(0.05, 0.95)),
        demand_ms=draw(st.floats(0.5, 8.0)),
        demand_cv=draw(st.floats(0.1, 1.5)),
        entry_threads=draw(st.integers(4, 48)),
        connections=draw(st.integers(2, 48)),
        replicas=draw(st.integers(1, 3)),
        degrade_timeout=degrade,
    )
