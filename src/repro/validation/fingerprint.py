"""Canonical run fingerprints.

A fingerprint condenses a simulation run into a digest of its processed
event stream plus a handful of summary metrics. Two runs of the same
scenario with the same seed must produce bit-identical fingerprints —
on this machine, in another process, under a different PYTHONHASHSEED —
or something nondeterministic crept into the kernel. The recorder keeps
the full (bounded) event log alongside the digest so a mismatch can be
narrowed to the *first* differing event (see
:mod:`repro.validation.replay`).

Event identity is structural, never object identity: simulated time (as
exact float hex), the event's type name, and a type-specific detail
(process name, timeout delay). The scheduling serial is deliberately
*not* part of the record — stream position already encodes order, and
serials would smear one inserted event across every later record
instead of pinpointing it. Raw span/trace ids are excluded too — they
come from module-level counters that keep counting across runs in one
process.
"""

from __future__ import annotations

import hashlib
import typing as _t
from dataclasses import dataclass

from repro.sim.engine import Environment
from repro.sim.events import Event, Timeout
from repro.sim.process import Process
from repro.tracing.span import Span

#: One canonical event record: (time_hex, kind, detail).
EventRecord = tuple[str, str, str]


@dataclass(frozen=True)
class Fingerprint:
    """The canonical identity of one simulation run.

    Attributes:
        digest: blake2b hex digest over the event stream and summary.
        n_events: number of events processed.
        final_time: simulated clock when recording stopped.
        summary: deterministic run metrics folded into the digest
            (completions per request type, spans recorded, ...).
        events: the full event log when recording kept it (``None``
            for digest-only fingerprints); needed for divergence
            pinpointing.
    """

    digest: str
    n_events: int
    final_time: float
    summary: tuple[tuple[str, str], ...]
    events: tuple[EventRecord, ...] | None = None

    def same_digest(self, other: "Fingerprint") -> bool:
        """Whether both runs hashed to the same event stream."""
        return self.digest == other.digest


def _event_detail(event: Event) -> str:
    if isinstance(event, Process):
        return event.name or ""
    if isinstance(event, Timeout):
        return float(event.delay).hex()
    return ""


class RunRecorder:
    """An environment monitor that hashes every processed event.

    Arm it before the run starts, then call :meth:`finish` after
    ``env.run()`` returns::

        recorder = RunRecorder(env)
        ...
        env.run(until=duration)
        fingerprint = recorder.finish(app)

    Args:
        env: the environment to observe.
        keep_events: retain the full event log (needed for divergence
            reports; costs memory on long runs).
        max_events: hard cap on retained events; the digest always
            covers the whole run, but the log is truncated beyond the
            cap (reported fingerprints note the truncation).
    """

    def __init__(self, env: Environment, keep_events: bool = True,
                 max_events: int = 2_000_000) -> None:
        self.env = env
        self._hash = hashlib.blake2b(digest_size=16)
        self._keep = keep_events
        self._max_events = max_events
        self.events: list[EventRecord] = []
        self.n_events = 0
        self.truncated = False
        env.add_monitor(self._observe)

    def _observe(self, when: float, _sequence: int, event: Event) -> None:
        record = (float(when).hex(), type(event).__name__,
                  _event_detail(event))
        self.n_events += 1
        self._hash.update(
            f"{record[0]}|{record[1]}|{record[2]}\n".encode("utf-8"))
        if self._keep:
            if len(self.events) < self._max_events:
                self.events.append(record)
            else:
                self.truncated = True

    def detach(self) -> None:
        """Stop observing (idempotent)."""
        self.env.remove_monitor(self._observe)

    def finish(self, app: _t.Any = None,
               extra: _t.Mapping[str, object] | None = None
               ) -> Fingerprint:
        """Seal the recording into a :class:`Fingerprint`.

        Args:
            app: optional :class:`~repro.app.application.Application`;
                folds end-to-end completion counts and trace counts
                into the summary.
            extra: additional deterministic key/value metrics to fold
                in (values are stringified).
        """
        self.detach()
        summary: list[tuple[str, str]] = [
            ("final_time", float(self.env.now).hex()),
            ("n_events", str(self.n_events)),
        ]
        if app is not None:
            for request_type in sorted(app.latency):
                summary.append((f"completions.{request_type}",
                                str(app.latency[request_type].total)))
            summary.append(("submitted", str(app.total_submitted)))
            summary.append(("traces", str(app.warehouse.total_recorded)))
        for key in sorted(extra or {}):
            summary.append((key, str((extra or {})[key])))
        for key, value in summary:
            self._hash.update(f"{key}={value}\n".encode("utf-8"))
        return Fingerprint(
            digest=self._hash.hexdigest(),
            n_events=self.n_events,
            final_time=self.env.now,
            summary=tuple(summary),
            events=tuple(self.events) if self._keep else None)


def fingerprint_traces(roots: _t.Iterable[Span]) -> str:
    """Digest of a trace stream's canonical serialization.

    Spans are serialized in pre-order walk order with structural fields
    only (service, operation, replica, timestamps as exact hex), so the
    digest is stable across processes and independent of the global
    span-id counter.
    """
    digest = hashlib.blake2b(digest_size=16)
    for root in roots:
        for span in root.walk():
            start = "" if span.started is None \
                else float(span.started).hex()
            end = "" if span.departure is None \
                else float(span.departure).hex()
            digest.update(
                f"{span.service}|{span.operation}|{span.replica or ''}|"
                f"{float(span.arrival).hex()}|{start}|{end}\n"
                .encode("utf-8"))
        digest.update(b"--\n")
    return digest.hexdigest()
