"""Theory-conformance harness: simulator vs. exact MVA.

For each :class:`~repro.validation.scenarios.ConformanceScenario` the
harness solves the network analytically and simulates it, then compares

- system throughput,
- end-to-end response time (cycle time, think excluded),
- per-station residence time per visit (span self time), and
- per-station mean queue length (via Little's law on the measured
  throughput and residence — flagged as derived in the report),

each as a relative error against the MVA solution, gated by a declared
:class:`Tolerance`. Simulation measurements use the steady-state second
half of each run (the first half is warm-up), averaged over independent
replications with derived seeds — near the saturation knee queue
fluctuations mix slowly, and replications tighten the estimate faster
than a longer single run.

Declared tolerances (see EXPERIMENTS.md for the measured headroom):

====================  ===========  ==============  =============
station family        throughput   response time   queue length
====================  ===========  ==============  =============
single-core PS        2%           8%              10%
multi-core PS (LD)    3%           10%             12%
====================  ===========  ==============  =============

Throughput is the headline bound: the estimator's variance is dominated
by iid think-time draws, so averaging controls it tightly. Residence
and queue-length errors carry the slow-mixing queue fluctuation noise
and get honest, looser bounds; the typical measured error is well under
half the bound (see the verbose report).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.queueing import MvaResult, solve_mva
from repro.experiments.reporting import ascii_table
from repro.validation.scenarios import (
    ConformanceScenario,
    generate_scenarios,
)

#: Default master seed for conformance runs (any seed must pass; CI
#: pins one so failures are reproducible).
DEFAULT_SEED = 17

#: Independent replications averaged per scenario (seeds are derived
#: from the master seed).
DEFAULT_REPLICATIONS = 2


@dataclass(frozen=True)
class Tolerance:
    """Relative-error bounds for one scenario.

    Attributes:
        throughput: bound on system-throughput error.
        response_time: bound on end-to-end and per-station residence
            error.
        queue_length: bound on per-station mean-queue error.
    """

    throughput: float
    response_time: float
    queue_length: float

    @classmethod
    def for_scenario(cls, scenario: ConformanceScenario) -> "Tolerance":
        """The declared bound for a scenario's station family."""
        if any(c > 1 for c in scenario.cores):
            return cls(throughput=0.03, response_time=0.10,
                       queue_length=0.12)
        return cls(throughput=0.02, response_time=0.08,
                   queue_length=0.10)


@dataclass(frozen=True)
class StationError:
    """Sim-vs-theory agreement for one station.

    Residence times are *per visit*; queue lengths are mean jobs at the
    station (queued + in service).
    """

    station: str
    sim_residence: float
    mva_residence: float
    residence_error: float
    sim_queue: float
    mva_queue: float
    queue_error: float
    samples: int


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario's conformance check."""

    scenario: ConformanceScenario
    tolerance: Tolerance
    sim_throughput: float
    mva_throughput: float
    throughput_error: float
    sim_cycle_time: float
    mva_cycle_time: float
    cycle_time_error: float
    stations: tuple[StationError, ...]
    failures: tuple[str, ...]

    @property
    def passed(self) -> bool:
        """Whether every checked bound held for this scenario."""
        return not self.failures

    @property
    def worst_station_error(self) -> float:
        """Largest relative residence-time error across stations."""
        if not self.stations:
            return 0.0
        return max(s.residence_error for s in self.stations)


@dataclass
class ConformanceReport:
    """Aggregated outcome across a scenario family."""

    results: list[ScenarioResult] = field(default_factory=list)
    seed: int = DEFAULT_SEED

    @property
    def passed(self) -> bool:
        """Whether every scenario in the suite passed."""
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> list[str]:
        """Every failure message, prefixed with its scenario name."""
        return [f"{r.scenario.name}: {message}"
                for r in self.results for message in r.failures]

    def render(self, verbose: bool = False) -> str:
        """Human-readable report (per-station detail when verbose)."""
        rows = []
        for r in self.results:
            rows.append([
                r.scenario.name,
                "multi" if any(c > 1 for c in r.scenario.cores)
                else "single",
                r.scenario.population,
                f"{r.sim_throughput:.2f}/{r.mva_throughput:.2f}",
                f"{r.throughput_error * 100:.2f}%",
                f"{r.cycle_time_error * 100:.2f}%",
                f"{r.worst_station_error * 100:.2f}%",
                "PASS" if r.passed else "FAIL",
            ])
        out = [ascii_table(
            ["scenario", "family", "N", "X sim/mva [1/s]", "X err",
             "RT err", "worst station RT err", "verdict"], rows,
            title=f"Theory conformance (seed {self.seed}; tolerances: "
                  "single-core X 2% / RT 8%, multi-core X 3% / RT 10%)")]
        if verbose:
            for r in self.results:
                detail = [[
                    s.station, s.samples,
                    s.sim_residence * 1000, s.mva_residence * 1000,
                    f"{s.residence_error * 100:.2f}%",
                    f"{s.sim_queue:.3f}/{s.mva_queue:.3f}",
                    f"{s.queue_error * 100:.2f}%",
                ] for s in r.stations]
                out.append(ascii_table(
                    ["station", "spans", "R sim [ms]", "R mva [ms]",
                     "R err", "Q sim/mva (Little)", "Q err"], detail,
                    title=f"\n{r.scenario.name} — "
                          f"{r.scenario.description}"))
        if not self.passed:
            out.append("\nFailures:")
            out.extend(f"  - {line}" for line in self.failures)
        return "\n".join(out)


def _relative_error(sim: float, theory: float) -> float:
    if theory == 0.0:
        return 0.0 if sim == 0.0 else float("inf")
    return abs(sim - theory) / theory


def _measure(scenario: ConformanceScenario, seed: int
             ) -> tuple[float, float, dict[str, tuple[float, int]]]:
    """One replication: ``(X, cycle_time, {station: (residence, n)})``
    measured over the steady-state second half."""
    _env, app = scenario.run(seed)
    since, until = scenario.duration / 2.0, scenario.duration
    window = until - since
    times, latencies = app.latency["go"].window(since, until)
    throughput = times.size / window
    cycle = float(np.mean(latencies)) if latencies.size else 0.0
    residences: dict[str, tuple[float, int]] = {}
    for name in scenario.service_names:
        spans = app.warehouse.spans_for(name, since, until)
        self_times = np.asarray([span.self_time() for span in spans])
        mean = float(np.mean(self_times)) if self_times.size else 0.0
        residences[name] = (mean, int(self_times.size))
    return throughput, cycle, residences


def run_scenario_conformance(
        scenario: ConformanceScenario, seed: int = DEFAULT_SEED,
        replications: int = DEFAULT_REPLICATIONS) -> ScenarioResult:
    """Run one scenario through both solver and simulator and compare.

    Measurements are averaged over ``replications`` independent runs
    with seeds derived from ``seed``.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    theory: MvaResult = solve_mva(scenario.stations(),
                                  scenario.population,
                                  think_time=scenario.think_time)
    tolerance = Tolerance.for_scenario(scenario)
    runs = [_measure(scenario, seed + 101 * rep)
            for rep in range(replications)]
    sim_throughput = float(np.mean([x for x, _c, _r in runs]))
    sim_cycle = float(np.mean([c for _x, c, _r in runs]))

    failures: list[str] = []
    throughput_error = _relative_error(sim_throughput, theory.throughput)
    if throughput_error > tolerance.throughput:
        failures.append(
            f"throughput error {throughput_error * 100:.2f}% exceeds "
            f"{tolerance.throughput * 100:.1f}% "
            f"(sim {sim_throughput:.3f}, mva {theory.throughput:.3f})")
    cycle_error = _relative_error(sim_cycle, theory.cycle_time)
    if cycle_error > tolerance.response_time:
        failures.append(
            f"cycle-time error {cycle_error * 100:.2f}% exceeds "
            f"{tolerance.response_time * 100:.1f}% "
            f"(sim {sim_cycle * 1000:.2f} ms, "
            f"mva {theory.cycle_time * 1000:.2f} ms)")

    stations: list[StationError] = []
    for station, visits in zip(scenario.stations(), scenario.visits):
        per_run = [residences[station.name] for _x, _c, residences
                   in runs]
        samples = sum(n for _mean, n in per_run)
        sim_residence = float(np.mean([mean for mean, _n in per_run]))
        mva_residence = theory.response_times[station.name] / visits
        residence_error = _relative_error(sim_residence, mva_residence)
        # Little's law on measured quantities: station arrivals per
        # second are X * v, each staying sim_residence on average.
        sim_queue = sim_throughput * visits * sim_residence
        mva_queue = theory.queue_lengths[station.name]
        queue_error = _relative_error(sim_queue, mva_queue)
        stations.append(StationError(
            station=station.name, sim_residence=sim_residence,
            mva_residence=mva_residence,
            residence_error=residence_error, sim_queue=sim_queue,
            mva_queue=mva_queue, queue_error=queue_error,
            samples=samples))
        if residence_error > tolerance.response_time:
            failures.append(
                f"station {station.name}: residence error "
                f"{residence_error * 100:.2f}% exceeds "
                f"{tolerance.response_time * 100:.1f}%")
        if queue_error > tolerance.queue_length:
            failures.append(
                f"station {station.name}: queue error "
                f"{queue_error * 100:.2f}% exceeds "
                f"{tolerance.queue_length * 100:.1f}%")

    return ScenarioResult(
        scenario=scenario, tolerance=tolerance,
        sim_throughput=sim_throughput,
        mva_throughput=theory.throughput,
        throughput_error=throughput_error,
        sim_cycle_time=sim_cycle, mva_cycle_time=theory.cycle_time,
        cycle_time_error=cycle_error, stations=tuple(stations),
        failures=tuple(failures))


def run_conformance(
        scenarios: _t.Sequence[ConformanceScenario] | None = None,
        seed: int = DEFAULT_SEED,
        duration_scale: float = 1.0,
        replications: int = DEFAULT_REPLICATIONS) -> ConformanceReport:
    """Run the conformance family and aggregate a report.

    Args:
        scenarios: the family to check (defaults to the generated one).
        seed: master seed for every scenario run.
        duration_scale: multiplier on each scenario's duration — lower
            it for smoke runs (tolerances are calibrated for 1.0, so
            sub-unity scales are for plumbing checks, not gating).
        replications: independent runs averaged per scenario.
    """
    family = list(scenarios) if scenarios is not None \
        else generate_scenarios()
    if duration_scale != 1.0:
        from dataclasses import replace
        family = [replace(s, duration=s.duration * duration_scale)
                  for s in family]
    report = ConformanceReport(seed=seed)
    for scenario in family:
        report.results.append(
            run_scenario_conformance(scenario, seed,
                                     replications=replications))
    return report
