"""Per-run explainability report: text and HTML renderings.

Turns an :class:`~repro.obs.Observability` capture (decision log +
phase timings + engine profile + metrics) into the artifact a human
reads after a run: a timeline of every adaptation with its recorded
cause (knee point, propagated threshold, saturation rule), knee-curve
snapshots, hardware scale events, and where the controller's wall time
went. ``repro obs report`` is the CLI entry point.
"""

from __future__ import annotations

import html as _html
import typing as _t

from repro.obs.events import DecisionLog, DriftRecord, TargetDecision

if _t.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs import Observability


def _fmt_ms(seconds: float | None) -> str:
    return "-" if seconds is None else f"{seconds * 1e3:.1f}"


def _fmt_opt(value: float | None, spec: str = ".1f") -> str:
    return "-" if value is None else format(value, spec)


def _confidence(decision: TargetDecision) -> str:
    """Compact knee-confidence cell: samples / fit R² / prominence."""
    if (decision.samples is None and decision.fit_r2 is None
            and decision.knee_prominence is None):
        return "-"
    return (f"n={decision.samples if decision.samples is not None else '-'}"
            f" R²={_fmt_opt(decision.fit_r2, '.3f')}"
            f" prom={_fmt_opt(decision.knee_prominence, '.3f')}")


def _decision_rows(log: DecisionLog) -> list[list[str]]:
    rows = []
    for when, decision in log.applied():
        rows.append([
            f"{when:.1f}",
            decision.target,
            f"{decision.before} -> {decision.after}",
            decision.reason,
            decision.trigger,
            _fmt_ms(decision.threshold),
            _fmt_opt(decision.knee_concurrency),
            _fmt_opt(float(decision.poly_degree), ".0f")
            if decision.poly_degree is not None else "-",
            _confidence(decision),
        ])
    return rows


_DECISION_HEADERS = ["t[s]", "target", "allocation", "reason",
                     "trigger", "threshold[ms]", "knee Q", "degree",
                     "confidence"]


def _hold_counts(log: DecisionLog) -> dict[str, int]:
    counts: dict[str, int] = {}
    for record in log.rounds():
        for decision in record.decisions:
            if decision.outcome == "hold":
                counts[decision.reason] = \
                    counts.get(decision.reason, 0) + 1
    return counts


def _curve_snapshots(log: DecisionLog, limit: int = 4
                     ) -> list[tuple[float, TargetDecision]]:
    """The most recent applied decisions that carry a curve."""
    with_curves = [(when, d) for when, d in log.applied()
                   if d.curve]
    return with_curves[-limit:]


def _scale_rows(log: DecisionLog) -> list[list[str]]:
    return [[f"{r.time:.1f}", r.service, r.scale_kind,
             f"{r.before:g} -> {r.after:g}", r.autoscaler or "-"]
            for r in log.scale_events()]


_SCALE_HEADERS = ["t[s]", "service", "kind", "change", "autoscaler"]


def _drift_rows(log: DecisionLog) -> list[list[str]]:
    return [[f"{r.time:.1f}", r.target] for r in log.records("drift")
            if isinstance(r, DriftRecord)]


def _fault_rows(log: DecisionLog) -> list[list[str]]:
    return [[f"{r.time:.1f}", r.fault, r.phase,
             r.service or r.edge or "-",
             " ".join(f"{k}={v:g}" if isinstance(v, (int, float))
                      else f"{k}={v}"
                      for k, v in sorted(r.detail.items())) or "-"]
            for r in log.fault_events()]


_FAULT_HEADERS = ["t[s]", "fault", "phase", "where", "detail"]


def _alert_rows(log: DecisionLog) -> list[list[str]]:
    return [[f"{r.time:.1f}", r.slo, r.rule, r.phase, r.severity,
             f"{r.burn_long:.1f}x/{r.burn_short:.1f}x (>= {r.factor:g}x)",
             f"{r.budget_remaining * 100:.0f}%"]
            for r in log.alerts()]


_ALERT_HEADERS = ["t[s]", "slo", "rule", "phase", "severity",
                  "burn long/short", "budget left"]


def _localization_rows(log: DecisionLog,
                       limit: int = 8) -> list[list[str]]:
    rows = []
    for record in log.rounds()[-limit:]:
        top = sorted(record.correlations.items(),
                     key=lambda item: -item[1])[:3]
        rows.append([
            f"{record.time:.1f}",
            record.critical_service or "-",
            " ".join(f"{s}:{c:.2f}" for s, c in top) or "-",
            ",".join(record.candidates) or "-",
            str(record.traces),
        ])
    return rows


_LOCALIZATION_HEADERS = ["t[s]", "critical", "top correlations",
                         "util candidates", "traces"]


def _trace_analytics_rows(analytics) -> list[list[str]]:
    """Per-service streaming critical-path aggregates, worst first."""
    rows = []
    q_hi = max(analytics.duration.quantiles())
    for service in sorted(
            analytics.services(),
            key=lambda s: -analytics.self_time[s].mean):
        sketch = analytics.self_time[service]
        contribution = analytics.contribution[service]
        exemplar = analytics.slowest_by_service.get(service)
        rows.append([
            service,
            str(sketch.count),
            f"{sketch.mean * 1e3:.1f}",
            f"{sketch.quantile(0.5) * 1e3:.1f}",
            f"{sketch.quantile(q_hi) * 1e3:.1f}",
            f"{contribution.mean * 100:.0f}%",
            f"{analytics.correlations()[service]:.2f}",
            format(exemplar.trace_id, "x") if exemplar else "-",
        ])
    return rows


_TRACE_ANALYTICS_HEADERS = ["service", "n", "mean self[ms]", "p50[ms]",
                            "p99[ms]", "contrib", "PCC",
                            "exemplar trace"]


def _trace_path_rows(analytics) -> list[list[str]]:
    return [[" → ".join(p["services"]), str(p["count"]),
             f"{p['mean_duration'] * 1e3:.1f}"]
            for p in analytics.paths.top(5)]


_TRACE_PATH_HEADERS = ["critical path", "count", "mean duration[ms]"]


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def render_text(obs: "Observability", *, title: str = "run") -> str:
    """The explainability report as plain text."""
    from repro.experiments.reporting import ascii_table, sparkline

    log = obs.decisions
    lines: list[str] = [f"obs report — {title}",
                        "=" * (13 + len(title)), ""]

    applied = log.applied()
    lines.append(f"{len(log.rounds())} control rounds, "
                 f"{len(applied)} adaptations applied, "
                 f"{len(log.scale_events())} hardware scale events, "
                 f"{len(_drift_rows(log))} drift detections, "
                 f"{len(log.fault_events())} fault transitions, "
                 f"{len(log.alerts())} SLO alert transitions "
                 f"({log.total_recorded} records total)")
    lines.append("")

    fault_rows = _fault_rows(log)
    if fault_rows:
        lines.append(ascii_table(
            _FAULT_HEADERS, fault_rows,
            title="Injected faults (what the plan did to the system)"))
        lines.append("")

    alert_rows = _alert_rows(log)
    if alert_rows:
        lines.append(ascii_table(
            _ALERT_HEADERS, alert_rows,
            title="SLO burn-rate alerts (fire/clear transitions)"))
        lines.append("")

    if applied:
        lines.append(ascii_table(
            _DECISION_HEADERS, _decision_rows(log),
            title="Adaptation timeline (why each pool size changed)"))
    else:
        lines.append("No adaptations were applied.")
    lines.append("")

    holds = _hold_counts(log)
    if holds:
        lines.append(ascii_table(
            ["hold reason", "rounds"],
            [[reason, str(count)]
             for reason, count in sorted(holds.items())],
            title="Hold decisions (rounds that changed nothing)"))
        lines.append("")

    snapshots = _curve_snapshots(log)
    if snapshots:
        lines.append("Knee-curve snapshots (rate vs concurrency; "
                     "* marks the knee)")
        for when, decision in snapshots:
            assert decision.curve is not None
            rates = [rate for _q, rate in decision.curve]
            marker = ""
            if decision.knee_concurrency is not None:
                qs = [q for q, _r in decision.curve]
                nearest = min(range(len(qs)), key=lambda i: abs(
                    qs[i] - _t.cast(float, decision.knee_concurrency)))
                marker = (f"  knee at Q={decision.knee_concurrency:.1f}"
                          f" (col {nearest + 1})")
            lines.append(f"  t={when:.1f} {decision.target} "
                         f"[{decision.method}] "
                         f"{sparkline(rates, width=48)}{marker}")
        lines.append("")

    localization = _localization_rows(log)
    if localization:
        lines.append(ascii_table(
            _LOCALIZATION_HEADERS, localization,
            title="Localization (most recent rounds)"))
        lines.append("")

    analytics = getattr(obs, "trace_analytics", None)
    if analytics is not None and analytics.traces_observed:
        lines.append(ascii_table(
            _TRACE_ANALYTICS_HEADERS, _trace_analytics_rows(analytics),
            title=f"Streaming critical-path aggregates "
                  f"({analytics.traces_observed} traces, pre-sampling)"))
        lines.append("")
        lines.append(ascii_table(
            _TRACE_PATH_HEADERS, _trace_path_rows(analytics),
            title="Top critical-path patterns"))
        lines.append("")
    sampler = getattr(obs, "trace_sampler", None)
    if sampler is not None and sampler.total:
        cov = sampler.coverage()
        lines.append(
            f"Trace sampling ({cov['sampler']}): kept "
            f"{cov['kept']}/{cov['total']} "
            f"({cov['stored_fraction'] * 100:.1f}%), SLO-violating "
            f"retention {cov['slo_violating']['retention'] * 100:.1f}% "
            f"({cov['slo_violating']['kept']}"
            f"/{cov['slo_violating']['total']})")
        lines.append("")

    scale_rows = _scale_rows(log)
    if scale_rows:
        lines.append(ascii_table(_SCALE_HEADERS, scale_rows,
                                 title="Hardware scale events"))
        lines.append("")

    drift_rows = _drift_rows(log)
    if drift_rows:
        lines.append(ascii_table(["t[s]", "target"], drift_rows,
                                 title="Drift detections"))
        lines.append("")

    phases = obs.profiler.summary()
    if phases:
        lines.append(ascii_table(
            ["phase", "calls", "total[ms]", "mean[ms]", "max[ms]"],
            [[name, str(stats["count"]), f"{stats['total_ms']:.2f}",
              f"{stats['mean_ms']:.3f}", f"{stats['max_ms']:.3f}"]
             for name, stats in phases.items()],
            title="Control-loop phase timings (wall clock)"))
        lines.append("")

    if obs.engine is not None:
        engine = obs.engine.summary()
        lines.append("Event loop: "
                     f"{engine['events']:,} events in "
                     f"{engine['wall_seconds']:.3f}s wall "
                     f"({engine['events_per_sec']:,.0f} events/s), "
                     f"queue depth mean {engine['queue_depth_mean']:g} "
                     f"max {engine['queue_depth_max']}")
        lines.append("")

    metrics = obs.registry.snapshot()
    if metrics:
        rows = []
        for name, snap in metrics.items():
            if snap["type"] == "counter":
                rows.append([name, f"{snap['value']:g}"])
            elif snap["type"] == "gauge":
                rows.append([name, _fmt_opt(snap["value"], "g")])
            else:
                rows.append([name, f"n={snap['count']}" + (
                    f" mean={snap['mean']:.4g} p95={snap['p95']:.4g}"
                    if snap["count"] else "")])
        lines.append(ascii_table(["metric", "value"], rows,
                                 title="Metrics registry"))
    return "\n".join(lines).rstrip() + "\n"


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------
_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 72em; color: #1a1a2e; padding: 0 1em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #cbd2dc; padding: 0.25em 0.6em;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #eef1f6; }
.summary { color: #444; }
svg { background: #fafbfd; border: 1px solid #cbd2dc; }
.knee-label { font-size: 11px; fill: #b4231f; }
"""


def _html_table(headers: _t.Sequence[str],
                rows: _t.Sequence[_t.Sequence[str]]) -> str:
    head = "".join(f"<th>{_html.escape(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_html.escape(str(c))}</td>"
                         for c in row) + "</tr>"
        for row in rows)
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{body}</tbody></table>")


def _curve_svg(decision: TargetDecision, width: int = 320,
               height: int = 120, pad: int = 8) -> str:
    """Inline SVG of one fitted curve with the knee marked."""
    assert decision.curve is not None
    qs = [q for q, _r in decision.curve]
    rs = [r for _q, r in decision.curve]
    q_lo, q_hi = min(qs), max(qs)
    r_lo, r_hi = min(rs), max(rs)
    q_span = (q_hi - q_lo) or 1.0
    r_span = (r_hi - r_lo) or 1.0

    def sx(q: float) -> float:
        return pad + (q - q_lo) / q_span * (width - 2 * pad)

    def sy(r: float) -> float:
        return height - pad - (r - r_lo) / r_span * (height - 2 * pad)

    points = " ".join(f"{sx(q):.1f},{sy(r):.1f}"
                      for q, r in zip(qs, rs))
    knee = ""
    if decision.knee_concurrency is not None:
        kx = sx(decision.knee_concurrency)
        knee = (f'<line x1="{kx:.1f}" y1="{pad}" x2="{kx:.1f}" '
                f'y2="{height - pad}" stroke="#b4231f" '
                f'stroke-dasharray="4 3"/>'
                f'<text x="{kx + 4:.1f}" y="{pad + 10}" '
                f'class="knee-label">knee '
                f'Q={decision.knee_concurrency:.1f}</text>')
    return (f'<svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            f'<polyline fill="none" stroke="#2a6fb0" '
            f'stroke-width="1.5" points="{points}"/>{knee}</svg>')


def render_html(obs: "Observability", *, title: str = "run") -> str:
    """The explainability report as a self-contained HTML document."""
    log = obs.decisions
    parts: list[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>obs report — {_html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>obs report — {_html.escape(title)}</h1>",
        f"<p class='summary'>{len(log.rounds())} control rounds · "
        f"{len(log.applied())} adaptations applied · "
        f"{len(log.scale_events())} hardware scale events · "
        f"{len(_drift_rows(log))} drift detections · "
        f"{len(log.fault_events())} fault transitions · "
        f"{len(log.alerts())} SLO alert transitions · "
        f"{log.total_recorded} records total</p>",
    ]

    fault_rows = _fault_rows(log)
    if fault_rows:
        parts.append("<h2>Injected faults</h2>")
        parts.append(_html_table(_FAULT_HEADERS, fault_rows))

    alert_rows = _alert_rows(log)
    if alert_rows:
        parts.append("<h2>SLO burn-rate alerts</h2>")
        parts.append(_html_table(_ALERT_HEADERS, alert_rows))

    rows = _decision_rows(log)
    parts.append("<h2>Adaptation timeline</h2>")
    parts.append(_html_table(_DECISION_HEADERS, rows) if rows
                 else "<p>No adaptations were applied.</p>")

    holds = _hold_counts(log)
    if holds:
        parts.append("<h2>Hold decisions</h2>")
        parts.append(_html_table(
            ["hold reason", "rounds"],
            [[reason, str(count)]
             for reason, count in sorted(holds.items())]))

    snapshots = _curve_snapshots(log)
    if snapshots:
        parts.append("<h2>Knee-curve snapshots</h2>")
        for when, decision in snapshots:
            parts.append(
                f"<p>t={when:.1f}s — {_html.escape(decision.target)} "
                f"({_html.escape(decision.method or '-')}, "
                f"{decision.before} → {decision.after})</p>")
            parts.append(_curve_svg(decision))

    localization = _localization_rows(log)
    if localization:
        parts.append("<h2>Localization (most recent rounds)</h2>")
        parts.append(_html_table(_LOCALIZATION_HEADERS, localization))

    analytics = getattr(obs, "trace_analytics", None)
    if analytics is not None and analytics.traces_observed:
        parts.append("<h2>Streaming critical-path aggregates</h2>")
        parts.append(
            f"<p class='summary'>{analytics.traces_observed} traces "
            "aggregated before any sampling decision</p>")
        parts.append(_html_table(_TRACE_ANALYTICS_HEADERS,
                                 _trace_analytics_rows(analytics)))
        parts.append("<h2>Top critical-path patterns</h2>")
        parts.append(_html_table(_TRACE_PATH_HEADERS,
                                 _trace_path_rows(analytics)))
    sampler = getattr(obs, "trace_sampler", None)
    if sampler is not None and sampler.total:
        cov = sampler.coverage()
        parts.append("<h2>Trace sampling coverage</h2>")
        parts.append(
            f"<p>{_html.escape(cov['sampler'])} sampler kept "
            f"{cov['kept']}/{cov['total']} traces "
            f"({cov['stored_fraction'] * 100:.1f}%); SLO-violating "
            f"retention "
            f"{cov['slo_violating']['retention'] * 100:.1f}% "
            f"({cov['slo_violating']['kept']}"
            f"/{cov['slo_violating']['total']})</p>")

    scale_rows = _scale_rows(log)
    if scale_rows:
        parts.append("<h2>Hardware scale events</h2>")
        parts.append(_html_table(_SCALE_HEADERS, scale_rows))

    drift_rows = _drift_rows(log)
    if drift_rows:
        parts.append("<h2>Drift detections</h2>")
        parts.append(_html_table(["t[s]", "target"], drift_rows))

    phases = obs.profiler.summary()
    if phases:
        parts.append("<h2>Control-loop phase timings</h2>")
        parts.append(_html_table(
            ["phase", "calls", "total[ms]", "mean[ms]", "max[ms]"],
            [[name, str(stats["count"]), f"{stats['total_ms']:.2f}",
              f"{stats['mean_ms']:.3f}", f"{stats['max_ms']:.3f}"]
             for name, stats in phases.items()]))

    if obs.engine is not None:
        engine = obs.engine.summary()
        parts.append("<h2>Event loop</h2>")
        parts.append(
            f"<p>{engine['events']:,} events in "
            f"{engine['wall_seconds']:.3f}s wall "
            f"({engine['events_per_sec']:,.0f} events/s); queue depth "
            f"mean {engine['queue_depth_mean']:g}, "
            f"max {engine['queue_depth_max']}</p>")

    metrics = obs.registry.snapshot()
    if metrics:
        parts.append("<h2>Metrics registry</h2>")
        rows = []
        for name, snap in metrics.items():
            if snap["type"] == "counter":
                rows.append([name, f"{snap['value']:g}"])
            elif snap["type"] == "gauge":
                rows.append([name, _fmt_opt(snap["value"], "g")])
            else:
                rows.append([name, f"n={snap['count']}" + (
                    f" mean={snap['mean']:.4g} p95={snap['p95']:.4g}"
                    if snap["count"] else "")])
        parts.append(_html_table(["metric", "value"], rows))

    parts.append("</body></html>")
    return "".join(parts)
