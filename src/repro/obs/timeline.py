"""Simulation-time telemetry timeline: bounded named series + annotations.

The :class:`Timeline` is the streaming half of ``repro.obs``: while a
run unfolds, emission hooks (the harness telemetry pump, the monitoring
module, the controllers, the SLO monitor) record named series — goodput,
latency percentiles, pool size, CPU utilization, breaker state, burn
rate — into bounded :class:`SeriesBuffer`s. Decision/fault/drift/alert
*annotations* are not stored here: they already live in the
:class:`~repro.obs.events.DecisionLog`, and
:func:`annotations_from_log` projects them onto the time axis at render
time so the dashboard shows series and causes on one axis.

Memory is bounded by construction: a full buffer is decimated in place
(every other retained sample dropped, recording stride doubled), so an
arbitrarily long run converges to ``capacity`` points spanning the whole
run at progressively coarser resolution — the classic "zoomable flight
recorder" compromise.

Like the PR-3 registry, a disabled timeline is a shared no-op singleton
(:data:`NULL_TIMELINE`): hot call sites guard with ``if timeline:`` and
pay one truthiness check, which preserves the PR-2 fast paths and keeps
default (telemetry-off) runs byte-identical at the event-stream level.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.obs.events import DecisionLog

__all__ = [
    "Annotation",
    "NULL_TIMELINE",
    "SeriesBuffer",
    "Timeline",
    "annotations_from_log",
]


class SeriesBuffer:
    """One bounded, decimating time series.

    Args:
        name: series label (dashboard axis title).
        capacity: maximum retained points (>= 8). On overflow the
            buffer halves itself by dropping every other point and
            doubles its recording stride.
    """

    __slots__ = ("name", "_times", "_values", "_size", "_stride",
                 "_pending", "total_appended")

    def __init__(self, name: str, capacity: int = 720) -> None:
        if capacity < 8:
            raise ValueError(f"capacity must be >= 8, got {capacity}")
        self.name = name
        self._times = np.empty(capacity, dtype=np.float64)
        self._values = np.empty(capacity, dtype=np.float64)
        self._size = 0
        self._stride = 1
        self._pending = 0
        #: Observations offered over the series' lifetime (recorded or
        #: skipped by the stride) — the memory-bound proof reads this.
        self.total_appended = 0

    @property
    def capacity(self) -> int:
        """Maximum retained points."""
        return int(self._times.shape[0])

    @property
    def stride(self) -> int:
        """Current decimation stride (1 = every append recorded)."""
        return self._stride

    def append(self, time: float, value: float) -> None:
        """Offer one sample; recorded every ``stride``-th call."""
        self.total_appended += 1
        self._pending += 1
        if self._pending < self._stride:
            return
        self._pending = 0
        size = self._size
        if size == self._times.shape[0]:
            self._decimate()
            size = self._size
        self._times[size] = time
        self._values[size] = value
        self._size = size + 1

    def _decimate(self) -> None:
        """Drop every other retained point and double the stride."""
        size = self._size
        kept = (size + 1) // 2
        self._times[:kept] = self._times[0:size:2]
        self._values[:kept] = self._values[0:size:2]
        self._size = kept
        self._stride *= 2

    def data(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` of the retained points (read-only views)."""
        return self._times[:self._size], self._values[:self._size]

    def latest(self) -> tuple[float, float]:
        """The most recent retained ``(time, value)``."""
        if self._size == 0:
            raise ValueError(f"series {self.name!r} is empty")
        return (float(self._times[self._size - 1]),
                float(self._values[self._size - 1]))

    def __len__(self) -> int:
        return self._size

    def to_dict(self) -> dict:
        """JSON-ready snapshot of the retained points."""
        times, values = self.data()
        return {
            "name": self.name,
            "capacity": self.capacity,
            "stride": self._stride,
            "total_appended": self.total_appended,
            "times": [round(float(t), 6) for t in times],
            "values": [_json_float(v) for v in values],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SeriesBuffer":
        """Rebuild a buffer from its :meth:`to_dict` payload."""
        buffer = cls(payload["name"],
                     capacity=payload.get("capacity", 720))
        times = payload.get("times", ())
        values = payload.get("values", ())
        size = min(len(times), len(values), buffer.capacity)
        buffer._times[:size] = np.asarray(times[:size], dtype=np.float64)
        raw = [float("nan") if v is None else float(v)
               for v in values[:size]]
        buffer._values[:size] = np.asarray(raw, dtype=np.float64)
        buffer._size = size
        buffer._stride = int(payload.get("stride", 1))
        buffer.total_appended = int(payload.get("total_appended", size))
        return buffer


def _json_float(value: float) -> float | None:
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return round(value, 6)


class _NullSeries:
    """Shared inert series handed out by a disabled timeline."""

    __slots__ = ()
    name = "null"
    capacity = 0
    stride = 1
    total_appended = 0

    def append(self, time: float, value: float) -> None:
        """No-op."""

    def data(self) -> tuple[np.ndarray, np.ndarray]:
        """Always empty."""
        return _EMPTY, _EMPTY

    def __len__(self) -> int:
        return 0


_EMPTY = np.empty(0, dtype=np.float64)
NULL_SERIES = _NullSeries()


class Timeline:
    """Run-scoped set of named bounded series.

    ``series()`` creates on first use; a disabled timeline returns the
    shared no-op series and records nothing. Truthiness mirrors
    ``enabled`` so hot paths guard with ``if timeline:``.

    Args:
        enabled: master switch.
        capacity: per-series retained-point bound.
    """

    def __init__(self, enabled: bool = True, capacity: int = 720) -> None:
        if capacity < 8:
            raise ValueError(f"capacity must be >= 8, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self._series: dict[str, SeriesBuffer] = {}

    def __bool__(self) -> bool:
        return self.enabled

    def series(self, name: str) -> SeriesBuffer:
        """The named series, created on first use (no-op when disabled)."""
        if not self.enabled:
            return _t.cast(SeriesBuffer, NULL_SERIES)
        buffer = self._series.get(name)
        if buffer is None:
            buffer = SeriesBuffer(name, capacity=self.capacity)
            self._series[name] = buffer
        return buffer

    def record(self, name: str, time: float, value: float) -> None:
        """Append one sample to the named series (no-op when disabled)."""
        if self.enabled:
            self.series(name).append(time, value)

    def names(self) -> list[str]:
        """Recorded series names, sorted."""
        return sorted(self._series)

    def items(self) -> list[tuple[str, SeriesBuffer]]:
        """``(name, buffer)`` pairs, sorted by name."""
        return sorted(self._series.items())

    def __len__(self) -> int:
        return len(self._series)

    def to_dict(self) -> dict:
        """JSON-ready snapshot of every series."""
        return {
            "capacity": self.capacity,
            "series": {name: buffer.to_dict()
                       for name, buffer in sorted(self._series.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Timeline":
        """Rebuild a timeline from its :meth:`to_dict` payload."""
        timeline = cls(enabled=True,
                       capacity=payload.get("capacity", 720))
        for name, series in payload.get("series", {}).items():
            timeline._series[name] = SeriesBuffer.from_dict(series)
        return timeline


#: Shared disabled instance — the default for every emission hook.
NULL_TIMELINE = Timeline(enabled=False)


@_t.final
class Annotation(_t.NamedTuple):
    """One time-axis marker projected from the decision log."""

    time: float
    #: "decision" | "drift" | "fault" | "alert" | "scale".
    kind: str
    #: Short human label ("cart.threads 5→12", "fast-burn fire", ...).
    label: str


def annotations_from_log(log: DecisionLog) -> list[Annotation]:
    """Project decision-log records onto the dashboard's time axis.

    Applied allocation changes, drift detections, fault transitions,
    hardware scale events, and SLO alerts each become one
    :class:`Annotation`, sorted by time.
    """
    annotations: list[Annotation] = []
    for when, decision in log.applied():
        annotations.append(Annotation(
            when, "decision",
            f"{decision.target} {decision.before}→{decision.after} "
            f"({decision.reason})"))
    for record in log.records("drift"):
        annotations.append(Annotation(
            record.time, "drift", f"drift: {record.target}"))
    for record in log.fault_events():
        where = record.service or record.edge or ""
        annotations.append(Annotation(
            record.time, "fault",
            f"{record.fault} {record.phase} {where}".strip()))
    for record in log.scale_events():
        annotations.append(Annotation(
            record.time, "scale",
            f"{record.service} {record.scale_kind} "
            f"{record.before:g}→{record.after:g}"))
    for record in log.records("alert"):
        annotations.append(Annotation(
            record.time, "alert",
            f"{record.rule} {record.phase} "
            f"(burn {record.burn_long:.1f}x)"))
    annotations.sort(key=lambda a: (a.time, a.kind, a.label))
    return annotations
