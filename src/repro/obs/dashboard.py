"""Annotated run dashboard: self-contained HTML and text sparklines.

Renders the streaming telemetry of one run — every
:class:`~repro.obs.timeline.Timeline` series stacked on a shared
simulated-time axis, with decision / drift / fault / scale / SLO-alert
annotations projected from the :class:`~repro.obs.events.DecisionLog`
as vertical markers across *all* panels. That single shared axis is the
point: "the fault landed, burn rate spiked, the fast-burn alert paged,
drift fired, the pool re-converged" reads as one left-to-right story.

The HTML document is fully self-contained — inline SVG, inline CSS and
a small inline script (marker-class toggles); no external URLs, fonts,
or CDN assets — so it can be archived next to the run result and opened
from anywhere (``tools/check_links.py --html`` enforces this).
``render_sparklines`` is the terminal-friendly fallback for the same
data.
"""

from __future__ import annotations

import html as _html
import math
import typing as _t

from repro.obs.timeline import Annotation, Timeline, annotations_from_log

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability

__all__ = ["render_dashboard_html", "render_sparklines"]

#: Marker palette per annotation kind (also the legend order).
_KIND_STYLE: dict[str, tuple[str, str]] = {
    "fault": ("#b4771f", "fault injected/recovered"),
    "alert": ("#d1242f", "SLO burn-rate alert"),
    "drift": ("#7a1fa2", "Page-Hinkley drift"),
    "decision": ("#2a6fb0", "pool adaptation applied"),
    "scale": ("#1f7a4d", "hardware scale event"),
}


def _time_domain(timeline: Timeline,
                 annotations: _t.Sequence[Annotation]
                 ) -> tuple[float, float]:
    lo, hi = math.inf, -math.inf
    for _name, series in timeline.items():
        times, _values = series.data()
        if times.size:
            lo = min(lo, float(times[0]))
            hi = max(hi, float(times[-1]))
    for note in annotations:
        lo = min(lo, note.time)
        hi = max(hi, note.time)
    if lo > hi:
        return 0.0, 1.0
    if lo == hi:
        return lo, lo + 1.0
    return lo, hi


def _finite_points(times, values) -> list[tuple[float, float]]:
    return [(float(t), float(v)) for t, v in zip(times, values)
            if v == v and not math.isinf(v)]


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------
_WIDTH, _PANEL_H, _PAD_L, _PAD_R, _PAD_V = 860, 110, 64, 12, 14

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 64em; color: #1a1a2e; padding: 0 1em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.05em; margin: 1.2em 0 0.2em; }
.summary { color: #444; }
svg { background: #fafbfd; border: 1px solid #cbd2dc; display: block; }
.axis { font-size: 11px; fill: #555; }
.series-line { fill: none; stroke: #2a6fb0; stroke-width: 1.4; }
.marker { stroke-width: 1.2; stroke-dasharray: 3 3; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #cbd2dc; padding: 0.2em 0.55em;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #eef1f6; }
.legend span { margin-right: 1.2em; white-space: nowrap; }
.swatch { display: inline-block; width: 0.9em; height: 0.9em;
          vertical-align: -0.1em; margin-right: 0.35em; }
label.toggle { margin-right: 1em; user-select: none; }
"""

_JS = """
function toggleKind(kind, visible) {
  document.querySelectorAll('.marker-' + kind).forEach(function (el) {
    el.style.display = visible ? '' : 'none';
  });
}
document.querySelectorAll('input[data-kind]').forEach(function (box) {
  box.addEventListener('change', function () {
    toggleKind(box.dataset.kind, box.checked);
  });
});
"""


def _fmt_axis(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.01:
        return f"{value:.2g}"
    return f"{value:.4g}"


def _panel_svg(name: str, points: list[tuple[float, float]],
               t_lo: float, t_hi: float,
               annotations: _t.Sequence[Annotation]) -> str:
    """One series panel: polyline + shared-axis annotation markers."""
    width, height = _WIDTH, _PANEL_H
    plot_w = width - _PAD_L - _PAD_R
    plot_h = height - 2 * _PAD_V
    values = [v for _t_, v in points]
    v_lo = min(values) if values else 0.0
    v_hi = max(values) if values else 1.0
    if v_lo == v_hi:
        v_lo, v_hi = v_lo - 0.5, v_hi + 0.5
    t_span = (t_hi - t_lo) or 1.0
    v_span = v_hi - v_lo

    def sx(t: float) -> float:
        return _PAD_L + (t - t_lo) / t_span * plot_w

    def sy(v: float) -> float:
        return height - _PAD_V - (v - v_lo) / v_span * plot_h

    poly = " ".join(f"{sx(t):.1f},{sy(v):.1f}" for t, v in points)
    markers = []
    for note in annotations:
        color, _ = _KIND_STYLE.get(note.kind, ("#888", ""))
        x = sx(note.time)
        markers.append(
            f'<line class="marker marker-{note.kind}" x1="{x:.1f}" '
            f'y1="{_PAD_V}" x2="{x:.1f}" y2="{height - _PAD_V}" '
            f'stroke="{color}"><title>t={note.time:.1f}s '
            f'{_html.escape(note.label)}</title></line>')
    return (
        f'<h2>{_html.escape(name)}</h2>'
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{_html.escape(name)} over simulated time">'
        f'<text class="axis" x="4" y="{_PAD_V + 9}">'
        f'{_fmt_axis(v_hi)}</text>'
        f'<text class="axis" x="4" y="{height - _PAD_V}">'
        f'{_fmt_axis(v_lo)}</text>'
        f'<text class="axis" x="{_PAD_L}" y="{height - 2}">'
        f'{t_lo:.0f}s</text>'
        f'<text class="axis" x="{width - _PAD_R - 40}" '
        f'y="{height - 2}">{t_hi:.0f}s</text>'
        f'<polyline class="series-line" points="{poly}"/>'
        f'{"".join(markers)}</svg>')


# Flame-segment palette, assigned to services in sorted order.
_FLAME_COLORS = ("#2a6fb0", "#1f7a4d", "#b4771f", "#7a1fa2", "#d1242f",
                 "#0f766e", "#9a3412", "#4c1d95", "#155e75", "#713f12")


def _flame_svg(analytics) -> str:
    """Critical-path flame view: top path patterns as stacked bars.

    One row per top path pattern (by observed count); within a row,
    one segment per service sized by its mean critical-path self time,
    over a faint bar showing the pattern's mean end-to-end duration.
    Hover a segment for mean/P99 self time.
    """
    paths = analytics.paths.top(5)
    if not paths:
        return ""
    color = {service: _FLAME_COLORS[i % len(_FLAME_COLORS)]
             for i, service in enumerate(analytics.services())}
    row_h, gap = 24, 8
    plot_w = _WIDTH - _PAD_L - _PAD_R - 150
    scale = max(p["mean_duration"] for p in paths) or 1.0
    height = (row_h + gap) * len(paths) + 2 * _PAD_V
    total = sum(p["count"] for p in paths) or 1
    parts = [
        f'<svg width="{_WIDTH}" height="{height}" '
        f'viewBox="0 0 {_WIDTH} {height}" role="img" '
        f'aria-label="critical-path flame view">']
    y = float(_PAD_V)
    for rank, p in enumerate(paths, start=1):
        bar_w = p["mean_duration"] / scale * plot_w
        parts.append(
            f'<text class="axis" x="4" y="{y + row_h / 2 + 4:.1f}">'
            f'#{rank}</text>')
        parts.append(
            f'<rect x="{_PAD_L}" y="{y:.1f}" width="{bar_w:.1f}" '
            f'height="{row_h}" fill="#e4e9f1"/>')
        x = float(_PAD_L)
        for service in p["services"]:
            sketch = analytics.self_time.get(service)
            if sketch is None or not sketch.count:
                continue
            seg_w = max(1.0, sketch.mean / scale * plot_w)
            p99 = sketch.quantile(max(sketch.quantiles()))
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{seg_w:.1f}" '
                f'height="{row_h}" fill="{color[service]}" '
                f'stroke="#fafbfd" stroke-width="0.5">'
                f'<title>{_html.escape(service)}: mean self '
                f'{sketch.mean * 1e3:.1f}ms · p{max(sketch.quantiles()) * 100:g} '
                f'{p99 * 1e3:.1f}ms</title></rect>')
            if seg_w > 7 * len(service):
                parts.append(
                    f'<text class="axis" x="{x + 3:.1f}" '
                    f'y="{y + row_h / 2 + 4:.1f}" fill="#fff">'
                    f'{_html.escape(service)}</text>')
            x += seg_w
        parts.append(
            f'<text class="axis" x="{_PAD_L + plot_w + 8:.1f}" '
            f'y="{y + row_h / 2 + 4:.1f}">×{p["count"]} '
            f'({p["count"] / total * 100:.0f}%) '
            f'{p["mean_duration"] * 1e3:.0f}ms</text>')
        y += row_h + gap
    parts.append("</svg>")
    return "".join(parts)


def _coverage_table(sampler) -> str:
    """Sampling-coverage panel: totals, reasons, SLO retention."""
    cov = sampler.coverage()
    slo = cov["slo_violating"]
    reasons = ", ".join(f"{reason}: {count}" for reason, count
                        in cov["kept_by_reason"].items()) or "—"
    retention = (f"{slo['retention'] * 100:.1f}% "
                 f"({slo['kept']}/{slo['total']})"
                 if slo["total"] else "no violations")
    rows = [
        ("sampler", f"{cov['sampler']}"
         + (f" (bulk rate {cov['rate']:g})" if "rate" in cov else "")),
        ("traces seen", f"{cov['total']}"),
        ("traces stored", f"{cov['kept']} "
         f"({cov['stored_fraction'] * 100:.1f}%)"),
        ("kept by reason", reasons),
        ("SLO-violating retained", retention),
    ]
    body = "".join(f"<tr><th>{_html.escape(k)}</th>"
                   f"<td>{_html.escape(v)}</td></tr>" for k, v in rows)
    return f"<table><tbody>{body}</tbody></table>"


def render_dashboard_html(obs: "Observability", *,
                          title: str = "run",
                          extra_html: str = "") -> str:
    """The annotated run dashboard as one self-contained HTML page.

    Every recorded timeline series becomes a stacked SVG panel over a
    shared simulated-time axis; decision-log annotations are drawn as
    vertical markers on every panel (hover for detail, checkboxes to
    toggle per kind). Raises ``ValueError`` when the run recorded no
    telemetry at all.

    ``extra_html`` is injected verbatim before the closing script tag
    — callers (the service's live ops console) append their own
    sections while reusing the page chrome; they are responsible for
    keeping it self-contained (no external references).
    """
    timeline = obs.timeline
    annotations = annotations_from_log(obs.decisions)
    analytics = getattr(obs, "trace_analytics", None)
    sampler = getattr(obs, "trace_sampler", None)
    if analytics is not None and not analytics.traces_observed:
        analytics = None
    if len(timeline) == 0 and not annotations and analytics is None:
        raise ValueError(
            "nothing to render: the run recorded no timeline series "
            "and no decision-log annotations (telemetry disabled?)")
    t_lo, t_hi = _time_domain(timeline, annotations)

    parts: list[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>obs dashboard — {_html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>obs dashboard — {_html.escape(title)}</h1>",
        f"<p class='summary'>{len(timeline)} series · "
        f"{len(annotations)} annotations · "
        f"t ∈ [{t_lo:.0f}s, {t_hi:.0f}s]",
    ]
    if obs.slo is not None:
        slo = obs.slo
        compliance = slo.compliance()
        parts.append(
            f" · SLO «{_html.escape(slo.spec.name)}»: "
            f"{compliance * 100:.2f}% good "
            f"(objective {slo.spec.objective * 100:g}%, "
            f"{slo.alerts_fired} alerts fired)"
            if compliance == compliance else
            f" · SLO «{_html.escape(slo.spec.name)}»: no traffic")
    parts.append("</p>")

    used_kinds = sorted({note.kind for note in annotations})
    if used_kinds:
        parts.append("<p class='legend'>")
        for kind in _KIND_STYLE:
            if kind not in used_kinds:
                continue
            color, caption = _KIND_STYLE[kind]
            parts.append(
                f"<label class='toggle'><input type='checkbox' checked "
                f"data-kind='{kind}'>"
                f"<span class='swatch' style='background:{color}'></span>"
                f"{_html.escape(caption)}</label>")
        parts.append("</p>")

    for name, series in timeline.items():
        points = _finite_points(*series.data())
        if not points:
            continue
        parts.append(_panel_svg(name, points, t_lo, t_hi, annotations))

    if analytics is not None:
        q_max = max(analytics.duration.quantiles())
        parts.append("<h2>Critical-path flame view</h2>")
        parts.append(
            f"<p class='summary'>{analytics.traces_observed} traces "
            f"aggregated (streaming, pre-sampling) · end-to-end "
            f"p{q_max * 100:g} "
            f"{analytics.duration.quantile(q_max) * 1e3:.1f}ms · "
            f"{len(analytics.paths)} path patterns</p>")
        parts.append(_flame_svg(analytics))
    if sampler is not None:
        parts.append("<h2>Sampling coverage</h2>")
        parts.append(_coverage_table(sampler))

    if annotations:
        parts.append("<h2>Annotations</h2>")
        rows = "".join(
            f"<tr><td>{note.time:.1f}</td>"
            f"<td>{_html.escape(note.kind)}</td>"
            f"<td>{_html.escape(note.label)}</td></tr>"
            for note in annotations)
        parts.append(
            "<table><thead><tr><th>t[s]</th><th>kind</th>"
            "<th>event</th></tr></thead>"
            f"<tbody>{rows}</tbody></table>")

    if extra_html:
        parts.append(extra_html)
    parts.append(f"<script>{_JS}</script></body></html>")
    return "".join(parts)


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def render_sparklines(obs: "Observability", *, title: str = "run",
                      width: int = 60) -> str:
    """The dashboard's terminal fallback: one sparkline per series.

    Annotations are rendered as a marker row under each sparkline
    (``f``\\ ault, ``a``\\ lert, ``d``\\ rift, adaptation ``p``\\ ool
    change, ``s``\\ cale) plus a chronological event list.
    """
    from repro.experiments.reporting import sparkline

    timeline = obs.timeline
    annotations = annotations_from_log(obs.decisions)
    t_lo, t_hi = _time_domain(timeline, annotations)
    t_span = (t_hi - t_lo) or 1.0
    glyphs = {"fault": "f", "alert": "a", "drift": "d",
              "decision": "p", "scale": "s"}

    marker_row = [" "] * width
    for note in annotations:
        column = int((note.time - t_lo) / t_span * (width - 1))
        marker_row[column] = glyphs.get(note.kind, "?")
    marker_line = "".join(marker_row)

    lines = [f"obs dashboard — {title}",
             "=" * (16 + len(title)), "",
             f"t ∈ [{t_lo:.0f}s, {t_hi:.0f}s] · {len(timeline)} series "
             f"· {len(annotations)} annotations "
             f"(f=fault a=alert d=drift p=pool s=scale)", ""]
    name_width = max((len(name) for name, _s in timeline.items()),
                     default=0)
    for name, series in timeline.items():
        points = _finite_points(*series.data())
        if not points:
            continue
        values = [v for _t_, v in points]
        lines.append(
            f"{name:<{name_width}} {sparkline(values, width=width)} "
            f"last={_fmt_axis(values[-1])} "
            f"[{_fmt_axis(min(values))}, {_fmt_axis(max(values))}]")
    if annotations:
        lines.append(f"{'':<{name_width}} {marker_line}")
        lines.append("")
        lines.append("events:")
        for note in annotations:
            lines.append(f"  t={note.time:7.1f}s "
                         f"[{note.kind:<8}] {note.label}")
    if obs.slo is not None:
        slo = obs.slo
        compliance = slo.compliance()
        lines.append("")
        lines.append(
            f"SLO {slo.spec.name}: "
            + (f"{compliance * 100:.2f}% good" if compliance == compliance
               else "no traffic")
            + f" (objective {slo.spec.objective * 100:g}%, "
            f"{slo.alerts_fired} alerts fired, active: "
            f"{', '.join(slo.active_alerts()) or 'none'})")
    return "\n".join(lines).rstrip() + "\n"
