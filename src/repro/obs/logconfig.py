"""Stdlib-logging configuration for the ``repro.*`` namespace.

Every module in the package logs through ``logging.getLogger(__name__)``
(so loggers are namespaced ``repro.core.sora``, ``repro.autoscalers``,
...). The package root installs a ``NullHandler``, which keeps library
use silent by default; :func:`configure_logging` attaches one real
handler when a human wants to watch a run.
"""

from __future__ import annotations

import logging
import sys
import typing as _t

#: The namespace root every repro logger hangs off.
ROOT = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: The handler configure_logging() installed, for idempotent re-config.
_handler: logging.Handler | None = None


def configure_logging(level: int | str = "info",
                      stream: _t.TextIO | None = None,
                      fmt: str = "%(levelname).1s %(name)s: %(message)s"
                      ) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger namespace.

    Idempotent: calling again replaces the previously installed
    handler (so tests and CLIs can reconfigure freely). Returns the
    namespace root logger.

    Args:
        level: threshold as a ``logging`` constant or one of
            "debug" / "info" / "warning" / "error".
        stream: destination (default ``sys.stderr``).
        fmt: logging format string.
    """
    global _handler
    if isinstance(level, str):
        try:
            level = _LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; expected one of "
                f"{sorted(_LEVELS)}") from None
    logger = logging.getLogger(ROOT)
    if _handler is not None:
        logger.removeHandler(_handler)
    _handler = logging.StreamHandler(stream or sys.stderr)
    _handler.setFormatter(logging.Formatter(fmt))
    logger.addHandler(_handler)
    logger.setLevel(level)
    return logger


def quiet() -> None:
    """Remove the handler installed by :func:`configure_logging`."""
    global _handler
    if _handler is not None:
        logging.getLogger(ROOT).removeHandler(_handler)
        _handler = None
