"""Streaming quantile estimation (the P² algorithm).

The telemetry pipeline needs per-service latency percentiles *while the
run unfolds* — P50/P99 series sampled every second — without retaining
every raw latency sample the way a post-hoc ``np.percentile`` over the
full window would. :class:`P2Quantile` implements the classic P²
algorithm (Jain & Chlamtac, CACM 1985): five markers per tracked
quantile, adjusted with a piecewise-parabolic prediction on every
observation. Memory is O(1) per quantile; the estimate converges to the
true quantile for i.i.d. streams and stays inside the observed
``[min, max]`` envelope unconditionally.

:class:`QuantileSketch` bundles several P² estimators behind one
``observe`` call — the shape the timeline pump feeds (one latency
stream, a handful of tracked quantiles).

Accuracy expectations (bounded by the property tests): the estimate is
*exact* until five observations arrive, tracks shuffled draws from
heavy-tailed and multi-modal distributions to within a few percent of
quantile rank, and degrades gracefully (never outside the data range)
on adversarial sorted streams.
"""

from __future__ import annotations

import math
import typing as _t

__all__ = ["P2Quantile", "QuantileSketch"]


class P2Quantile:
    """One streaming quantile estimate via the P² algorithm.

    Args:
        q: quantile in (0, 1), e.g. ``0.99`` for P99.
    """

    __slots__ = ("q", "_inc", "_heights", "_positions", "_desired",
                 "_count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        #: Per-observation desired-position increments for the three
        #: interior markers (q/2, q, (1+q)/2); hoisted out of the hot
        #: observe() loop.
        self._inc = (q / 2.0, q, (1.0 + q) / 2.0)
        #: Marker heights h_1..h_5 (estimates of min, q/2, q, (1+q)/2,
        #: max quantiles once warm).
        self._heights: list[float] = []
        #: Actual marker positions n_1..n_5 (1-based observation ranks).
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        #: Desired marker positions n'_1..n'_5.
        self._desired = [1.0, 1.0, 1.0, 1.0, 1.0]
        self._count = 0

    @property
    def count(self) -> int:
        """Observations consumed so far."""
        return self._count

    def observe(self, value: float) -> None:
        """Fold one observation into the five-marker state."""
        value = float(value)
        self._count += 1
        heights = self._heights
        if self._count <= 5:
            # Warm-up: collect the first five observations exactly.
            heights.append(value)
            heights.sort()
            if self._count == 5:
                q = self.q
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                                 3.0 + 2.0 * q, 5.0]
            return

        positions = self._positions
        # Locate the cell containing the new observation, stretching
        # the extreme markers when it falls outside the envelope.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        inc = self._inc
        desired = self._desired
        desired[1] += inc[0]
        desired[2] += inc[1]
        desired[3] += inc[2]
        desired[4] += 1.0

        # Adjust the three interior markers toward their desired
        # positions: parabolic (P²) prediction when it keeps marker
        # heights ordered, linear interpolation otherwise.
        for index in (1, 2, 3):
            drift = desired[index] - positions[index]
            if (drift >= 1.0 and
                    positions[index + 1] - positions[index] > 1.0) or \
               (drift <= -1.0 and
                    positions[index - 1] - positions[index] < -1.0):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        n_prev, n_here, n_next = (positions[index - 1], positions[index],
                                  positions[index + 1])
        h_prev, h_here, h_next = (heights[index - 1], heights[index],
                                  heights[index + 1])
        return h_here + step / (n_next - n_prev) * (
            (n_here - n_prev + step) * (h_next - h_here) /
            (n_next - n_here) +
            (n_next - n_here - step) * (h_here - h_prev) /
            (n_here - n_prev))

    def _linear(self, index: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        neighbor = index + int(step)
        return self._heights[index] + step * \
            (heights[neighbor] - heights[index]) / \
            (positions[neighbor] - positions[index])

    def state_dict(self) -> dict:
        """JSON-ready exact marker state (floats round-trip bit-exact)."""
        return {
            "count": self._count,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
        }

    def load_state(self, state: dict) -> None:
        """Inverse of :meth:`state_dict` (quantile ``q`` must match)."""
        self._count = int(state["count"])
        self._heights = [float(h) for h in state["heights"]]
        self._positions = [float(p) for p in state["positions"]]
        self._desired = [float(d) for d in state["desired"]]

    def value(self) -> float:
        """The current quantile estimate (NaN before any observation).

        Exact while fewer than five observations have arrived (computed
        over the sorted warm-up buffer); the P² center marker afterwards.
        """
        count = self._count
        if count == 0:
            return float("nan")
        heights = self._heights
        if count < 5:
            # Exact small-sample quantile (nearest-rank with linear
            # interpolation, matching numpy's default).
            rank = self.q * (count - 1)
            low = int(math.floor(rank))
            high = min(low + 1, count - 1)
            frac = rank - low
            # a + f*(b-a) clamped: the weighted-sum form can round a
            # hair past the envelope when a == b (observed at 1 ulp).
            estimate = heights[low] + frac * (heights[high] - heights[low])
            return min(max(estimate, heights[low]), heights[high])
        return heights[2]


class QuantileSketch:
    """Several P² quantiles over one observation stream.

    Args:
        quantiles: tracked quantiles in (0, 1); defaults to the
            dashboard's P50/P99 pair.
    """

    __slots__ = ("_estimators", "_p2", "_count", "_total", "_min",
                 "_max")

    def __init__(self, quantiles: _t.Sequence[float] = (0.5, 0.99)
                 ) -> None:
        if not quantiles:
            raise ValueError("need at least one tracked quantile")
        self._estimators = {float(q): P2Quantile(q)
                            for q in sorted(set(quantiles))}
        self._p2 = tuple(self._estimators.values())
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        """Observations consumed so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Running mean (NaN before any observation)."""
        return self._total / self._count if self._count else float("nan")

    @property
    def minimum(self) -> float:
        """Smallest observation (inf before any observation)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation (-inf before any observation)."""
        return self._max

    def quantiles(self) -> tuple[float, ...]:
        """The tracked quantiles, ascending."""
        return tuple(self._estimators)

    def observe(self, value: float) -> None:
        """Fold one observation into every tracked quantile."""
        value = float(value)
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        for estimator in self._p2:
            estimator.observe(value)

    def observe_many(self, values: _t.Iterable[float]) -> None:
        """Fold a batch of observations (order preserved)."""
        for value in values:
            self.observe(value)

    def quantile(self, q: float) -> float:
        """Current estimate for tracked quantile ``q`` (NaN if empty)."""
        estimator = self._estimators.get(float(q))
        if estimator is None:
            raise KeyError(
                f"quantile {q} is not tracked (have: "
                f"{sorted(self._estimators)})")
        return estimator.value()

    def state_dict(self) -> dict:
        """JSON-ready exact state for checkpoint/restore.

        Unlike :meth:`snapshot` (a rounded human-facing summary), this
        captures every internal float verbatim so a restored sketch
        continues the stream indistinguishably from the original.
        """
        return {
            "count": self._count,
            "total": self._total,
            "min": self._min,
            "max": self._max,
            "estimators": {f"{q!r}": est.state_dict()
                           for q, est in self._estimators.items()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "QuantileSketch":
        """Inverse of :meth:`state_dict`."""
        quantiles = [float(q) for q in state["estimators"]]
        sketch = cls(quantiles)
        sketch._count = int(state["count"])
        sketch._total = float(state["total"])
        sketch._min = float(state["min"])
        sketch._max = float(state["max"])
        for key, est_state in state["estimators"].items():
            sketch._estimators[float(key)].load_state(est_state)
        return sketch

    def snapshot(self) -> dict:
        """JSON-ready summary (count/mean/min/max + tracked quantiles)."""
        if self._count == 0:
            return {"count": 0}
        return {
            "count": self._count,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
            "quantiles": {f"{q:g}": est.value()
                          for q, est in self._estimators.items()},
        }
