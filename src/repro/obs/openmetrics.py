"""OpenMetrics text exposition of a run's final telemetry state.

Renders the metrics registry and the final SLO/burn-rate state in the
OpenMetrics text format (the Prometheus exposition format with typed
metric families and a terminating ``# EOF``), so a persisted run can be
scraped into any Prometheus-compatible tooling:

- registry ``Counter`` → OpenMetrics ``counter`` (``_total`` sample);
- registry ``Gauge`` → ``gauge``;
- registry ``Histogram`` → ``summary`` (quantile-labelled samples plus
  ``_count``/``_sum``);
- SLO state → ``repro_slo_*`` families (good/bad totals, compliance,
  budget remaining, per-rule burn rates and firing flags);
- trace analytics (when a sampler/aggregator is attached, see
  :mod:`repro.tracing.analytics`) → ``repro_trace_*`` families:
  sampling coverage counters and per-service critical-path latency
  summaries whose ``_count`` samples carry **exemplars** — OpenMetrics
  ``# {trace_id="<032x>"} value timestamp`` suffixes linking the worst
  observed trace, so a dashboard can jump from a P99 to the exact
  Jaeger trace that produced it.

Dotted registry names are sanitized to the metric-name grammar
(``sora.adaptations.applied`` → ``repro_sora_adaptations_applied``).
:func:`parse_openmetrics` is the inverse used by the round-trip sanity
test — a small, strict parser for exactly the dialect rendered here.
"""

from __future__ import annotations

import math
import re
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability
    from repro.obs.slo import SLOMonitor

__all__ = ["Exemplar", "Sample", "parse_openmetrics",
           "render_openmetrics"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(raw: str, prefix: str = "repro_") -> str:
    name = _NAME_OK.sub("_", raw.replace(".", "_"))
    if not name or not (name[0].isalpha() or name[0] in "_:"):
        name = "_" + name
    return prefix + name


def _fmt(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(pairs: dict[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"'
                     for key, value in pairs.items())
    return "{" + inner + "}"


def _exemplar_suffix(trace_id: int, value: float,
                     timestamp: float | None = None) -> str:
    """OpenMetrics exemplar clause appended to a sample line."""
    clause = (f' # {_labels({"trace_id": format(int(trace_id), "032x")})}'
              f" {_fmt(value)}")
    if timestamp is not None:
        clause += f" {_fmt(timestamp)}"
    return clause


def _summary_lines(name: str, sketch, labels: dict[str, str],
                   exemplar=None) -> list[str]:
    """Quantile/sum/count samples for one QuantileSketch series."""
    lines = []
    for q in sketch.quantiles():
        lines.append(
            f"{name}{_labels({**labels, 'quantile': _fmt(q)})} "
            f"{_fmt(sketch.quantile(q))}")
    lines.append(f"{name}_sum{_labels(labels)} "
                 f"{_fmt(sketch.mean * sketch.count)}")
    count_line = f"{name}_count{_labels(labels)} {_fmt(sketch.count)}"
    if exemplar is not None:
        count_line += _exemplar_suffix(exemplar.trace_id, exemplar.value,
                                       exemplar.timestamp)
    lines.append(count_line)
    return lines


def _trace_lines(analytics, sampler) -> list[str]:
    """``repro_trace_*`` families from the streaming trace analytics."""
    lines: list[str] = []
    if sampler is not None:
        cov = sampler.coverage()
        lines += [
            "# TYPE repro_trace_sampling_seen counter",
            "# HELP repro_trace_sampling_seen Finished traces offered "
            "to the sampler.",
            f"repro_trace_sampling_seen_total"
            f"{_labels({'sampler': cov['sampler']})} {_fmt(cov['total'])}",
            "# TYPE repro_trace_sampling_kept counter",
            "# HELP repro_trace_sampling_kept Traces stored, by "
            "retention reason.",
        ]
        for reason, count in cov["kept_by_reason"].items():
            lines.append(
                f"repro_trace_sampling_kept_total"
                f"{_labels({'reason': reason})} {_fmt(count)}")
        lines += [
            "# TYPE repro_trace_sampling_stored_fraction gauge",
            f"repro_trace_sampling_stored_fraction "
            f"{_fmt(cov['stored_fraction'])}",
            "# TYPE repro_trace_sampling_slo_retention gauge",
            "# HELP repro_trace_sampling_slo_retention Fraction of "
            "SLO-violating traces retained.",
            f"repro_trace_sampling_slo_retention "
            f"{_fmt(cov['slo_violating']['retention'])}",
        ]
    if analytics is not None and analytics.traces_observed:
        lines += [
            "# TYPE repro_trace_critical_path_duration_seconds summary",
            "# HELP repro_trace_critical_path_duration_seconds "
            "End-to-end critical-path duration (streaming).",
        ]
        lines += _summary_lines(
            "repro_trace_critical_path_duration_seconds",
            analytics.duration, {}, analytics.slowest)
        lines += [
            "# TYPE repro_trace_self_time_seconds summary",
            "# HELP repro_trace_self_time_seconds Per-service "
            "critical-path self time (streaming).",
        ]
        for service in analytics.services():
            lines += _summary_lines(
                "repro_trace_self_time_seconds",
                analytics.self_time[service], {"service": service},
                analytics.slowest_by_service.get(service))
    return lines


def _slo_lines(slo: "SLOMonitor", now: float | None) -> list[str]:
    if now is None:
        buckets = slo._buckets
        now = (buckets[-1][0] + slo.bucket_width if buckets else 0.0)
    name = slo.spec.name
    lines = [
        "# TYPE repro_slo_requests counter",
        "# HELP repro_slo_requests Requests classified against the SLO.",
        f'repro_slo_requests_total{_labels({"slo": name, "verdict": "good"})}'
        f" {_fmt(slo.good_total)}",
        f'repro_slo_requests_total{_labels({"slo": name, "verdict": "bad"})}'
        f" {_fmt(slo.bad_total)}",
        "# TYPE repro_slo_objective gauge",
        f'repro_slo_objective{_labels({"slo": name})} '
        f"{_fmt(slo.spec.objective)}",
        "# TYPE repro_slo_latency_threshold_seconds gauge",
        f'repro_slo_latency_threshold_seconds{_labels({"slo": name})} '
        f"{_fmt(slo.spec.latency_threshold)}",
        "# TYPE repro_slo_compliance gauge",
        "# HELP repro_slo_compliance Lifetime good fraction.",
        f'repro_slo_compliance{_labels({"slo": name})} '
        f"{_fmt(slo.compliance())}",
        "# TYPE repro_slo_budget_remaining gauge",
        f'repro_slo_budget_remaining{_labels({"slo": name})} '
        f"{_fmt(slo.budget_remaining(now))}",
        "# TYPE repro_slo_alerts_fired counter",
        f'repro_slo_alerts_fired_total{_labels({"slo": name})} '
        f"{_fmt(slo.alerts_fired)}",
    ]
    lines.append("# TYPE repro_slo_burn_rate gauge")
    lines.append("# HELP repro_slo_burn_rate Error-budget burn rate "
                 "per rule window.")
    active = set(slo.active_alerts())
    firing_lines = ["# TYPE repro_slo_alert_firing gauge"]
    for rule in slo.rules:
        for window_name, window in (("long", rule.long_window),
                                    ("short", rule.short_window)):
            labels = _labels({"slo": name, "rule": rule.name,
                              "window": window_name})
            lines.append(f"repro_slo_burn_rate{labels} "
                         f"{_fmt(slo.burn_rate(now, window))}")
        firing = _labels({"slo": name, "rule": rule.name})
        firing_lines.append(
            f"repro_slo_alert_firing{firing} "
            f"{_fmt(1.0 if rule.name in active else 0.0)}")
    return lines + firing_lines


def render_openmetrics(obs: "Observability",
                       now: float | None = None) -> str:
    """OpenMetrics text exposition of ``obs``'s final state.

    Args:
        obs: the run's observability scope.
        now: simulated time for window-relative SLO gauges; defaults
            to the end of the monitor's last bucket.
    """
    lines: list[str] = []
    # A live run exposes its registry; a persisted run restored by
    # repro.experiments.persistence exposes the archived snapshot.
    metrics = (obs.registry.snapshot()
               or getattr(obs, "restored_metrics", {}))
    for raw_name, snap in metrics.items():
        kind = snap["type"]
        name = _metric_name(raw_name)
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}_total {_fmt(snap['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            value = snap["value"]
            lines.append(
                f"{name} {_fmt(value if value is not None else float('nan'))}")
        elif kind == "histogram":
            lines.append(f"# TYPE {name} summary")
            count = snap.get("count", 0)
            if count:
                for q, key in ((0.5, "p50"), (0.95, "p95")):
                    lines.append(
                        f'{name}{_labels({"quantile": _fmt(q)})} '
                        f"{_fmt(snap[key])}")
                mean = snap.get("mean", float("nan"))
                lines.append(f"{name}_sum {_fmt(mean * count)}")
            count_line = f"{name}_count {_fmt(count)}"
            exemplar = snap.get("exemplar")
            if exemplar is not None:
                count_line += _exemplar_suffix(
                    exemplar["trace_id"], exemplar["value"],
                    exemplar.get("timestamp"))
            lines.append(count_line)
    if obs.slo is not None:
        lines.extend(_slo_lines(obs.slo, now))
    lines.extend(_trace_lines(getattr(obs, "trace_analytics", None),
                              getattr(obs, "trace_sampler", None)))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class Exemplar(_t.NamedTuple):
    """One parsed exemplar clause (``# {labels} value [timestamp]``)."""

    labels: dict[str, str]
    value: float
    timestamp: float | None = None

    @property
    def trace_id(self) -> int | None:
        """The linked trace id, when the exemplar carries one."""
        raw = self.labels.get("trace_id")
        return int(raw, 16) if raw is not None else None


class Sample(_t.NamedTuple):
    """One parsed exposition sample."""

    name: str
    labels: dict[str, str]
    value: float
    exemplar: Exemplar | None = None


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+#\s+\{(?P<exlabels>[^}]*)\}\s+(?P<exvalue>\S+)"
    r"(?:\s+(?P<exts>\S+))?)?\s*$")
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>'
                    r'(?:[^"\\]|\\.)*)"')


def _unescape_label(value: str) -> str:
    return (value.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def _parse_labels(raw: str | None) -> dict[str, str]:
    labels: dict[str, str] = {}
    if raw:
        for pair in _LABEL.finditer(raw):
            labels[pair.group("key")] = _unescape_label(
                pair.group("value"))
    return labels


def parse_openmetrics(text: str) -> dict[str, dict]:
    """Parse exposition text produced by :func:`render_openmetrics`.

    Returns ``family -> {"type": str, "samples": [Sample, ...]}``,
    where counter/summary suffixes (``_total``, ``_count``, ``_sum``)
    stay on the sample names. Raises ``ValueError`` on malformed lines
    or a missing ``# EOF`` terminator.
    """
    families: dict[str, dict] = {}
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "EOF":
                saw_eof = True
            elif len(parts) >= 4 and parts[1] == "TYPE":
                families[parts[2]] = {"type": parts[3],
                                      "samples": []}
            elif len(parts) >= 2 and parts[1] == "HELP":
                continue
            else:
                raise ValueError(f"line {lineno}: bad comment {line!r}")
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: bad sample {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        exemplar = None
        if match.group("exvalue") is not None:
            raw_ts = match.group("exts")
            exemplar = Exemplar(
                labels=_parse_labels(match.group("exlabels")),
                value=float(match.group("exvalue")),
                timestamp=float(raw_ts) if raw_ts is not None else None)
        family = name
        for suffix in ("_total", "_count", "_sum"):
            if family.endswith(suffix) and family[:-len(suffix)] in families:
                family = family[:-len(suffix)]
                break
        entry = families.get(family)
        if entry is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} without # TYPE")
        entry["samples"].append(
            Sample(name, labels, float(match.group("value")), exemplar))
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return families
