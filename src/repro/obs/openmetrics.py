"""OpenMetrics text exposition of a run's final telemetry state.

Renders the metrics registry and the final SLO/burn-rate state in the
OpenMetrics text format (the Prometheus exposition format with typed
metric families and a terminating ``# EOF``), so a persisted run can be
scraped into any Prometheus-compatible tooling:

- registry ``Counter`` → OpenMetrics ``counter`` (``_total`` sample);
- registry ``Gauge`` → ``gauge``;
- registry ``Histogram`` → ``summary`` (quantile-labelled samples plus
  ``_count``/``_sum``);
- SLO state → ``repro_slo_*`` families (good/bad totals, compliance,
  budget remaining, per-rule burn rates and firing flags).

Dotted registry names are sanitized to the metric-name grammar
(``sora.adaptations.applied`` → ``repro_sora_adaptations_applied``).
:func:`parse_openmetrics` is the inverse used by the round-trip sanity
test — a small, strict parser for exactly the dialect rendered here.
"""

from __future__ import annotations

import math
import re
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability
    from repro.obs.slo import SLOMonitor

__all__ = ["parse_openmetrics", "render_openmetrics"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(raw: str, prefix: str = "repro_") -> str:
    name = _NAME_OK.sub("_", raw.replace(".", "_"))
    if not name or not (name[0].isalpha() or name[0] in "_:"):
        name = "_" + name
    return prefix + name


def _fmt(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(pairs: dict[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"'
                     for key, value in pairs.items())
    return "{" + inner + "}"


def _slo_lines(slo: "SLOMonitor", now: float | None) -> list[str]:
    if now is None:
        buckets = slo._buckets
        now = (buckets[-1][0] + slo.bucket_width if buckets else 0.0)
    name = slo.spec.name
    lines = [
        "# TYPE repro_slo_requests counter",
        "# HELP repro_slo_requests Requests classified against the SLO.",
        f'repro_slo_requests_total{_labels({"slo": name, "verdict": "good"})}'
        f" {_fmt(slo.good_total)}",
        f'repro_slo_requests_total{_labels({"slo": name, "verdict": "bad"})}'
        f" {_fmt(slo.bad_total)}",
        "# TYPE repro_slo_objective gauge",
        f'repro_slo_objective{_labels({"slo": name})} '
        f"{_fmt(slo.spec.objective)}",
        "# TYPE repro_slo_latency_threshold_seconds gauge",
        f'repro_slo_latency_threshold_seconds{_labels({"slo": name})} '
        f"{_fmt(slo.spec.latency_threshold)}",
        "# TYPE repro_slo_compliance gauge",
        "# HELP repro_slo_compliance Lifetime good fraction.",
        f'repro_slo_compliance{_labels({"slo": name})} '
        f"{_fmt(slo.compliance())}",
        "# TYPE repro_slo_budget_remaining gauge",
        f'repro_slo_budget_remaining{_labels({"slo": name})} '
        f"{_fmt(slo.budget_remaining(now))}",
        "# TYPE repro_slo_alerts_fired counter",
        f'repro_slo_alerts_fired_total{_labels({"slo": name})} '
        f"{_fmt(slo.alerts_fired)}",
    ]
    lines.append("# TYPE repro_slo_burn_rate gauge")
    lines.append("# HELP repro_slo_burn_rate Error-budget burn rate "
                 "per rule window.")
    active = set(slo.active_alerts())
    firing_lines = ["# TYPE repro_slo_alert_firing gauge"]
    for rule in slo.rules:
        for window_name, window in (("long", rule.long_window),
                                    ("short", rule.short_window)):
            labels = _labels({"slo": name, "rule": rule.name,
                              "window": window_name})
            lines.append(f"repro_slo_burn_rate{labels} "
                         f"{_fmt(slo.burn_rate(now, window))}")
        firing = _labels({"slo": name, "rule": rule.name})
        firing_lines.append(
            f"repro_slo_alert_firing{firing} "
            f"{_fmt(1.0 if rule.name in active else 0.0)}")
    return lines + firing_lines


def render_openmetrics(obs: "Observability",
                       now: float | None = None) -> str:
    """OpenMetrics text exposition of ``obs``'s final state.

    Args:
        obs: the run's observability scope.
        now: simulated time for window-relative SLO gauges; defaults
            to the end of the monitor's last bucket.
    """
    lines: list[str] = []
    # A live run exposes its registry; a persisted run restored by
    # repro.experiments.persistence exposes the archived snapshot.
    metrics = (obs.registry.snapshot()
               or getattr(obs, "restored_metrics", {}))
    for raw_name, snap in metrics.items():
        kind = snap["type"]
        name = _metric_name(raw_name)
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}_total {_fmt(snap['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            value = snap["value"]
            lines.append(
                f"{name} {_fmt(value if value is not None else float('nan'))}")
        elif kind == "histogram":
            lines.append(f"# TYPE {name} summary")
            count = snap.get("count", 0)
            if count:
                for q, key in ((0.5, "p50"), (0.95, "p95")):
                    lines.append(
                        f'{name}{_labels({"quantile": _fmt(q)})} '
                        f"{_fmt(snap[key])}")
                mean = snap.get("mean", float("nan"))
                lines.append(f"{name}_sum {_fmt(mean * count)}")
            lines.append(f"{name}_count {_fmt(count)}")
    if obs.slo is not None:
        lines.extend(_slo_lines(obs.slo, now))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class Sample(_t.NamedTuple):
    """One parsed exposition sample."""

    name: str
    labels: dict[str, str]
    value: float


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$")
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>'
                    r'(?:[^"\\]|\\.)*)"')


def _unescape_label(value: str) -> str:
    return (value.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def parse_openmetrics(text: str) -> dict[str, dict]:
    """Parse exposition text produced by :func:`render_openmetrics`.

    Returns ``family -> {"type": str, "samples": [Sample, ...]}``,
    where counter/summary suffixes (``_total``, ``_count``, ``_sum``)
    stay on the sample names. Raises ``ValueError`` on malformed lines
    or a missing ``# EOF`` terminator.
    """
    families: dict[str, dict] = {}
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "EOF":
                saw_eof = True
            elif len(parts) >= 4 and parts[1] == "TYPE":
                families[parts[2]] = {"type": parts[3],
                                      "samples": []}
            elif len(parts) >= 2 and parts[1] == "HELP":
                continue
            else:
                raise ValueError(f"line {lineno}: bad comment {line!r}")
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: bad sample {line!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in _LABEL.finditer(raw_labels):
                labels[pair.group("key")] = _unescape_label(
                    pair.group("value"))
        family = name
        for suffix in ("_total", "_count", "_sum"):
            if family.endswith(suffix) and family[:-len(suffix)] in families:
                family = family[:-len(suffix)]
                break
        entry = families.get(family)
        if entry is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} without # TYPE")
        entry["samples"].append(
            Sample(name, labels, float(match.group("value"))))
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return families
