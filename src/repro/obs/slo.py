"""SLO specs, sliding-window error budgets, and burn-rate alerting.

An :class:`SLOSpec` states the latency objective in Sora's own terms:
a request is *good* when it completes successfully inside the SLO's
latency threshold (the same deadline the controller's goodput
definition uses), and the objective is the fraction of requests that
must be good (e.g. 99%). The *error budget* is the tolerated bad
fraction, ``1 - objective``.

:class:`SLOMonitor` does the SRE-workbook accounting inside simulation
time. Observations land in coarse time buckets (bounded memory); the
*burn rate* over a window is::

    burn = bad_fraction(window) / error_budget

so burn 1.0 spends the budget exactly at the sustainable pace and burn
10 spends it ten times too fast. Each :class:`BurnRateRule` is a
multi-window rule à la Google SRE workbook ch. 5: it fires only when
**both** its long window (evidence of a real problem) and its short
window (the problem is still happening) burn at or above ``factor``,
which makes alerts fast on real incidents and self-clearing after
recovery. Transitions are emitted as typed
:class:`~repro.obs.events.AlertRecord`s ("fire"/"clear") into the
:class:`~repro.obs.events.DecisionLog`, so alerts line up with
decisions, faults, and drift on the dashboard's single time axis.

Window lengths default to simulation-scale analogues of the workbook's
1h/5m and 6h/30m pairs — minutes-long runs need seconds-long windows.
"""

from __future__ import annotations

import math
import typing as _t
from collections import deque
from dataclasses import dataclass

from repro.obs.events import AlertRecord, DecisionLog

__all__ = [
    "DEFAULT_RULES",
    "BurnRateRule",
    "SLOMonitor",
    "SLOSpec",
]


@dataclass(frozen=True)
class SLOSpec:
    """A latency SLO: fraction of requests under a deadline.

    Attributes:
        name: label used in alert records and exports.
        latency_threshold: seconds; a slower (or failed) request is
            *bad*.
        objective: required good fraction in (0, 1), e.g. ``0.99``.
    """

    name: str
    latency_threshold: float
    objective: float = 0.99

    def __post_init__(self) -> None:
        if self.latency_threshold <= 0.0:
            raise ValueError(
                f"latency_threshold must be > 0, got "
                f"{self.latency_threshold}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}")

    @property
    def error_budget(self) -> float:
        """Tolerated bad fraction, ``1 - objective``."""
        return 1.0 - self.objective

    def to_dict(self) -> dict:
        """JSON-ready spec payload."""
        return {"name": self.name,
                "latency_threshold": self.latency_threshold,
                "objective": self.objective}

    @classmethod
    def from_dict(cls, payload: dict) -> "SLOSpec":
        return cls(name=payload["name"],
                   latency_threshold=payload["latency_threshold"],
                   objective=payload.get("objective", 0.99))


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window multi-burn-rate alert rule.

    Fires when burn over **both** windows is at or above ``factor``;
    clears when either drops below.

    Attributes:
        name: rule label ("fast-burn", "slow-burn").
        factor: burn-rate threshold (1.0 = budget spent exactly at the
            sustainable pace).
        long_window: seconds of evidence required (the primary
            condition).
        short_window: seconds confirming the problem is ongoing.
        severity: "page" or "ticket" (SRE-workbook convention).
    """

    name: str
    factor: float
    long_window: float
    short_window: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.factor <= 0.0:
            raise ValueError(f"factor must be > 0, got {self.factor}")
        if not 0.0 < self.short_window <= self.long_window:
            raise ValueError(
                f"need 0 < short_window <= long_window, got "
                f"{self.short_window}/{self.long_window}")

    def to_dict(self) -> dict:
        """JSON-ready rule payload."""
        return {"name": self.name, "factor": self.factor,
                "long_window": self.long_window,
                "short_window": self.short_window,
                "severity": self.severity}

    @classmethod
    def from_dict(cls, payload: dict) -> "BurnRateRule":
        return cls(name=payload["name"], factor=payload["factor"],
                   long_window=payload["long_window"],
                   short_window=payload["short_window"],
                   severity=payload.get("severity", "page"))


#: Simulation-scale analogue of the SRE workbook's recommended pairs:
#: a paging fast-burn rule (minutes of runway) and a ticket slow-burn
#: rule (sustained over-spend).
DEFAULT_RULES: tuple[BurnRateRule, ...] = (
    BurnRateRule(name="fast-burn", factor=8.0,
                 long_window=60.0, short_window=10.0, severity="page"),
    BurnRateRule(name="slow-burn", factor=2.0,
                 long_window=180.0, short_window=30.0,
                 severity="ticket"),
)


class SLOMonitor:
    """Sliding-window error-budget accounting + burn-rate alerting.

    Feed request outcomes with :meth:`observe` (monotone simulated
    time), then call :meth:`evaluate` at each telemetry tick; it
    returns — and optionally logs — the alert transitions since the
    previous tick. Memory is bounded: observations aggregate into
    ``bucket_width``-second buckets retained only over the longest
    rule window (plus the budget window).

    Args:
        spec: the latency SLO under guard.
        rules: burn-rate alert rules (default :data:`DEFAULT_RULES`).
        bucket_width: aggregation granularity in seconds.
        budget_window: horizon for :meth:`budget_remaining`; defaults
            to the longest rule window.
    """

    def __init__(self, spec: SLOSpec,
                 rules: _t.Sequence[BurnRateRule] = DEFAULT_RULES,
                 bucket_width: float = 1.0,
                 budget_window: float | None = None) -> None:
        if bucket_width <= 0.0:
            raise ValueError(
                f"bucket_width must be > 0, got {bucket_width}")
        if not rules:
            raise ValueError("need at least one alert rule")
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {names}")
        self.spec = spec
        self.rules = tuple(rules)
        self.bucket_width = bucket_width
        longest = max(rule.long_window for rule in self.rules)
        self.budget_window = (budget_window if budget_window is not None
                              else longest)
        horizon = max(longest, self.budget_window)
        max_buckets = int(math.ceil(horizon / bucket_width)) + 2
        #: (bucket_start, good, bad) triples, oldest first.
        self._buckets: deque[list[float]] = deque(maxlen=max_buckets)
        self.good_total = 0
        self.bad_total = 0
        self._active: set[str] = set()
        self.alerts_fired = 0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def observe(self, time: float, latency: float,
                ok: bool = True) -> bool:
        """Record one request outcome; returns whether it was *good*.

        A request is good iff it succeeded (``ok``) and finished
        within the SLO's latency threshold.
        """
        good = bool(ok) and latency <= self.spec.latency_threshold
        self.observe_counts(time, int(good), int(not good))
        return good

    def observe_counts(self, time: float, good: int, bad: int) -> None:
        """Record pre-aggregated good/bad counts at ``time``."""
        if good == 0 and bad == 0:
            return
        start = math.floor(time / self.bucket_width) * self.bucket_width
        buckets = self._buckets
        if buckets and buckets[-1][0] == start:
            buckets[-1][1] += good
            buckets[-1][2] += bad
        else:
            buckets.append([start, float(good), float(bad)])
        self.good_total += good
        self.bad_total += bad

    def window_counts(self, now: float,
                      window: float) -> tuple[float, float]:
        """``(good, bad)`` over the trailing ``window`` seconds."""
        cutoff = now - window
        good = bad = 0.0
        for start, g, b in reversed(self._buckets):
            if start + self.bucket_width <= cutoff:
                break
            good += g
            bad += b
        return good, bad

    def bad_fraction(self, now: float, window: float) -> float:
        """Bad fraction over the window (0.0 when no traffic)."""
        good, bad = self.window_counts(now, window)
        total = good + bad
        return bad / total if total else 0.0

    def burn_rate(self, now: float, window: float) -> float:
        """Error-budget burn rate over the trailing window."""
        return self.bad_fraction(now, window) / self.spec.error_budget

    def budget_remaining(self, now: float) -> float:
        """Unspent fraction of the budget over ``budget_window``.

        1.0 = untouched, 0.0 = exactly spent, negative = overspent.
        """
        burn = self.burn_rate(now, self.budget_window)
        return 1.0 - burn

    @property
    def total(self) -> int:
        """Requests observed over the monitor's lifetime."""
        return self.good_total + self.bad_total

    def compliance(self) -> float:
        """Lifetime good fraction (NaN before any observation)."""
        total = self.total
        return self.good_total / total if total else float("nan")

    # ------------------------------------------------------------------
    # Alerting
    # ------------------------------------------------------------------
    def active_alerts(self) -> list[str]:
        """Names of currently-firing rules, sorted."""
        return sorted(self._active)

    def evaluate(self, now: float,
                 log: DecisionLog | None = None) -> list[AlertRecord]:
        """Evaluate every rule at ``now``; emit fire/clear edges.

        Returns the transitions (empty when nothing changed); each is
        also appended to ``log`` when one is given.
        """
        transitions: list[AlertRecord] = []
        for rule in self.rules:
            burn_long = self.burn_rate(now, rule.long_window)
            burn_short = self.burn_rate(now, rule.short_window)
            firing = (burn_long >= rule.factor and
                      burn_short >= rule.factor)
            was_firing = rule.name in self._active
            if firing == was_firing:
                continue
            if firing:
                self._active.add(rule.name)
                self.alerts_fired += 1
            else:
                self._active.discard(rule.name)
            transitions.append(AlertRecord(
                time=now, slo=self.spec.name, rule=rule.name,
                phase="fire" if firing else "clear",
                severity=rule.severity, burn_long=burn_long,
                burn_short=burn_short, factor=rule.factor,
                budget_remaining=self.budget_remaining(now)))
        if log is not None:
            for record in transitions:
                log.append(record)
        return transitions

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-ready snapshot (spec, rules, buckets, alert state)."""
        return {
            "spec": self.spec.to_dict(),
            "rules": [rule.to_dict() for rule in self.rules],
            "bucket_width": self.bucket_width,
            "budget_window": self.budget_window,
            "buckets": [[start, good, bad]
                        for start, good, bad in self._buckets],
            "good_total": self.good_total,
            "bad_total": self.bad_total,
            "active": sorted(self._active),
            "alerts_fired": self.alerts_fired,
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "SLOMonitor":
        """Rebuild a monitor from its :meth:`state_dict` snapshot."""
        monitor = cls(
            spec=SLOSpec.from_dict(payload["spec"]),
            rules=tuple(BurnRateRule.from_dict(rule)
                        for rule in payload["rules"]),
            bucket_width=payload.get("bucket_width", 1.0),
            budget_window=payload.get("budget_window"))
        for start, good, bad in payload.get("buckets", ()):
            monitor._buckets.append([start, float(good), float(bad)])
        monitor.good_total = int(payload.get("good_total", 0))
        monitor.bad_total = int(payload.get("bad_total", 0))
        monitor._active = set(payload.get("active", ()))
        monitor.alerts_fired = int(payload.get("alerts_fired", 0))
        return monitor
