"""``repro.obs``: unified observability for the Sora reproduction.

One :class:`Observability` object per run bundles the four concerns
the controllers thread through:

- a :class:`~repro.obs.registry.MetricsRegistry` (counters, gauges,
  bounded histograms);
- a :class:`~repro.obs.events.DecisionLog` of typed control-round /
  scale-event / drift records (JSONL-exportable);
- a :class:`~repro.obs.profiling.PhaseProfiler` for SCG phase wall
  timings, plus an optional
  :class:`~repro.obs.profiling.EngineProfiler` on the event loop;
- :func:`~repro.obs.logconfig.configure_logging` for the ``repro.*``
  stdlib-logging namespace (quiet by default).

The module-level :data:`NULL` instance is the disabled default every
instrumented constructor falls back to. ``Observability`` is truthy
exactly when enabled, so hot call sites guard with ``if self.obs:`` —
one boolean check, which is what keeps the PR-2 fast paths fast.
"""

from __future__ import annotations

import contextlib
import typing as _t

from repro.obs.events import (
    AlertRecord,
    ControlRoundRecord,
    DecisionLog,
    DriftRecord,
    FaultRecord,
    ObsRecord,
    ScaleEventRecord,
    TargetDecision,
    record_from_dict,
)
from repro.obs.logconfig import configure_logging, quiet
from repro.obs.profiling import EngineProfiler, PhaseProfiler, PhaseStats
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sketch import P2Quantile, QuantileSketch
from repro.obs.slo import DEFAULT_RULES, BurnRateRule, SLOMonitor, SLOSpec
from repro.obs.timeline import (
    NULL_TIMELINE,
    Annotation,
    SeriesBuffer,
    Timeline,
    annotations_from_log,
)

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

#: Reusable no-op context manager handed out by disabled phase().
_NULL_CONTEXT = contextlib.nullcontext()


class Observability:
    """Run-scoped observability state (registry + log + profilers).

    Args:
        enabled: master switch; a disabled instance is inert and
            truthiness-false (``if obs:`` guards are near-free).
        max_records: decision-log ring capacity.
        curve_points: how many points of the fitted knee curve each
            decision snapshot keeps (0 disables curve snapshots).
        telemetry: whether the streaming :class:`Timeline` records
            series; ``False`` swaps in the shared no-op
            :data:`~repro.obs.timeline.NULL_TIMELINE` so the harness
            starts no telemetry pump and event streams stay
            byte-identical to a telemetry-free build.
        timeline_capacity: per-series retained-point bound.
    """

    def __init__(self, *, enabled: bool = True, max_records: int = 4096,
                 curve_points: int = 32, telemetry: bool = True,
                 timeline_capacity: int = 720) -> None:
        if curve_points < 0:
            raise ValueError(
                f"curve_points must be >= 0, got {curve_points}")
        self.enabled = enabled
        self.curve_points = curve_points
        self.registry = MetricsRegistry(enabled=enabled)
        self.decisions = DecisionLog(max_records=max_records)
        self.profiler = PhaseProfiler()
        self.engine: EngineProfiler | None = None
        self.timeline = (Timeline(capacity=timeline_capacity)
                         if enabled and telemetry else NULL_TIMELINE)
        #: SLO monitor attached by the harness when the scenario
        #: carries an SLO spec (or restored by persistence).
        self.slo: SLOMonitor | None = None
        #: Streaming critical-path aggregator + trace sampler, attached
        #: via :meth:`attach_trace_analytics` when the run's warehouse
        #: samples traces. Pure observers: exporters/dashboards read
        #: them, the simulation never does.
        self.trace_analytics = None
        self.trace_sampler = None

    def attach_trace_analytics(self, warehouse) -> None:
        """Expose a warehouse's sampler/aggregator to the exporters.

        Call after :meth:`repro.tracing.TraceWarehouse.attach` so the
        OpenMetrics export, dashboard flame view, and report sections
        can render the streaming trace analytics.
        """
        self.trace_analytics = warehouse.analytics
        self.trace_sampler = warehouse.sampler
        if self.enabled and warehouse.analytics is not None:
            # End-to-end latency histogram with exemplar trace ids:
            # every finished trace lands here, the slowest pinned as
            # the exemplar on the _count sample of the export.
            warehouse.analytics.latency_histogram = (
                self.registry.histogram("trace.latency"))

    def __bool__(self) -> bool:
        return self.enabled

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, record: ObsRecord) -> None:
        """Append a typed record to the decision log (no-op when
        disabled)."""
        if self.enabled:
            self.decisions.append(record)

    def phase(self, name: str):
        """Context manager timing one named control phase."""
        if not self.enabled:
            return _NULL_CONTEXT
        return self.profiler.phase(name)

    # ------------------------------------------------------------------
    # Engine profiling
    # ------------------------------------------------------------------
    def watch_engine(self, env: "Environment",
                     sample_every: int = 2048) -> None:
        """Attach an event-loop profiler to ``env`` (no-op when
        disabled)."""
        if not self.enabled:
            return
        if self.engine is None:
            self.engine = EngineProfiler(env, sample_every=sample_every)
        self.engine.attach()

    def unwatch_engine(self) -> None:
        """Detach the event-loop profiler, if attached."""
        if self.engine is not None:
            self.engine.detach()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready snapshot of everything but the decision log."""
        return {
            "metrics": self.registry.snapshot(),
            "phases": self.profiler.summary(),
            "engine": (self.engine.summary()
                       if self.engine is not None else None),
            "slo": (self.slo.state_dict()
                    if self.slo is not None else None),
        }


#: Shared disabled instance: the default for every instrumented
#: constructor. Never records, never times, never allocates.
NULL = Observability(enabled=False)

from repro.obs.dashboard import (  # noqa: E402
    render_dashboard_html,
    render_sparklines,
)
from repro.obs.openmetrics import (  # noqa: E402
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.report import render_html, render_text  # noqa: E402

__all__ = [
    "DEFAULT_RULES",
    "NULL",
    "NULL_TIMELINE",
    "AlertRecord",
    "Annotation",
    "BurnRateRule",
    "ControlRoundRecord",
    "Counter",
    "DecisionLog",
    "DriftRecord",
    "EngineProfiler",
    "FaultRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsRecord",
    "Observability",
    "P2Quantile",
    "PhaseProfiler",
    "PhaseStats",
    "QuantileSketch",
    "SLOMonitor",
    "SLOSpec",
    "ScaleEventRecord",
    "SeriesBuffer",
    "TargetDecision",
    "Timeline",
    "annotations_from_log",
    "configure_logging",
    "parse_openmetrics",
    "quiet",
    "record_from_dict",
    "render_dashboard_html",
    "render_html",
    "render_openmetrics",
    "render_sparklines",
    "render_text",
]
