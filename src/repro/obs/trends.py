"""Longitudinal performance trends over committed artifacts.

The repo accumulates machine-readable performance evidence as it
grows: ``BENCH_*.json`` kernel-bench reports (one per tracked
revision) and scenario-matrix ``index.json`` files. Each is a point
estimate; none of them answers *"is the event loop slower than it was
three PRs ago?"*. ``repro obs trends`` does — it sweeps a set of
paths for known artifacts, lines them up on a timeline (bench reports
carry ``generated_at``; matrix indexes fall back to file mtime),
extracts every scalar metric, and renders a self-contained HTML
regression timeline with threshold-crossing callouts wherever a
metric moved more than the tolerance between consecutive points.

The report obeys the same no-external-references contract as the run
dashboard (enforced by ``tools/check_links.py --html`` in CI).
"""

from __future__ import annotations

import datetime as _dt
import html as _html
import json
import pathlib
import typing as _t
from dataclasses import dataclass, field

from repro.obs.dashboard import _CSS, _panel_svg

__all__ = [
    "TrendPoint",
    "collect_artifacts",
    "find_crossings",
    "load_artifact",
    "render_trends_html",
]

#: Bench-report schema this module understands.
_BENCH_SCHEMA = "repro-bench-kernel/1"

#: At most this many series are plotted (widest-moving first) so a
#: large artifact set cannot produce an unbounded page.
_MAX_PANELS = 40


@dataclass
class TrendPoint:
    """One artifact's contribution to the timeline.

    Attributes:
        label: short human label (git sha for bench reports, file
            stem otherwise).
        timestamp: ISO-8601 UTC string used for ordering.
        source: the artifact path, for provenance.
        metrics: flat ``series name -> value`` scalars.
    """

    label: str
    timestamp: str
    source: str
    metrics: dict[str, float] = field(default_factory=dict)


def _scalars(prefix: str, payload: dict) -> dict[str, float]:
    """Flatten the numeric leaves of one stats dict (no recursion:
    nested sweeps carry their own axes and don't line up as a single
    longitudinal series)."""
    out = {}
    for key, value in payload.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[f"{prefix}.{key}"] = float(value)
    return out


def _mtime_iso(path: pathlib.Path) -> str:
    stamp = _dt.datetime.fromtimestamp(path.stat().st_mtime,
                                       tz=_dt.timezone.utc)
    return stamp.strftime("%Y-%m-%dT%H:%M:%SZ")


def load_artifact(path: str | pathlib.Path) -> TrendPoint | None:
    """Parse one file into a trend point (``None`` if unrecognized)."""
    file = pathlib.Path(path)
    try:
        payload = json.loads(file.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("schema") == _BENCH_SCHEMA:
        metrics: dict[str, float] = {}
        for name, stats in payload.get("benchmarks", {}).items():
            if isinstance(stats, dict):
                metrics.update(_scalars(name, stats))
        sha = str(payload.get("git_sha") or "")[:12]
        return TrendPoint(
            label=sha or file.stem,
            timestamp=str(payload.get("generated_at")
                          or _mtime_iso(file)),
            source=str(file), metrics=metrics)
    if isinstance(payload.get("cells"), list):
        cells = [cell for cell in payload["cells"]
                 if isinstance(cell, dict)]
        if not cells:
            return None
        metrics = {"matrix.cells": float(len(cells)),
                   "matrix.failed": float(sum(
                       1 for cell in cells if cell.get("failed")))}
        for key in ("p50_ms", "p95_ms", "p99_ms", "goodput_rps",
                    "throughput_rps", "adaptation_actions"):
            values = [float(cell[key]) for cell in cells
                      if isinstance(cell.get(key), (int, float))]
            if values:
                metrics[f"matrix.{key}.mean"] = (
                    sum(values) / len(values))
        return TrendPoint(label=file.parent.name or file.stem,
                          timestamp=_mtime_iso(file),
                          source=str(file), metrics=metrics)
    return None


def collect_artifacts(paths: _t.Sequence[str | pathlib.Path]
                      ) -> list[TrendPoint]:
    """Load every recognized artifact under ``paths``, oldest first.

    Directories are searched recursively for ``BENCH_*.json`` and
    ``index.json``; files are loaded directly. Duplicate sources are
    collapsed.
    """
    candidates: list[pathlib.Path] = []
    for entry in paths:
        path = pathlib.Path(entry)
        if path.is_dir():
            candidates.extend(sorted(path.rglob("BENCH_*.json")))
            candidates.extend(sorted(path.rglob("index.json")))
        elif path.is_file():
            candidates.append(path)
    points = []
    seen: set[str] = set()
    for file in candidates:
        key = str(file.resolve())
        if key in seen:
            continue
        seen.add(key)
        point = load_artifact(file)
        if point is not None:
            points.append(point)
    points.sort(key=lambda point: (point.timestamp, point.source))
    return points


def _series(points: _t.Sequence[TrendPoint]
            ) -> dict[str, list[tuple[int, float]]]:
    """``metric -> [(point index, value)]`` for metrics seen twice+."""
    table: dict[str, list[tuple[int, float]]] = {}
    for index, point in enumerate(points):
        for name, value in point.metrics.items():
            table.setdefault(name, []).append((index, value))
    return {name: samples for name, samples in table.items()
            if len(samples) >= 2}


def find_crossings(points: _t.Sequence[TrendPoint],
                   threshold_pct: float) -> list[dict]:
    """Consecutive-point moves beyond ``threshold_pct``, worst first."""
    crossings = []
    for name, samples in _series(points).items():
        for (i_prev, prev), (i_next, curr) in zip(samples,
                                                  samples[1:]):
            if prev == 0.0:
                continue
            change = (curr - prev) / abs(prev) * 100.0
            if abs(change) >= threshold_pct:
                crossings.append({
                    "metric": name,
                    "from": points[i_prev].label,
                    "to": points[i_next].label,
                    "before": prev,
                    "after": curr,
                    "change_pct": round(change, 2),
                })
    crossings.sort(key=lambda entry: -abs(entry["change_pct"]))
    return crossings


def render_trends_html(points: _t.Sequence[TrendPoint], *,
                       threshold_pct: float = 20.0,
                       title: str = "perf trends") -> str:
    """The regression-timeline report as self-contained HTML.

    Raises ``ValueError`` with fewer than two artifacts — a single
    point has no trend.
    """
    if len(points) < 2:
        raise ValueError(
            f"need at least 2 artifacts for a trend, got "
            f"{len(points)}")
    series = _series(points)
    crossings = find_crossings(points, threshold_pct)
    moved = {entry["metric"] for entry in crossings}
    # Widest-moving series first, then alphabetical for stability.
    ordered = sorted(
        series,
        key=lambda name: (name not in moved, name))
    dropped = max(0, len(ordered) - _MAX_PANELS)
    ordered = ordered[:_MAX_PANELS]

    safe = _html.escape(title)
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{safe}</title><style>{_CSS}</style></head><body>",
        f"<h1>{safe}</h1>",
        f"<p class='summary'>{len(points)} artifacts · "
        f"{len(series)} longitudinal series · threshold "
        f"±{threshold_pct:g}% · {len(crossings)} crossings</p>",
    ]
    rows = "".join(
        f"<tr><td>{index}</td>"
        f"<td>{_html.escape(point.label)}</td>"
        f"<td>{_html.escape(point.timestamp)}</td>"
        f"<td>{_html.escape(point.source)}</td></tr>"
        for index, point in enumerate(points))
    parts.append(
        "<h2>Artifacts</h2><table><thead><tr><th>#</th><th>label</th>"
        "<th>timestamp</th><th>source</th></tr></thead>"
        f"<tbody>{rows}</tbody></table>")

    parts.append("<h2>Threshold crossings</h2>")
    if crossings:
        rows = "".join(
            f"<tr><td>{_html.escape(entry['metric'])}</td>"
            f"<td>{_html.escape(entry['from'])} → "
            f"{_html.escape(entry['to'])}</td>"
            f"<td>{entry['before']:g} → {entry['after']:g}</td>"
            f"<td>{entry['change_pct']:+.1f}%</td></tr>"
            for entry in crossings)
        parts.append(
            "<table><thead><tr><th>metric</th><th>between</th>"
            "<th>values</th><th>change</th></tr></thead>"
            f"<tbody>{rows}</tbody></table>")
    else:
        parts.append(
            f"<p class='summary'>no metric moved more than "
            f"±{threshold_pct:g}% between consecutive artifacts</p>")

    parts.append("<h2>Timelines</h2>")
    if dropped:
        parts.append(
            f"<p class='summary'>showing {_MAX_PANELS} of "
            f"{len(series)} series (crossing series first; "
            f"{dropped} stable series omitted)</p>")
    hi = float(len(points) - 1)
    for name in ordered:
        samples = [(float(index), value)
                   for index, value in series[name]]
        flag = " ⚠" if name in moved else ""
        parts.append(_panel_svg(f"{name}{flag}", samples, 0.0,
                                max(hi, 1.0), ()))
    parts.append("</body></html>")
    return "".join(parts)
