"""Typed decision/event records and the bounded decision log.

Every control round of a :class:`~repro.core.sora.
ConcurrencyAdaptationFramework` emits one :class:`ControlRoundRecord`
capturing *why* the controller did what it did: the localized critical
service and its Pearson correlations, the propagated RT threshold, the
fitted polynomial degree and knee point, and — per adaptation target —
the chosen pool size or the reason the round held (drift, saturation,
censored window, idle pool). Hardware scale events and drift
detections land in the same log, so one JSONL file replays the whole
causal chain of a run.

Records are plain dataclasses with a stable ``kind`` tag and a
``to_dict`` that emits JSON-ready primitives; :func:`record_from_dict`
inverts the mapping for JSONL round trips.
"""

from __future__ import annotations

import json
import pathlib
import typing as _t
from collections import deque
from dataclasses import dataclass, field

#: Why a target's allocation changed — or why it did not.
DecisionOutcome = _t.Literal["applied", "hold"]


def _round_floats(mapping: dict[str, float],
                  digits: int = 4) -> dict[str, float]:
    return {key: round(float(value), digits)
            for key, value in mapping.items()}


@dataclass(frozen=True)
class TargetDecision:
    """One target's verdict within a control round.

    Attributes:
        target: the soft-resource target's name.
        trigger: what initiated the evaluation (periodic / scale-event
            / bootstrap).
        outcome: "applied" (allocation changed) or "hold".
        reason: machine-readable cause — the estimate method ("knee",
            "argmax") or the rule that fired ("saturation-grow",
            "overload-shed", "censored-hold", "idle-hold",
            "no-estimate", "unchanged", "proportional",
            "replica-track", "edge-unpressed-hold").
        before / after: per-replica allocation around the decision
            (``after == before`` for holds).
        threshold: propagated RT threshold active during the window
            (``None`` for latency-agnostic SCT).
        method: the estimate method when a model estimate existed.
        knee_concurrency / knee_rate: the accepted knee point.
        poly_degree: degree of the accepted polynomial fit.
        samples: raw pairs the model consumed.
        max_concurrency: highest observed concurrency in the window
            (evidence ceiling for the recommendation).
        growth_can_help: the §3.2 growth-gate verdict, when evaluated.
        fit_r2: coefficient of determination of the accepted
            polynomial fit over the aggregated scatter (1.0 = perfect;
            knee-confidence diagnostic).
        knee_prominence: normalized Kneedle difference-curve height at
            the accepted knee (larger = sharper knee; knee-confidence
            diagnostic).
        curve: optional downsampled ``[concurrency, rate]`` snapshot of
            the fitted curve, for knee plots in the report.
    """

    kind: _t.ClassVar[str] = "decision"

    target: str
    trigger: str
    outcome: DecisionOutcome
    reason: str
    before: int
    after: int
    threshold: float | None = None
    method: str | None = None
    knee_concurrency: float | None = None
    knee_rate: float | None = None
    poly_degree: int | None = None
    samples: int | None = None
    max_concurrency: float | None = None
    growth_can_help: bool | None = None
    fit_r2: float | None = None
    knee_prominence: float | None = None
    curve: tuple[tuple[float, float], ...] | None = None

    def to_dict(self) -> dict:
        """JSON-ready record payload."""
        payload: dict[str, _t.Any] = {
            "kind": self.kind,
            "target": self.target,
            "trigger": self.trigger,
            "outcome": self.outcome,
            "reason": self.reason,
            "before": self.before,
            "after": self.after,
        }
        for key in ("threshold", "method", "knee_concurrency",
                    "knee_rate", "poly_degree", "samples",
                    "max_concurrency", "growth_can_help",
                    "fit_r2", "knee_prominence"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.curve is not None:
            payload["curve"] = [[q, r] for q, r in self.curve]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TargetDecision":
        curve = payload.get("curve")
        return cls(
            target=payload["target"],
            trigger=payload["trigger"],
            outcome=payload["outcome"],
            reason=payload["reason"],
            before=payload["before"],
            after=payload["after"],
            threshold=payload.get("threshold"),
            method=payload.get("method"),
            knee_concurrency=payload.get("knee_concurrency"),
            knee_rate=payload.get("knee_rate"),
            poly_degree=payload.get("poly_degree"),
            samples=payload.get("samples"),
            max_concurrency=payload.get("max_concurrency"),
            growth_can_help=payload.get("growth_can_help"),
            fit_r2=payload.get("fit_r2"),
            knee_prominence=payload.get("knee_prominence"),
            curve=(tuple((q, r) for q, r in curve)
                   if curve is not None else None),
        )


@dataclass(frozen=True)
class ControlRoundRecord:
    """One adapter iteration: localization context + target decisions."""

    kind: _t.ClassVar[str] = "control-round"

    time: float
    controller: str
    trigger: str
    critical_service: str | None = None
    dominant_path: tuple[str, ...] = ()
    correlations: dict[str, float] = field(default_factory=dict)
    candidates: tuple[str, ...] = ()
    thresholds: dict[str, float] = field(default_factory=dict)
    decisions: tuple[TargetDecision, ...] = ()
    traces: int = 0
    wall_ms: float | None = None

    def to_dict(self) -> dict:
        """JSON-ready record payload."""
        payload: dict[str, _t.Any] = {
            "kind": self.kind,
            "time": self.time,
            "controller": self.controller,
            "trigger": self.trigger,
            "critical_service": self.critical_service,
            "dominant_path": list(self.dominant_path),
            "correlations": _round_floats(self.correlations),
            "candidates": list(self.candidates),
            "thresholds": _round_floats(self.thresholds, digits=6),
            "decisions": [d.to_dict() for d in self.decisions],
            "traces": self.traces,
        }
        if self.wall_ms is not None:
            payload["wall_ms"] = round(self.wall_ms, 3)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ControlRoundRecord":
        return cls(
            time=payload["time"],
            controller=payload["controller"],
            trigger=payload["trigger"],
            critical_service=payload.get("critical_service"),
            dominant_path=tuple(payload.get("dominant_path", ())),
            correlations=dict(payload.get("correlations", {})),
            candidates=tuple(payload.get("candidates", ())),
            thresholds=dict(payload.get("thresholds", {})),
            decisions=tuple(TargetDecision.from_dict(d)
                            for d in payload.get("decisions", ())),
            traces=payload.get("traces", 0),
            wall_ms=payload.get("wall_ms"),
        )


@dataclass(frozen=True)
class ScaleEventRecord:
    """A hardware scaling action, as seen by the observability layer."""

    kind: _t.ClassVar[str] = "scale-event"

    time: float
    service: str
    scale_kind: str
    before: float
    after: float
    autoscaler: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready record payload."""
        return {
            "kind": self.kind,
            "time": self.time,
            "service": self.service,
            "scale_kind": self.scale_kind,
            "before": self.before,
            "after": self.after,
            "autoscaler": self.autoscaler,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScaleEventRecord":
        return cls(time=payload["time"], service=payload["service"],
                   scale_kind=payload["scale_kind"],
                   before=payload["before"], after=payload["after"],
                   autoscaler=payload.get("autoscaler"))


@dataclass(frozen=True)
class DriftRecord:
    """A Page-Hinkley regime-shift detection on one target."""

    kind: _t.ClassVar[str] = "drift"

    time: float
    target: str

    def to_dict(self) -> dict:
        """JSON-ready record payload."""
        return {"kind": self.kind, "time": self.time,
                "target": self.target}

    @classmethod
    def from_dict(cls, payload: dict) -> "DriftRecord":
        return cls(time=payload["time"], target=payload["target"])


@dataclass(frozen=True)
class FaultRecord:
    """An injected fault transition (see :mod:`repro.faults`).

    Attributes:
        time: simulated time of the transition.
        fault: fault kind ("crash", "interference", "edge-latency",
            "edge-failure", "blackout").
        phase: "inject" when the fault begins, "recover" when it
            clears.
        service: affected service, for service-scoped faults.
        edge: ``"caller->callee"``, for edge-scoped faults.
        detail: kind-specific magnitudes (demand factor, probability,
            dropped request count, ...), JSON-ready.
    """

    kind: _t.ClassVar[str] = "fault"

    time: float
    fault: str
    phase: str
    service: str | None = None
    edge: str | None = None
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready record payload."""
        payload: dict[str, _t.Any] = {
            "kind": self.kind,
            "time": self.time,
            "fault": self.fault,
            "phase": self.phase,
        }
        if self.service is not None:
            payload["service"] = self.service
        if self.edge is not None:
            payload["edge"] = self.edge
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultRecord":
        return cls(time=payload["time"], fault=payload["fault"],
                   phase=payload["phase"],
                   service=payload.get("service"),
                   edge=payload.get("edge"),
                   detail=dict(payload.get("detail", {})))


@dataclass(frozen=True)
class AlertRecord:
    """An SLO burn-rate alert transition (see :mod:`repro.obs.slo`).

    Attributes:
        time: simulated time of the transition.
        slo: name of the SLO the rule guards.
        rule: alert rule name ("fast-burn", "slow-burn", ...).
        phase: "fire" on the rising edge, "clear" on the falling edge.
        severity: "page" or "ticket" (SRE-workbook convention).
        burn_long: long-window burn rate at the transition.
        burn_short: short-window burn rate at the transition.
        factor: the rule's burn-rate threshold.
        budget_remaining: fraction of the sliding-window error budget
            still unspent at the transition (may be negative).
    """

    kind: _t.ClassVar[str] = "alert"

    time: float
    slo: str
    rule: str
    phase: str
    severity: str
    burn_long: float
    burn_short: float
    factor: float
    budget_remaining: float

    def to_dict(self) -> dict:
        """JSON-ready record payload."""
        return {
            "kind": self.kind,
            "time": self.time,
            "slo": self.slo,
            "rule": self.rule,
            "phase": self.phase,
            "severity": self.severity,
            "burn_long": round(self.burn_long, 4),
            "burn_short": round(self.burn_short, 4),
            "factor": self.factor,
            "budget_remaining": round(self.budget_remaining, 6),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AlertRecord":
        return cls(time=payload["time"], slo=payload["slo"],
                   rule=payload["rule"], phase=payload["phase"],
                   severity=payload["severity"],
                   burn_long=payload["burn_long"],
                   burn_short=payload["burn_short"],
                   factor=payload["factor"],
                   budget_remaining=payload["budget_remaining"])


ObsRecord = _t.Union[ControlRoundRecord, TargetDecision,
                     ScaleEventRecord, DriftRecord, FaultRecord,
                     AlertRecord]

_RECORD_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (ControlRoundRecord, TargetDecision, ScaleEventRecord,
                DriftRecord, FaultRecord, AlertRecord)
}


def record_from_dict(payload: dict) -> ObsRecord:
    """Rebuild a typed record from its ``to_dict`` payload."""
    kind = payload.get("kind")
    cls = _RECORD_TYPES.get(_t.cast(str, kind))
    if cls is None:
        raise ValueError(f"unknown record kind {kind!r}")
    return cls.from_dict(payload)


class DecisionLog:
    """Bounded, append-only store of observability records.

    The cap makes the log safe to leave enabled on long runs; the
    oldest records are evicted first. All report rendering and JSONL
    export run off this object.
    """

    def __init__(self, max_records: int = 4096) -> None:
        if max_records < 1:
            raise ValueError(
                f"max_records must be >= 1, got {max_records}")
        self._records: deque[ObsRecord] = deque(maxlen=max_records)
        self.total_recorded = 0

    def append(self, record: ObsRecord) -> None:
        """Retain one record (oldest evicted past capacity)."""
        self._records.append(record)
        self.total_recorded += 1

    def records(self, kind: str | None = None) -> list[ObsRecord]:
        """All retained records, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def rounds(self) -> list[ControlRoundRecord]:
        """All retained control-round records, oldest first."""
        return _t.cast("list[ControlRoundRecord]",
                       self.records(ControlRoundRecord.kind))

    def applied(self) -> list[tuple[float, TargetDecision]]:
        """``(time, decision)`` for every allocation change, in order.

        Covers both decisions nested in control rounds and standalone
        scale-triggered decisions (whose time is the enclosing round's
        or the scale event's).
        """
        changes: list[tuple[float, TargetDecision]] = []
        for record in self._records:
            if isinstance(record, ControlRoundRecord):
                changes.extend((record.time, decision)
                               for decision in record.decisions
                               if decision.outcome == "applied")
        return changes

    def scale_events(self) -> list[ScaleEventRecord]:
        """All retained autoscaler scale events, oldest first."""
        return _t.cast("list[ScaleEventRecord]",
                       self.records(ScaleEventRecord.kind))

    def fault_events(self) -> list[FaultRecord]:
        """All retained fault-injection records, oldest first."""
        return _t.cast("list[FaultRecord]",
                       self.records(FaultRecord.kind))

    def alerts(self) -> list[AlertRecord]:
        """All retained burn-rate alert records, oldest first."""
        return _t.cast("list[AlertRecord]",
                       self.records(AlertRecord.kind))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> _t.Iterator[ObsRecord]:
        return iter(self._records)

    # ------------------------------------------------------------------
    # JSONL round trip
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per line, in record order."""
        return "\n".join(json.dumps(r.to_dict(), sort_keys=True)
                         for r in self._records)

    def write_jsonl(self, path: str | pathlib.Path) -> int:
        """Write the log to ``path``; returns the record count."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = self.to_jsonl()
        path.write_text(text + ("\n" if text else ""),
                        encoding="utf-8")
        return len(self._records)

    @classmethod
    def from_jsonl(cls, text: str,
                   max_records: int = 4096) -> "DecisionLog":
        """Parse a JSONL document produced by :meth:`to_jsonl`."""
        log = cls(max_records=max_records)
        for line in text.splitlines():
            line = line.strip()
            if line:
                log.append(record_from_dict(json.loads(line)))
        return log

    @classmethod
    def read_jsonl(cls, path: str | pathlib.Path,
                   max_records: int = 4096) -> "DecisionLog":
        return cls.from_jsonl(
            pathlib.Path(path).read_text(encoding="utf-8"),
            max_records=max_records)
