"""Run-scoped metrics registry: counters, gauges, bounded histograms.

The registry is the quantitative half of ``repro.obs``: control loops
and samplers increment counters and observe timings into it, and the
explainability report renders a snapshot at the end of a run.

Two properties matter more than feature count:

- **Near-zero cost when disabled.** A disabled registry hands out
  shared singleton no-op instruments whose methods are empty; call
  sites can keep unconditional ``counter.inc()`` calls on warm paths
  without giving back the PR-2 fast-path wins. Truly hot paths (the
  event loop, the 100 ms samplers) additionally guard on
  ``if obs:`` so even the no-op call is skipped.
- **Bounded memory.** Histograms keep a fixed-capacity ring buffer of
  recent observations (plus running count/sum/min/max over everything),
  so a week-long run cannot grow the registry without bound.
"""

from __future__ import annotations

import math
import typing as _t

import numpy as np


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def snapshot(self) -> dict:
        """JSON-ready summary for reports and exposition."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)

    def snapshot(self) -> dict:
        """JSON-ready summary (``None`` value while never set)."""
        value = self.value if self.value == self.value else None
        return {"type": "gauge", "value": value}


class Histogram:
    """Observation distribution over a bounded ring buffer.

    Running count/sum/min/max cover the whole run; percentiles are
    computed over the most recent ``capacity`` observations, which is
    what a control-loop health check actually wants (recent behaviour,
    not a run-lifetime mixture).
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_ring", "_cursor", "_filled", "exemplar")

    def __init__(self, name: str, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._ring = np.empty(capacity, dtype=np.float64)
        self._cursor = 0
        self._filled = 0
        #: Optional ``{"trace_id", "value", "timestamp"}`` exemplar —
        #: the worst observation with a trace attached (OpenMetrics
        #: exposition links it on the ``_count`` sample).
        self.exemplar: dict | None = None

    def observe(self, value: float) -> None:
        """Record one observation (the ring evicts the oldest)."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        ring = self._ring
        ring[self._cursor] = value
        self._cursor = (self._cursor + 1) % ring.shape[0]
        if self._filled < ring.shape[0]:
            self._filled += 1

    @property
    def mean(self) -> float:
        """Run-lifetime mean (not just the retained ring)."""
        return self.total / self.count if self.count else float("nan")

    def recent(self) -> np.ndarray:
        """The retained observations (unordered)."""
        return self._ring[:self._filled]

    def percentile(self, q: float) -> float:
        """Percentile over the retained (recent) observations."""
        if self._filled == 0:
            return float("nan")
        return float(np.percentile(self.recent(), q))

    def link_exemplar(self, trace_id: int, value: float,
                      timestamp: float) -> None:
        """Pin a trace id to ``value``; the largest-valued link wins."""
        if self.exemplar is None or value > self.exemplar["value"]:
            self.exemplar = {"trace_id": int(trace_id),
                             "value": float(value),
                             "timestamp": float(timestamp)}

    def snapshot(self) -> dict:
        """JSON-ready summary: run-lifetime stats + recent quantiles."""
        if self.count == 0:
            return {"type": "histogram", "count": 0}
        snap = {
            "type": "histogram",
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "retained": int(self._filled),
        }
        if self.exemplar is not None:
            snap["exemplar"] = dict(self.exemplar)
        return snap


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def snapshot(self) -> dict:
        return {"type": "counter", "value": 0.0}


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = float("nan")

    def set(self, value: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": None}


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    mean = float("nan")
    exemplar = None

    def observe(self, value: float) -> None:
        pass

    def link_exemplar(self, trace_id: int, value: float,
                      timestamp: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return float("nan")

    def snapshot(self) -> dict:
        return {"type": "histogram", "count": 0}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments for one run.

    ``counter()``/``gauge()``/``histogram()`` create on first use and
    return the existing instrument afterwards, so call sites never need
    registration ceremony. A disabled registry returns the shared
    no-op singletons and records nothing.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def __bool__(self) -> bool:
        return self.enabled

    def _get(self, name: str, kind: type, null: object,
             **kwargs) -> _t.Any:
        if not self.enabled:
            return null
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter, NULL_COUNTER)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge, NULL_GAUGE)

    def histogram(self, name: str, capacity: int = 1024) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(name, Histogram, NULL_HISTOGRAM,
                         capacity=capacity)

    def names(self) -> list[str]:
        """Sorted names of every registered instrument."""
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready ``name -> summary`` for every instrument."""
        return {name: inst.snapshot()
                for name, inst in sorted(self._instruments.items())}
