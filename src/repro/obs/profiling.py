"""Control-loop and event-loop profiling hooks.

Two instruments:

- :class:`PhaseProfiler` — wall-clock timing of named control phases
  (localize, propagate, estimate, adapt) via a lightweight context
  manager. Aggregates count/total/max per phase, so a run's report can
  show where controller CPU time goes.
- :class:`EngineProfiler` — a step monitor on the simulation
  :class:`~repro.sim.engine.Environment` sampling events/second and
  event-heap depth every ``sample_every`` events. Attach only when
  observability is on: monitor callbacks run once per simulated event.

Both measure *wall* time (``time.perf_counter``), never simulated
time, so enabling them cannot perturb simulation determinism.
"""

from __future__ import annotations

import time
import typing as _t
from collections import deque
from dataclasses import dataclass

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment


@dataclass
class PhaseStats:
    """Aggregate wall-clock cost of one named phase."""

    name: str
    count: int = 0
    total: float = 0.0
    max: float = 0.0
    last: float = 0.0

    @property
    def mean(self) -> float:
        """Mean seconds per enter/exit of this phase."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-ready phase summary (times in milliseconds)."""
        return {
            "count": self.count,
            "total_ms": round(self.total * 1e3, 3),
            "mean_ms": round(self.mean * 1e3, 3),
            "max_ms": round(self.max * 1e3, 3),
        }


class _PhaseTimer:
    """Reusable-per-call context manager feeding one PhaseStats."""

    __slots__ = ("_stats", "_started")

    def __init__(self, stats: PhaseStats) -> None:
        self._stats = stats
        self._started = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._started
        stats = self._stats
        stats.count += 1
        stats.total += elapsed
        stats.last = elapsed
        if elapsed > stats.max:
            stats.max = elapsed


class PhaseProfiler:
    """Named wall-clock phase timers.

    Usage::

        with profiler.phase("localize"):
            report = locator.locate(traces, utilizations)
    """

    def __init__(self) -> None:
        self.phases: dict[str, PhaseStats] = {}
        self._timers: dict[str, _PhaseTimer] = {}

    def phase(self, name: str) -> _PhaseTimer:
        """Context manager timing one named phase (reused by name)."""
        timer = self._timers.get(name)
        if timer is None:
            stats = PhaseStats(name)
            self.phases[name] = stats
            timer = _PhaseTimer(stats)
            self._timers[name] = timer
        return timer

    def summary(self) -> dict[str, dict]:
        """JSON-ready per-phase aggregates."""
        return {name: stats.to_dict()
                for name, stats in sorted(self.phases.items())}


class EngineProfiler:
    """Event-loop throughput and queue-depth sampling.

    Registers a step monitor that counts processed events and, every
    ``sample_every`` events, records a ``(sim_time, events_per_sec,
    queue_depth)`` sample into a bounded buffer. ``events_per_sec`` is
    the wall-clock rate over the sampling stride.
    """

    def __init__(self, env: "Environment", sample_every: int = 2048,
                 max_samples: int = 4096) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}")
        self.env = env
        self.sample_every = sample_every
        self.events = 0
        self.samples: deque[tuple[float, float, int]] = deque(
            maxlen=max_samples)
        self._wall_started = 0.0
        self._wall_last_sample = 0.0
        self._since_sample = 0
        self._attached = False
        self._wall_total = 0.0

    def _monitor(self, when: float, _eid: int, _event: object) -> None:
        self.events += 1
        self._since_sample += 1
        if self._since_sample >= self.sample_every:
            now = time.perf_counter()
            elapsed = now - self._wall_last_sample
            rate = self._since_sample / elapsed if elapsed > 0 else 0.0
            self.samples.append((when, rate, self.env.queue_depth))
            self._wall_last_sample = now
            self._since_sample = 0

    def attach(self) -> None:
        """Start observing the environment (idempotent)."""
        if self._attached:
            return
        self._attached = True
        self._wall_started = time.perf_counter()
        self._wall_last_sample = self._wall_started
        self.env.add_monitor(self._monitor)

    def detach(self) -> None:
        """Stop observing and freeze the wall-clock total."""
        if not self._attached:
            return
        self._attached = False
        self._wall_total += time.perf_counter() - self._wall_started
        self.env.remove_monitor(self._monitor)

    def summary(self) -> dict:
        """JSON-ready run aggregates."""
        wall = self._wall_total
        if self._attached:
            wall += time.perf_counter() - self._wall_started
        depths = [depth for _t_, _r, depth in self.samples]
        rates = [rate for _t_, rate, _d in self.samples if rate > 0]
        return {
            "events": self.events,
            "wall_seconds": round(wall, 6),
            "events_per_sec": round(self.events / wall, 1) if wall > 0
            else 0.0,
            "sampled_rate_max": round(max(rates), 1) if rates else 0.0,
            "queue_depth_mean": (round(sum(depths) / len(depths), 1)
                                 if depths else 0.0),
            "queue_depth_max": max(depths) if depths else 0,
            "samples": len(self.samples),
        }
