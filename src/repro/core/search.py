"""Step-by-step heuristic tuning baseline (paper §3.1).

The paper contrasts its one-shot knee estimation against "a step-by-step
heuristic approach such as Bayesian optimization" (BestConfig, iter8,
ConfAdvisor): tuners that must *try* configurations sequentially and
measure each one before moving on. This module implements that family's
simplest honest member — stochastic hill climbing over the pool size —
so the adaptation-speed comparison the paper argues for can be run:

- each evaluation period, measure the goodput of the current allocation;
- propose a neighboring allocation (multiplicative step up or down);
- keep the proposal if it measured better, otherwise step back and flip
  the search direction.

One observation per period is the family's defining cost: where the SCG
model extracts the whole goodput-vs-concurrency curve from a single
window (because bursty traffic naturally sweeps the concurrency range),
a sequential tuner needs one *window per configuration probed*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.app.application import Application
from repro.core.sora import AdaptationAction
from repro.core.targets import SoftResourceTarget
from repro.sim.engine import Environment


@dataclass
class HillClimbConfig:
    """Tuning knobs for the sequential tuner.

    Attributes:
        evaluation_period: how long each configuration is measured
            before the next move (one "trial").
        step_factor: multiplicative neighborhood (1.3 → try ±30%).
        min_allocation / max_allocation: search bounds.
        tolerance: relative goodput improvement below which a move is
            considered neutral (random restart direction).
    """

    evaluation_period: float = 15.0
    step_factor: float = 1.3
    min_allocation: int = 2
    max_allocation: int = 512
    tolerance: float = 0.02

    def __post_init__(self) -> None:
        if self.evaluation_period <= 0:
            raise ValueError("evaluation_period must be positive")
        if self.step_factor <= 1.0:
            raise ValueError(
                f"step_factor must exceed 1, got {self.step_factor}")
        if not 1 <= self.min_allocation <= self.max_allocation:
            raise ValueError("invalid allocation bounds")


class HillClimbController:
    """Sequential configuration tuner over one soft-resource target.

    Interface-compatible with the adaptation frameworks where the
    harness needs it (``start()``, ``actions``): measurements use the
    target service's goodput under a fixed SLA threshold.
    """

    def __init__(self, env: Environment, app: Application,
                 target: SoftResourceTarget, *, sla: float,
                 rng: np.random.Generator,
                 config: HillClimbConfig | None = None) -> None:
        if sla <= 0:
            raise ValueError(f"sla must be positive, got {sla}")
        self.env = env
        self.app = app
        self.target = target
        self.sla = sla
        self.config = config or HillClimbConfig()
        self._rng = rng
        self.actions: list[AdaptationAction] = []
        #: ``(time, allocation, goodput)`` measurement log.
        self.trials: list[tuple[float, int, float]] = []
        self._direction = 1
        self._previous_goodput: float | None = None
        self._previous_allocation: int | None = None
        self._started = False

    def start(self) -> None:
        """Launch the tuning loop (idempotent)."""
        if self._started:
            return
        self._started = True
        self.env.process(self._loop(), name="hill-climb")

    def _measure(self, since: float) -> float:
        latencies = self.target.completion_latencies(since, self.env.now)
        window = self.env.now - since
        if window <= 0 or latencies.size == 0:
            return 0.0
        return float(np.count_nonzero(latencies <= self.sla)) / window

    def _apply(self, allocation: int) -> None:
        before = self.target.allocation()
        if allocation == before:
            return
        self.target.apply(allocation)
        self.actions.append(AdaptationAction(
            time=self.env.now, target=self.target.name, before=before,
            after=allocation, method="hill-climb", trigger="periodic",
            threshold=self.sla))

    def _propose(self, current: int) -> int:
        factor = self.config.step_factor
        if self._direction > 0:
            candidate = max(current + 1, math.ceil(current * factor))
        else:
            candidate = min(current - 1, math.floor(current / factor))
        return max(self.config.min_allocation,
                   min(self.config.max_allocation, candidate))

    def _loop(self):
        config = self.config
        while True:
            window_start = self.env.now
            yield self.env.timeout(config.evaluation_period)
            current = self.target.allocation()
            goodput = self._measure(window_start)
            self.trials.append((self.env.now, current, goodput))

            if self._previous_goodput is not None and \
                    self._previous_allocation is not None and \
                    self._previous_allocation != current:
                reference = max(self._previous_goodput, 1e-9)
                change = (goodput - self._previous_goodput) / reference
                if change < -config.tolerance:
                    # Worse: revert and flip direction.
                    self._direction *= -1
                    self._apply(self._previous_allocation)
                    self._previous_goodput = goodput
                    self._previous_allocation = current
                    continue
                if abs(change) <= config.tolerance and \
                        self._rng.random() < 0.5:
                    self._direction *= -1
            self._previous_goodput = goodput
            self._previous_allocation = current
            proposal = self._propose(current)
            if proposal == current:
                # Pinned against a search bound: turn around.
                self._direction *= -1
                proposal = self._propose(current)
            self._apply(proposal)
