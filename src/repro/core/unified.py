"""Unified hardware + soft resource controller (paper §4.1 future work).

The paper keeps hardware scaling and concurrency adaptation in separate
loops for composability, noting that "a unified controller can
potentially be an ideal solution for this joint optimization problem,
which is subject to our future work". This module implements that
extension: one control loop that owns *both* knobs for the critical
service.

Decision logic per control period, on top of the inherited SCG
machinery:

1. Run the normal Sora adaptation step (pool sizing from the goodput
   knee / saturation rules).
2. Diagnose which resource binds, from the same window:
   - pool saturated *and* the service's CPU near its limit → the
     hardware is the wall: scale the CPU limit up and bootstrap the
     pool proportionally in the same actuation (no cross-controller
     handoff latency);
   - CPU comfortably idle for a sustained period and no SLO pressure →
     scale the CPU limit down (the pool follows at the next periodic
     estimate).

Compared with Sora-over-FIRM, the unified loop removes the delay
between the hardware action and the soft-resource catch-up.
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass

import numpy as np

from repro.app.application import Application
from repro.autoscalers.base import ScaleEvent
from repro.core.monitoring import MonitoringModule
from repro.core.sora import SoraController
from repro.core.targets import SoftResourceTarget
from repro.sim.engine import Environment


@dataclass
class UnifiedConfig:
    """Hardware-side knobs of the unified controller."""

    min_cores: float = 1.0
    max_cores: float = 8.0
    step: float = 1.0
    utilization_high: float = 0.75
    utilization_low: float = 0.3
    scale_down_stabilization: float = 60.0
    window: float = 15.0

    def __post_init__(self) -> None:
        if not 0 < self.min_cores <= self.max_cores:
            raise ValueError(
                f"need 0 < min_cores <= max_cores, got "
                f"[{self.min_cores}, {self.max_cores}]")
        if self.step <= 0:
            raise ValueError(f"step must be positive, got {self.step}")
        if not 0 <= self.utilization_low < self.utilization_high <= 1:
            raise ValueError("need 0 <= low < high <= 1")


class UnifiedSoraController(SoraController):
    """Joint hardware + soft resource control for the target services.

    Unlike :class:`SoraController`, no external autoscaler is attached:
    this controller owns the vertical CPU limit of every target's
    service itself and emits the same :class:`ScaleEvent` records into
    :attr:`hardware_log`.
    """

    def __init__(self, env: Environment, app: Application,
                 monitoring: MonitoringModule,
                 targets: _t.Sequence[SoftResourceTarget], *, sla: float,
                 unified_config: UnifiedConfig | None = None,
                 **kwargs) -> None:
        kwargs.pop("autoscaler", None)
        super().__init__(env, app, monitoring, targets, sla=sla,
                         autoscaler=None, **kwargs)
        self.unified = unified_config or UnifiedConfig()
        self.hardware_log: list[ScaleEvent] = []
        self._calm_since: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def control(self) -> None:
        super().control()
        for target in self.targets:
            self._scale_hardware(target)

    def _scale_hardware(self, target: SoftResourceTarget) -> None:
        service = target.service
        config = self.unified
        utilization = self.monitoring.utilization_over(
            service.name, config.window)
        current = service.cores_per_replica
        estimator = self.estimators[target.name]

        slo_pressure = not self._growth_can_help(target, estimator) or \
            self._badput_fraction(target, estimator) > 0.05

        if utilization > config.utilization_high and \
                current < config.max_cores and slo_pressure:
            after = min(config.max_cores, current + config.step)
            self._apply_cores(service, current, after)
            # Joint actuation: bootstrap the pool for the new capacity
            # immediately instead of waiting for a scale event.
            ratio = after / current
            bootstrap = min(self.config.max_allocation, max(
                self._desired[target.name] + 1,
                math.ceil(self._desired[target.name] * ratio)))
            self._apply(target, bootstrap, "proportional", "bootstrap")
            estimator.sampler.prune(self.env.now)
            self._calm_since.pop(service.name, None)
        elif utilization < config.utilization_low and \
                current > config.min_cores and not slo_pressure:
            started = self._calm_since.setdefault(service.name,
                                                  self.env.now)
            if self.env.now - started >= config.scale_down_stabilization:
                after = max(config.min_cores, current - config.step)
                self._apply_cores(service, current, after)
                estimator.sampler.prune(self.env.now)
                self._calm_since.pop(service.name, None)
        else:
            self._calm_since.pop(service.name, None)

    def _badput_fraction(self, target: SoftResourceTarget,
                         estimator) -> float:
        """Share of recent completions missing the local threshold."""
        since = self.env.now - estimator.config.window
        latencies = target.completion_latencies(since, self.env.now)
        if latencies.size == 0:
            return 0.0
        threshold = self._thresholds[target.name]
        return float(np.count_nonzero(latencies > threshold)) / \
            latencies.size

    def _apply_cores(self, service, before: float, after: float) -> None:
        service.set_cores(after)
        self.hardware_log.append(ScaleEvent(
            time=self.env.now, service=service.name, kind="vertical",
            before=before, after=after))
