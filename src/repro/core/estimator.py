"""Concurrency Estimator (paper §4.1).

Continuously samples ``<concurrency, goodput>`` pairs for a target soft
resource (Metrics Collection phase) and periodically re-runs the
SCG/SCT model over the trailing window (Estimation phase), caching the
latest recommendation for the Reallocation Module to query.
"""

from __future__ import annotations

import logging
import typing as _t
from dataclasses import dataclass

import repro.obs as obs_mod
from repro.core.scg import ConcurrencyEstimate, ScatterCurveModel
from repro.core.targets import SoftResourceTarget
from repro.metrics.sampler import ConcurrencyGoodputSampler
from repro.sim.engine import Environment

logger = logging.getLogger(__name__)


@dataclass
class EstimatorConfig:
    """Estimator timing knobs (paper defaults).

    Attributes:
        sampling_interval: pair granularity — 100 ms gives the best
            MAPE in Table 1.
        window: trailing window the model sees — 60 s accumulates ~600
            points (§4.1).
        update_period: how often the cached estimate refreshes.
    """

    sampling_interval: float = 0.1
    window: float = 60.0
    update_period: float = 15.0

    def __post_init__(self) -> None:
        if self.sampling_interval <= 0 or self.window <= 0 or \
                self.update_period <= 0:
            raise ValueError("all estimator periods must be positive")
        if self.window < self.sampling_interval:
            raise ValueError("window shorter than sampling interval")


@dataclass
class EstimateRecord:
    """History entry: when an estimate was produced and what it said."""

    time: float
    estimate: ConcurrencyEstimate


class ConcurrencyEstimator:
    """Online estimator bound to one soft-resource target.

    Args:
        env: simulation environment.
        target: the adapted soft resource.
        model: SCG (goodput) or SCT (throughput) model instance.
        threshold_provider: callable returning the current propagated RT
            threshold in seconds (ignored by SCT: pass ``None`` to use
            throughput pairs).
        config: timing knobs.
        obs: observability scope (phase timings + estimate counters);
            defaults to the disabled :data:`repro.obs.NULL`.
    """

    def __init__(self, env: Environment, target: SoftResourceTarget,
                 model: ScatterCurveModel,
                 threshold_provider: _t.Callable[[], float] | None,
                 config: EstimatorConfig | None = None,
                 obs: "obs_mod.Observability | None" = None) -> None:
        self.env = env
        self.target = target
        self.model = model
        self.config = config or EstimatorConfig()
        self.threshold_provider = threshold_provider
        self.obs = obs if obs is not None else obs_mod.NULL
        self._uses_goodput = threshold_provider is not None
        self.sampler = ConcurrencyGoodputSampler(
            env,
            concurrency_integral=target.concurrency_integral,
            completion_source=target.completion_latencies,
            threshold_provider=(threshold_provider or
                                (lambda: float("inf"))),
            interval=self.config.sampling_interval,
            name=target.name,
            obs=self.obs,
        )
        self.latest: ConcurrencyEstimate | None = None
        self.history: list[EstimateRecord] = []
        self._started = False

    def start(self) -> None:
        """Begin sampling and periodic estimation (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sampler.start()
        self.env.process(self._loop(), name=f"estimator:{self.target.name}")

    def estimate_now(self) -> ConcurrencyEstimate | None:
        """Run the model over the trailing window immediately."""
        since = self.env.now - self.config.window
        concurrency, rate = self.sampler.pairs(
            since=since, use_threshold=self._uses_goodput)
        threshold = (self.threshold_provider()
                     if self._uses_goodput else None)
        with self.obs.phase(f"estimate:{self.model.name}"):
            if self._uses_goodput:
                estimate = self.model.estimate(concurrency, rate,
                                               threshold=threshold)
            else:
                estimate = self.model.estimate(concurrency, rate)
        if estimate is not None:
            self.latest = estimate
            self.history.append(EstimateRecord(self.env.now, estimate))
            if self.obs:
                self.obs.registry.counter(
                    f"estimator.{estimate.method}").inc()
        else:
            logger.debug(
                "t=%.1f %s: no estimate (%d pairs in window; need "
                "signal over >= %d samples / %d distinct levels)",
                self.env.now, self.target.name, concurrency.size,
                self.model.config.min_samples,
                self.model.config.min_distinct)
            if self.obs:
                self.obs.registry.counter("estimator.no_estimate").inc()
        return estimate

    def recommendation(self) -> int | None:
        """The cached per-replica optimal concurrency, if any."""
        return (self.latest.optimal_concurrency
                if self.latest is not None else None)

    def _loop(self):
        while True:
            yield self.env.timeout(self.config.update_period)
            self.estimate_now()
            self.sampler.prune(self.env.now - 2 * self.config.window)
