"""RT Threshold Propagation (SCG phase 2, paper §3.2).

Deadline propagation lets a local service perceive the global SLA: for
critical service :math:`s_i` at depth :math:`i` of the critical path,

.. math:: RTT_{s_i} \\le SLA - \\sum_{k=0}^{i-1} PT_{s_k}

— the global SLA minus the processing time (request + response, i.e.
downstream-excluded self time) of every upstream service on the path.
The upstream budget is measured from the traces in the analysis window,
so the propagated threshold tracks runtime conditions.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

from repro.tracing.critical_path import extract_critical_path
from repro.tracing.span import Span


@dataclass(frozen=True)
class PropagatedDeadline:
    """A propagated response-time threshold for one service.

    Attributes:
        service: the critical service.
        sla: global end-to-end SLA (seconds).
        upstream_budget: measured mean upstream processing time.
        threshold: the resulting local RT threshold.
        samples: traces that contributed (service was on their critical
            path).
    """

    service: str
    sla: float
    upstream_budget: float
    threshold: float
    samples: int


def propagate_for_trace(root: Span, service: str,
                        sla: float) -> float | None:
    """Propagated threshold for ``service`` from one trace, or ``None``
    if the service is not on the trace's critical path."""
    path = extract_critical_path(root)
    if service not in path:
        return None
    upstream = path.upstream_of(service)
    budget = sum(span.self_time() for span in upstream)
    return sla - budget


class DeadlinePropagator:
    """Window-level deadline propagation.

    Args:
        sla: end-to-end SLA in seconds.
        floor_fraction: the local threshold never drops below
            ``floor_fraction * sla`` — upstream congestion must not
            starve the critical service's budget entirely.
    """

    def __init__(self, sla: float, floor_fraction: float = 0.1) -> None:
        if sla <= 0:
            raise ValueError(f"sla must be positive, got {sla}")
        if not 0.0 <= floor_fraction < 1.0:
            raise ValueError(
                f"floor_fraction must be in [0, 1), got {floor_fraction}")
        self.sla = sla
        self.floor_fraction = floor_fraction

    def propagate(self, traces: _t.Sequence[Span],
                  service: str) -> PropagatedDeadline:
        """Mean-upstream-budget propagation over a trace window.

        With no applicable traces the full SLA is returned (a service
        with no observed upstreams keeps the whole budget).
        """
        thresholds = []
        for root in traces:
            value = propagate_for_trace(root, service, self.sla)
            if value is not None:
                thresholds.append(value)
        if not thresholds:
            return PropagatedDeadline(
                service=service, sla=self.sla, upstream_budget=0.0,
                threshold=self.sla, samples=0)
        mean_threshold = float(np.mean(thresholds))
        floor = self.sla * self.floor_fraction
        clamped = min(self.sla, max(floor, mean_threshold))
        return PropagatedDeadline(
            service=service, sla=self.sla,
            upstream_budget=self.sla - mean_threshold,
            threshold=clamped, samples=len(thresholds))
