"""Critical Service Localization (SCG phase 1, paper §3.2).

Two-step method inspired by FIRM:

1. *Utilization screening* — services whose resource utilization is
   near capacity are candidate critical services (congestion suspects).
2. *Correlation ranking* — over the traces in the analysis window,
   compute the Pearson correlation between each service's processing
   time (:math:`PT_{s_i}`, downstream-excluded) and the end-to-end
   response time of the critical path (:math:`RT_{CP}`). The service
   with the largest coefficient contributes most to latency variation.

When both steps nominate a service (they "overlap most of the time" per
the paper) that service is returned; otherwise the correlation winner
among the utilization candidates, falling back to the global
correlation winner.
"""

from __future__ import annotations

import logging
import typing as _t
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.analysis.correlation import pearson
from repro.tracing.critical_path import extract_critical_path
from repro.tracing.span import Span

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class LocalizationReport:
    """Outcome of one localization pass.

    Attributes:
        critical_service: the nominated service (``None`` if the window
            held no traces).
        dominant_path: the most frequent critical path in the window.
        correlations: PCC(PT_s, RT_CP) per service.
        utilizations: the utilization snapshot used for screening.
        candidates: services that passed the utilization screen.
        path_frequencies: occurrences of each distinct critical path.
    """

    critical_service: str | None
    dominant_path: tuple[str, ...]
    correlations: dict[str, float] = field(default_factory=dict)
    utilizations: dict[str, float] = field(default_factory=dict)
    candidates: tuple[str, ...] = ()
    path_frequencies: dict[tuple[str, ...], int] = field(
        default_factory=dict)


class CriticalServiceLocator:
    """Locates the bottleneck service on the dominant critical path.

    Args:
        utilization_threshold: utilization fraction above which a
            service is considered a congestion candidate (step 1).
        exclude: services never nominated (e.g. the front-end itself,
            which hardware/soft scaling does not target).
    """

    def __init__(self, utilization_threshold: float = 0.7,
                 exclude: _t.Sequence[str] = ()) -> None:
        if not 0.0 < utilization_threshold <= 1.0:
            raise ValueError(
                f"utilization_threshold must be in (0, 1], got "
                f"{utilization_threshold}")
        self.utilization_threshold = utilization_threshold
        self.exclude = frozenset(exclude)

    def locate(self, traces: _t.Sequence[Span],
               utilizations: dict[str, float]) -> LocalizationReport:
        """Analyze ``traces`` (finished roots) plus a utilization
        snapshot and nominate the critical service."""
        if not traces:
            return LocalizationReport(
                critical_service=None, dominant_path=(),
                utilizations=dict(utilizations))

        # Per-trace critical paths; collect (PT_s, RT_CP) sample pairs.
        path_counter: Counter[tuple[str, ...]] = Counter()
        processing: dict[str, list[float]] = defaultdict(list)
        path_durations: dict[str, list[float]] = defaultdict(list)
        for root in traces:
            path = extract_critical_path(root)
            path_counter[path.services] += 1
            duration = path.duration
            for span in path.spans:
                processing[span.service].append(span.self_time())
                path_durations[span.service].append(duration)

        dominant_path = path_counter.most_common(1)[0][0]
        correlations = {
            service: pearson(processing[service], path_durations[service])
            for service in processing
            if service not in self.exclude
        }
        candidates = tuple(
            service for service, value in utilizations.items()
            if value >= self.utilization_threshold
            and service not in self.exclude
        )

        critical = self._pick(correlations, candidates, dominant_path)
        if logger.isEnabledFor(logging.DEBUG):
            ranked = sorted(correlations.items(), key=lambda kv: -kv[1])
            logger.debug(
                "localized %s from %d traces (candidates=%s, top "
                "correlations=%s)", critical, len(traces),
                list(candidates),
                [(s, round(c, 3)) for s, c in ranked[:3]])
        return LocalizationReport(
            critical_service=critical,
            dominant_path=dominant_path,
            correlations=correlations,
            utilizations=dict(utilizations),
            candidates=candidates,
            path_frequencies=dict(path_counter),
        )

    def locate_from_aggregate(
            self, analytics,
            utilizations: dict[str, float]) -> LocalizationReport:
        """Nominate the critical service from streaming aggregates.

        Same two-step method as :meth:`locate`, but consuming a
        :class:`~repro.tracing.analytics.CriticalPathAggregator`
        instead of raw traces: the aggregator's streaming Pearson
        accumulators stand in for the per-window sample pairs and its
        top-K path table for the exhaustive path census. This is the
        sampling-proof path — the aggregator sees every finished trace
        before any sampling decision, so localization is identical
        whether the warehouse stores 100% or 5% of traces. The
        trade-off: correlations are run-to-date rather than windowed.
        """
        if analytics is None or not analytics.traces_observed:
            return LocalizationReport(
                critical_service=None, dominant_path=(),
                utilizations=dict(utilizations))
        correlations = {
            service: value
            for service, value in analytics.correlations().items()
            if service not in self.exclude
        }
        frequencies = analytics.path_frequencies()
        dominant_path = (max(frequencies, key=frequencies.__getitem__)
                         if frequencies else ())
        candidates = tuple(
            service for service, value in utilizations.items()
            if value >= self.utilization_threshold
            and service not in self.exclude
        )
        critical = self._pick(correlations, candidates, dominant_path)
        return LocalizationReport(
            critical_service=critical,
            dominant_path=dominant_path,
            correlations=correlations,
            utilizations=dict(utilizations),
            candidates=candidates,
            path_frequencies=dict(frequencies),
        )

    def _pick(self, correlations: dict[str, float],
              candidates: tuple[str, ...],
              dominant_path: tuple[str, ...]) -> str | None:
        if not correlations:
            return None
        # Prefer utilization candidates that actually sit on critical
        # paths; fall back to pure correlation ranking.
        scored_candidates = [c for c in candidates if c in correlations]
        pool = scored_candidates or [s for s in correlations]
        if not pool:
            return None
        best = max(pool, key=lambda s: (correlations[s],
                                        s in dominant_path))
        return best
