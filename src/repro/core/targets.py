"""Adaptation targets: which soft resource a controller reconfigures.

A :class:`SoftResourceTarget` adapts the estimator to one concrete
knob — Cart's per-replica server thread pool, Catalogue's DB connection
pool, Home-Timeline's ClientPool to Post Storage — exposing a uniform
interface: a per-replica concurrency probe, a completion-latency
source for goodput, and an ``apply()`` that writes the recommendation
back through the service's reconfiguration API (the simulated analogue
of Jolokia/JMX, Golang ``database/sql``, and Thrift ClientPool knobs,
§4.2).

Concurrency is normalized *per replica of the bottleneck service*, so
the knee found by the model is a per-replica optimum; ``apply()``
multiplies back by the replica count where the physical pool is shared
(client pools), exactly reproducing the paper's Fig. 12 behaviour
(10 conns/replica × 4 replicas → 40 total, drifting to 30 × 4 = 120).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.app.service import Microservice


class SoftResourceTarget(abc.ABC):
    """One adaptable soft resource, as seen by a controller."""

    #: The service whose processing the resource gates (goodput source
    #: and critical-service identity).
    service: Microservice

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Human-readable identity ("cart.threads", ...)."""

    @abc.abstractmethod
    def concurrency(self) -> float:
        """Instantaneous per-replica processing concurrency."""

    @abc.abstractmethod
    def concurrency_integral(self) -> float:
        """Cumulative per-replica concurrency-seconds (samplers
        difference this to obtain interval-mean concurrency)."""

    @abc.abstractmethod
    def allocation(self) -> int:
        """Currently allocated per-replica pool size."""

    @abc.abstractmethod
    def total_allocation(self) -> int:
        """Physically allocated tokens across the whole service."""

    @abc.abstractmethod
    def apply(self, per_replica_size: int) -> None:
        """Reconfigure the pool to a per-replica size."""

    def completion_latencies(self, since: float,
                             until: float) -> np.ndarray:
        """Residence times of the gated service's completions."""
        _times, latencies = self.service.metrics.completions(since, until)
        return latencies

    def processing_latencies(self, since: float,
                             until: float) -> np.ndarray:
        """Post-admission processing times of the gated service.

        Excludes the service's own admission-queue wait: this is the
        part of latency that *growing* the pool cannot reduce, so the
        adapter uses it to decide whether saturation-driven exploration
        can possibly help.
        """
        return self.service.metrics.processing_times(since, until)


class ThreadPoolTarget(SoftResourceTarget):
    """A service's per-replica server thread pool (e.g. Cart)."""

    def __init__(self, service: Microservice) -> None:
        if service.thread_pool_size is None:
            raise ValueError(
                f"service {service.name!r} has no server thread pool")
        self.service = service

    @property
    def name(self) -> str:
        return f"{self.service.name}.threads"

    def concurrency(self) -> float:
        replicas = max(1, self.service.replica_count)
        return self.service.server_concurrency() / replicas

    def concurrency_integral(self) -> float:
        replicas = max(1, self.service.replica_count)
        return self.service.server_concurrency_integral() / replicas

    def allocation(self) -> int:
        size = self.service.thread_pool_size
        assert size is not None
        return size

    def total_allocation(self) -> int:
        total = self.service.server_pool_capacity()
        assert total is not None
        return total

    def apply(self, per_replica_size: int) -> None:
        if per_replica_size < 1:
            raise ValueError(
                f"pool size must be >= 1, got {per_replica_size}")
        self.service.set_thread_pool_size(per_replica_size)


class ClientPoolTarget(SoftResourceTarget):
    """A client pool on an upstream service gating calls to a
    downstream service (e.g. Catalogue -> catalogue-db connections, or
    Home-Timeline -> Post Storage request connections).

    The *downstream* service is the one whose processing the pool
    gates; its replica count scales the physical pool size.
    """

    def __init__(self, owner: Microservice, pool_name: str,
                 downstream: Microservice) -> None:
        if pool_name not in owner.client_pools:
            raise ValueError(
                f"service {owner.name!r} has no client pool "
                f"{pool_name!r}")
        self.owner = owner
        self.pool_name = pool_name
        self.service = downstream

    @property
    def name(self) -> str:
        return f"{self.owner.name}.{self.pool_name}->{self.service.name}"

    @property
    def pool(self):
        """The underlying shared pool object."""
        return self.owner.client_pools[self.pool_name]

    def concurrency(self) -> float:
        replicas = max(1, self.service.replica_count)
        return self.pool.in_use / replicas

    def concurrency_integral(self) -> float:
        replicas = max(1, self.service.replica_count)
        return self.pool.in_use_integral() / replicas

    def allocation(self) -> int:
        replicas = max(1, self.service.replica_count)
        return max(1, round(self.pool.capacity / replicas))

    def total_allocation(self) -> int:
        return self.pool.capacity

    def apply(self, per_replica_size: int) -> None:
        if per_replica_size < 1:
            raise ValueError(
                f"pool size must be >= 1, got {per_replica_size}")
        replicas = max(1, self.service.replica_count)
        self.owner.resize_client_pool(
            self.pool_name, per_replica_size * replicas)
