"""Monitoring Module (paper §4.1).

Collects the two metric families Sora consumes:

- **system-level metrics**: per-service CPU utilization, sampled by a
  cAdvisor-style agent (the signal hardware-only autoscalers act on);
- **performance metrics**: request traces (the application already
  streams them into the :class:`TraceWarehouse`), plus per-service
  completion logs for goodput extraction.

The module also performs the housekeeping a real deployment delegates
to retention policies: pruning the warehouse and completion logs so
memory stays bounded by the analysis window.
"""

from __future__ import annotations

import logging
import typing as _t

from repro.app.application import Application
from repro.metrics.sampler import TimeSeries
from repro.sim.engine import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs import Observability

logger = logging.getLogger(__name__)


class MonitoringModule:
    """Periodic utilization sampling + trace retention for one app.

    Args:
        env: simulation environment.
        app: the monitored application.
        interval: utilization sampling period (seconds).
        retention: how much history to keep (seconds); should exceed the
            longest analysis window used by models and autoscalers.
        obs: optional observability scope; when its timeline is
            enabled, each sampled per-service utilization fraction is
            also streamed into a ``cpu.<service>`` telemetry series.
    """

    def __init__(self, env: Environment, app: Application,
                 interval: float = 1.0, retention: float = 300.0,
                 obs: "Observability | None" = None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if retention <= 0:
            raise ValueError(f"retention must be positive, got {retention}")
        self.env = env
        self.app = app
        self.interval = interval
        self.retention = retention
        self.obs = obs
        #: service -> utilization fraction time series (busy/capacity).
        self.utilization: dict[str, TimeSeries] = {
            name: TimeSeries() for name in app.services}
        #: service -> busy-cores time series (CPU use in core units, the
        #: "Pod CPU Util %" panel of Figs. 10-12 is this * 100).
        self.busy_cores: dict[str, TimeSeries] = {
            name: TimeSeries() for name in app.services}
        self._last_totals: dict[str, tuple[float, float]] = {}
        self._started = False

    def start(self) -> None:
        """Launch the sampling loop (idempotent)."""
        if self._started:
            return
        self._started = True
        logger.debug("monitoring %d services every %.1fs (retention "
                     "%.0fs)", len(self.app.services), self.interval,
                     self.retention)
        for name, service in self.app.services.items():
            self._last_totals[name] = service.cpu_totals()
        self.env.process(self._loop(), name="monitoring")

    def utilization_over(self, service: str, window: float) -> float:
        """Mean utilization fraction over the trailing ``window``."""
        series = self.utilization[service]
        _times, values = series.window(self.env.now - window)
        if values.size == 0:
            return 0.0
        return float(values.mean())

    def busy_cores_over(self, service: str, window: float) -> float:
        """Mean busy cores over the trailing ``window``."""
        series = self.busy_cores[service]
        _times, values = series.window(self.env.now - window)
        if values.size == 0:
            return 0.0
        return float(values.mean())

    def utilizations(self, window: float) -> dict[str, float]:
        """Mean utilization per service over the trailing ``window``."""
        return {name: self.utilization_over(name, window)
                for name in self.utilization}

    def _loop(self):
        timeline = (self.obs.timeline
                    if self.obs is not None and self.obs else None)
        while True:
            yield self.env.timeout(self.interval)
            now = self.env.now
            for name, service in self.app.services.items():
                busy, capacity = service.cpu_totals()
                last_busy, last_capacity = self._last_totals[name]
                self._last_totals[name] = (busy, capacity)
                delta_busy = busy - last_busy
                delta_capacity = capacity - last_capacity
                fraction = (delta_busy / delta_capacity
                            if delta_capacity > 0 else 0.0)
                self.utilization[name].append(now, fraction)
                self.busy_cores[name].append(
                    now, delta_busy / self.interval)
                if timeline:
                    timeline.record(f"cpu.{name}", now, fraction)
            horizon = now - self.retention
            if horizon > 0:
                self.app.warehouse.prune(horizon)
                for name, service in self.app.services.items():
                    service.metrics.prune(horizon)
                    self.utilization[name].prune(horizon)
                    self.busy_cores[name].prune(horizon)
