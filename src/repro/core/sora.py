"""The Sora framework (paper §4) and the shared adaptation machinery.

Sora wires four pieces into a closed loop:

- **Monitoring Module** — utilization sampling + trace retention
  (:class:`~repro.core.monitoring.MonitoringModule`);
- **Concurrency Estimator** — per-target SCG estimation over a trailing
  window (:class:`~repro.core.estimator.ConcurrencyEstimator`);
- **Reallocation Module** — a hardware-only autoscaler (HPA/VPA/FIRM)
  plus the *Concurrency Adapter* that re-applies optimal soft-resource
  allocations, immediately after hardware scale events and periodically
  as conditions drift;
- **SCG model phases 1–2** — critical service localization and deadline
  propagation feed the estimator its target and threshold.

The latency-agnostic baseline ConScale (§5.2) shares everything except
the model: it uses SCT (throughput knee) and no deadline propagation.
Both are thin configurations of :class:`ConcurrencyAdaptationFramework`.
"""

from __future__ import annotations

import logging
import math
import time
import typing as _t
from dataclasses import dataclass

import numpy as np

import repro.obs as obs_mod
from repro.analysis.changepoint import PageHinkley
from repro.app.application import Application
from repro.autoscalers.base import Autoscaler, ScaleEvent
from repro.core.deadline import DeadlinePropagator
from repro.core.estimator import ConcurrencyEstimator, EstimatorConfig
from repro.core.localization import (
    CriticalServiceLocator,
    LocalizationReport,
)
from repro.core.monitoring import MonitoringModule
from repro.core.scg import ConcurrencyEstimate, ScatterModelConfig, \
    SCGModel, SCTModel
from repro.core.targets import ClientPoolTarget, SoftResourceTarget
from repro.obs.events import (
    ControlRoundRecord,
    DriftRecord,
    TargetDecision,
)
from repro.sim.engine import Environment

logger = logging.getLogger(__name__)

Trigger = _t.Literal["periodic", "scale-event", "bootstrap"]


@dataclass(frozen=True)
class AdaptationAction:
    """One applied soft-resource reallocation."""

    time: float
    target: str
    before: int
    after: int
    method: str
    trigger: Trigger
    threshold: float | None = None


@dataclass
class FrameworkConfig:
    """Control-loop knobs shared by Sora and ConScale.

    Attributes:
        control_period: how often the adapter re-evaluates targets.
        localization_window: trace window for critical-service
            localization and deadline propagation.
        growth_factor: multiplicative exploration step used when the
            curve is still rising at the observed edge ("we gradually
            increase the allocation to find a new optimal value", §3.2).
        min_allocation / max_allocation: hard per-replica bounds on any
            recommendation.
        pressure_fraction: a *shrink* is applied only when the observed
            concurrency actually pressed the current allocation
            (``max_Q >= pressure_fraction * allocation``) — an idle pool
            yields degenerate knees that say nothing about capacity.
        max_shrink_factor: one adaptation step never shrinks below this
            fraction of the current allocation. Right after a regime
            change the window mixes old- and new-regime samples, so a
            single knee can wildly undershoot; stepping down bounds the
            overshoot while converging within a couple of periods.
        adapt_only_critical: adapt only targets on the critical service
            (the paper's behaviour); with a single registered target the
            distinction rarely matters because of the fallback: when no
            target matches the critical service, all targets adapt.
        use_deadline_propagation: when False, the goodput threshold
            stays pinned at the full end-to-end SLA instead of the
            propagated per-service deadline (ablation knob; §3.2 argues
            propagation is what keeps the threshold honest on deep
            critical paths).
        detect_drift: run a Page-Hinkley change detector on each
            target's per-period mean processing time; on detection the
            estimator's window is flushed so the model re-learns the
            new regime instead of averaging across regimes (extension
            beyond the paper; see DESIGN.md).
        localize_from_aggregates: nominate the critical service from
            the warehouse's streaming
            :class:`~repro.tracing.analytics.CriticalPathAggregator`
            (fed every finished trace *before* sampling) instead of
            the stored trace window. Makes localization invariant to
            trace sampling/eviction; requires an aggregator attached
            to the application's warehouse, otherwise the windowed
            path is used as before.
    """

    control_period: float = 15.0
    localization_window: float = 30.0
    growth_factor: float = 1.5
    min_allocation: int = 2
    max_allocation: int = 512
    pressure_fraction: float = 0.6
    max_shrink_factor: float = 0.25
    adapt_only_critical: bool = True
    use_deadline_propagation: bool = True
    detect_drift: bool = False
    localize_from_aggregates: bool = False

    def __post_init__(self) -> None:
        if self.control_period <= 0 or self.localization_window <= 0:
            raise ValueError("periods must be positive")
        if self.growth_factor <= 1.0:
            raise ValueError(
                f"growth_factor must exceed 1, got {self.growth_factor}")
        if not 1 <= self.min_allocation <= self.max_allocation:
            raise ValueError(
                f"need 1 <= min_allocation <= max_allocation, got "
                f"[{self.min_allocation}, {self.max_allocation}]")
        if not 0.0 <= self.pressure_fraction <= 1.0:
            raise ValueError(
                f"pressure_fraction must be in [0, 1], got "
                f"{self.pressure_fraction}")
        if not 0.0 < self.max_shrink_factor <= 1.0:
            raise ValueError(
                f"max_shrink_factor must be in (0, 1], got "
                f"{self.max_shrink_factor}")


class ConcurrencyAdaptationFramework:
    """Monitoring + estimation + reallocation for a set of targets."""

    #: Model label ("scg" for Sora, "sct" for ConScale).
    model_name: str = "scg"

    def __init__(self, env: Environment, app: Application,
                 monitoring: MonitoringModule,
                 targets: _t.Sequence[SoftResourceTarget], *,
                 sla: float | None,
                 autoscaler: Autoscaler | None = None,
                 locator: CriticalServiceLocator | None = None,
                 estimator_config: EstimatorConfig | None = None,
                 model_config: ScatterModelConfig | None = None,
                 config: FrameworkConfig | None = None,
                 obs: "obs_mod.Observability | None" = None) -> None:
        if not targets:
            raise ValueError("need at least one adaptation target")
        self.env = env
        self.app = app
        self.monitoring = monitoring
        self.targets = list(targets)
        self.sla = sla
        self.autoscaler = autoscaler
        self.obs = obs if obs is not None else obs_mod.NULL
        if autoscaler is not None and self.obs and \
                autoscaler.obs is obs_mod.NULL:
            # Share one observability scope across the whole loop so
            # scale events land in the same decision log.
            autoscaler.obs = self.obs
        self.config = config or FrameworkConfig()
        self.locator = locator or CriticalServiceLocator(
            exclude=("front-end",))
        self.propagator = (DeadlinePropagator(sla)
                           if sla is not None else None)
        self.actions: list[AdaptationAction] = []
        self.reports: list[LocalizationReport] = []
        self._thresholds: dict[str, float] = {
            target.name: (sla if sla is not None else float("inf"))
            for target in self.targets}
        self._desired: dict[str, int] = {
            target.name: target.allocation() for target in self.targets}
        # One observation arrives per control period, so the detectors
        # use a short warmup and a conservative threshold.
        self._drift_detectors: dict[str, PageHinkley] = {
            target.name: PageHinkley(delta=0.15, threshold=3.0,
                                     min_observations=4)
            for target in self.targets}
        #: ``(time, target)`` records of detected regime shifts.
        self.drift_detections: list[tuple[float, str]] = []

        self.estimators: dict[str, ConcurrencyEstimator] = {}
        for target in self.targets:
            model = self._build_model(model_config)
            provider = self._threshold_provider(target.name) \
                if sla is not None else None
            self.estimators[target.name] = ConcurrencyEstimator(
                env, target, model, provider, config=estimator_config,
                obs=self.obs)
        if autoscaler is not None:
            autoscaler.on_scale(self._on_scale)
        self._started = False

    # ------------------------------------------------------------------
    # Model wiring (overridden by the two concrete frameworks)
    # ------------------------------------------------------------------
    def _build_model(self, model_config: ScatterModelConfig | None):
        return SCGModel(model_config)

    def _threshold_provider(self, target_name: str
                            ) -> _t.Callable[[], float]:
        def provider() -> float:
            return self._thresholds[target_name]
        return provider

    def threshold_for(self, target: SoftResourceTarget) -> float:
        """The current propagated threshold for ``target``."""
        return self._thresholds[target.name]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start monitoring, estimators, autoscaler, and the adapter
        loop (idempotent)."""
        if self._started:
            return
        self._started = True
        self.monitoring.start()
        for estimator in self.estimators.values():
            estimator.start()
        if self.autoscaler is not None:
            self.autoscaler.start()
        self.env.process(self._loop(), name=f"{self.model_name}-adapter")

    def _loop(self):
        while True:
            yield self.env.timeout(self.config.control_period)
            self.control()

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def control(self) -> None:
        """One adapter iteration: localize, propagate, estimate, apply."""
        obs = self.obs
        wall_started = time.perf_counter() if obs else 0.0
        now = self.env.now
        since = now - self.config.localization_window
        traces = self.app.warehouse.traces(since, now)
        analytics = (self.app.warehouse.analytics
                     if self.config.localize_from_aggregates else None)
        with obs.phase("localize"):
            utilizations = self.monitoring.utilizations(
                self.config.localization_window)
            if analytics is not None:
                report = self.locator.locate_from_aggregate(
                    analytics, utilizations)
            else:
                report = self.locator.locate(traces, utilizations)
        self.reports.append(report)

        if self.propagator is not None and \
                self.config.use_deadline_propagation:
            with obs.phase("propagate"):
                for target in self.targets:
                    deadline = self.propagator.propagate(
                        traces, target.service.name)
                    self._thresholds[target.name] = deadline.threshold

        if self.config.detect_drift:
            self._check_drift()

        critical = report.critical_service
        matched = [t for t in self.targets
                   if t.service.name == critical]
        if not self.config.adapt_only_critical or critical is None \
                or not matched:
            matched = self.targets
        with obs.phase("adapt"):
            decisions = tuple(self._adapt(target, trigger="periodic")
                              for target in matched)
        if obs:
            obs.record(ControlRoundRecord(
                time=now, controller=self.model_name,
                trigger="periodic",
                critical_service=critical,
                dominant_path=report.dominant_path,
                correlations=dict(report.correlations),
                candidates=report.candidates,
                thresholds={t.name: self._thresholds[t.name]
                            for t in self.targets
                            if self._thresholds[t.name] != float("inf")},
                decisions=decisions,
                traces=len(traces),
                wall_ms=(time.perf_counter() - wall_started) * 1e3))
            obs.registry.counter("controller.rounds").inc()

    def _decision(self, target: SoftResourceTarget, trigger: Trigger,
                  outcome: str, reason: str, before: int, after: int,
                  estimate: ConcurrencyEstimate | None = None,
                  growth_can_help: bool | None = None
                  ) -> TargetDecision:
        """Assemble the typed audit record for one verdict."""
        threshold = self._thresholds.get(target.name)
        if threshold == float("inf"):
            threshold = None
        knee_q = knee_rate = degree = samples = max_q = method = None
        fit_r2 = prominence = None
        curve = None
        if estimate is not None:
            method = estimate.method
            degree = estimate.fit.degree
            samples = estimate.samples
            max_q = estimate.max_concurrency
            if estimate.fit_r2 == estimate.fit_r2:
                fit_r2 = round(float(estimate.fit_r2), 4)
            if estimate.knee.found:
                knee_q = float(estimate.knee.knee_x)
                knee_rate = float(estimate.knee.knee_y)
                if estimate.knee.prominence == estimate.knee.prominence:
                    prominence = round(float(estimate.knee.prominence), 4)
            points = self.obs.curve_points
            if outcome == "applied" and points > 0:
                stride = max(1, len(estimate.fit.x) // points)
                curve = tuple(
                    (round(float(q), 3), round(float(r), 3))
                    for q, r in zip(estimate.fit.x[::stride],
                                    estimate.fit.y[::stride]))
        return TargetDecision(
            target=target.name, trigger=trigger,
            outcome=_t.cast(_t.Any, outcome), reason=reason,
            before=before, after=after, threshold=threshold,
            method=method, knee_concurrency=knee_q,
            knee_rate=knee_rate, poly_degree=degree, samples=samples,
            max_concurrency=max_q, growth_can_help=growth_can_help,
            fit_r2=fit_r2, knee_prominence=prominence, curve=curve)

    def _adapt(self, target: SoftResourceTarget,
               trigger: Trigger) -> TargetDecision:
        """One target's evaluation; returns the audit-trail decision."""
        estimator = self.estimators[target.name]
        current = self._desired[target.name]

        # A pool that spends most of the window pinned at its allocation
        # censors the concurrency range, so any knee found inside it is
        # unreliable. Steer by where the latency lives instead: healthy
        # post-admission processing means the gate itself is the
        # bottleneck — explore upward ("gradually increase the
        # allocation to find a new optimal value", §3.2); processing
        # past the threshold means over-admission is melting the
        # service — step the allocation down.
        if self._saturated(estimator, current):
            can_grow = self._growth_can_help(target, estimator)
            if can_grow:
                new = min(self.config.max_allocation,
                          max(current + 1, math.ceil(
                              current * self.config.growth_factor)))
                if new != current:
                    self._apply(target, new, "saturation", trigger)
                    return self._decision(
                        target, trigger, "applied", "saturation-grow",
                        current, new, growth_can_help=True)
                return self._decision(
                    target, trigger, "hold", "saturation-capped",
                    current, current, growth_can_help=True)
            new = max(self.config.min_allocation, math.ceil(
                current * self.config.max_shrink_factor))
            if new != current:
                self._apply(target, new, "overload-shed", trigger)
                return self._decision(
                    target, trigger, "applied", "overload-shed",
                    current, new, growth_can_help=False)
            return self._decision(
                target, trigger, "hold", "overload-floor",
                current, current, growth_can_help=False)

        estimate = estimator.estimate_now()
        if estimate is None:
            return self._decision(target, trigger, "hold",
                                  "no-estimate", current, current)
        recommendation = estimate.optimal_concurrency
        max_q = estimate.max_concurrency
        at_edge = max_q > 0 and recommendation >= 0.9 * max_q
        reason = estimate.method
        if at_edge:
            # The curve's interesting point sits at the edge of the
            # observed concurrency range: censored data. If the pool
            # itself was the ceiling — and removing it could actually
            # cut latency — the true optimum lies beyond it: gradually
            # explore upward (§3.2). If demand never filled the pool,
            # the window proves nothing — hold.
            if max_q < 0.9 * current:
                return self._decision(target, trigger, "hold",
                                      "edge-unpressed-hold", current,
                                      current, estimate=estimate)
            if self._growth_can_help(target, estimator):
                new = max(current + 1,
                          math.ceil(current * self.config.growth_factor))
                reason = "edge-grow"
            else:
                new = math.ceil(current * self.config.max_shrink_factor)
                reason = "edge-shrink"
        else:
            new = recommendation
        if new < current:
            new = max(new, math.ceil(
                current * self.config.max_shrink_factor))
        new = max(self.config.min_allocation,
                  min(self.config.max_allocation, new))
        if new < current and estimate.max_concurrency < \
                self.config.pressure_fraction * current:
            # The pool never filled in this window: the data cannot
            # justify shrinking it (idle pools look like early knees).
            return self._decision(target, trigger, "hold", "idle-hold",
                                  current, current, estimate=estimate)
        if new == current:
            return self._decision(target, trigger, "hold", "unchanged",
                                  current, current, estimate=estimate)
        self._apply(target, new, estimate.method, trigger)
        return self._decision(target, trigger, "applied", reason,
                              current, new, estimate=estimate)

    def _check_drift(self) -> None:
        """Feed each target's recent mean processing time to its
        change detector; flush the estimator window on detection."""
        since = self.env.now - self.config.control_period
        for target in self.targets:
            processing = target.processing_latencies(since, self.env.now)
            if processing.size == 0:
                continue
            detector = self._drift_detectors[target.name]
            change = detector.update(float(np.mean(processing)))
            if change is not None:
                self.drift_detections.append((self.env.now, target.name))
                self.estimators[target.name].sampler.prune(self.env.now)
                logger.info("t=%.1f drift detected on %s; estimator "
                            "window flushed", self.env.now, target.name)
                if self.obs:
                    self.obs.record(DriftRecord(time=self.env.now,
                                                target=target.name))
                    self.obs.registry.counter(
                        "controller.drift_detections").inc()

    def _saturated(self, estimator, current: int) -> bool:
        """Whether the pool spent most of the recent window pinned at
        its allocation (growth signal when the model has no estimate)."""
        since = self.env.now - estimator.config.window
        concurrency, _rates = estimator.sampler.pairs(since=since)
        busy = concurrency[concurrency > 0]
        if busy.size < estimator.model.config.min_samples // 2:
            return False
        pinned = (busy >= 0.9 * current).mean()
        return bool(pinned >= 0.5)

    def _growth_can_help(self, target: SoftResourceTarget,
                         estimator: ConcurrencyEstimator) -> bool:
        """Whether more tokens could actually reduce latency.

        Growth only removes *admission-queue* waiting. If the gated
        service's post-admission processing time already blows the
        threshold (a melted downstream, a saturated CPU), admitting more
        concurrency makes things worse — hold instead.
        """
        threshold = self._thresholds[target.name]
        if threshold == float("inf"):
            return True  # latency-agnostic mode (SCT) always explores
        since = self.env.now - estimator.config.window
        processing = target.processing_latencies(since, self.env.now)
        if processing.size == 0:
            return False
        return bool(np.percentile(processing, 90) <= threshold)

    def _apply(self, target: SoftResourceTarget, per_replica: int,
               method: str, trigger: Trigger) -> None:
        before = self._desired[target.name]
        target.apply(per_replica)
        self._desired[target.name] = per_replica
        self.actions.append(AdaptationAction(
            time=self.env.now, target=target.name, before=before,
            after=per_replica, method=method, trigger=trigger,
            threshold=self._thresholds.get(target.name)))
        logger.info("t=%.1f %s: %s %d -> %d (%s, %s)", self.env.now,
                    self.model_name, target.name, before, per_replica,
                    method, trigger)
        if self.obs:
            self.obs.registry.counter("controller.adaptations").inc()
            self.obs.registry.histogram(
                "controller.allocation").observe(per_replica)
            # Step series: one point per change (the telemetry pump
            # fills in the regular samples between changes).
            self.obs.timeline.record(f"pool.{target.name}",
                                     self.env.now, float(per_replica))

    # ------------------------------------------------------------------
    # Hardware-scale coordination
    # ------------------------------------------------------------------
    def _on_scale(self, event: ScaleEvent) -> None:
        decisions: list[TargetDecision] = []
        for target in self.targets:
            if not self._affected(target, event):
                continue
            estimator = self.estimators[target.name]
            before = self._desired[target.name]
            if event.kind == "vertical" and event.before > 0:
                # Bootstrap proportionally to the capacity change, then
                # let the estimator refine on fresh samples.
                ratio = event.after / event.before
                bootstrap = max(1, math.ceil(
                    self._desired[target.name] * ratio))
                bootstrap = min(self.config.max_allocation, bootstrap)
                if bootstrap != self._desired[target.name]:
                    self._apply(target, bootstrap, "proportional",
                                "bootstrap")
                    decisions.append(self._decision(
                        target, "bootstrap", "applied", "proportional",
                        before, bootstrap))
            elif event.kind == "horizontal":
                # Re-assert the per-replica allocation so shared client
                # pools track the new replica count (Fig. 12).
                self._apply(target, self._desired[target.name],
                            "replica-track", "scale-event")
                decisions.append(self._decision(
                    target, "scale-event", "applied", "replica-track",
                    before, self._desired[target.name]))
            # Samples gathered under the old hardware no longer
            # describe the capacity curve.
            estimator.sampler.prune(self.env.now)
        if self.obs and decisions:
            self.obs.record(ControlRoundRecord(
                time=self.env.now, controller=self.model_name,
                trigger="scale-event", decisions=tuple(decisions)))

    @staticmethod
    def _affected(target: SoftResourceTarget, event: ScaleEvent) -> bool:
        if target.service.name == event.service:
            return True
        if isinstance(target, ClientPoolTarget) and \
                target.owner.name == event.service:
            return True
        return False


class SoraController(ConcurrencyAdaptationFramework):
    """Sora: latency-sensitive adaptation via the SCG model with
    critical-service localization and deadline propagation (§4).

    ``sla`` is required — it anchors goodput measurement.
    """

    model_name = "scg"

    def __init__(self, env: Environment, app: Application,
                 monitoring: MonitoringModule,
                 targets: _t.Sequence[SoftResourceTarget], *,
                 sla: float, **kwargs) -> None:
        if sla is None or sla <= 0:
            raise ValueError(f"Sora requires a positive SLA, got {sla}")
        super().__init__(env, app, monitoring, targets, sla=sla, **kwargs)


class ConScaleController(ConcurrencyAdaptationFramework):
    """ConScale (IPDPS'20): throughput-centric adaptation via the SCT
    model; latency-agnostic by construction (§3.1, §5.2)."""

    model_name = "sct"

    def __init__(self, env: Environment, app: Application,
                 monitoring: MonitoringModule,
                 targets: _t.Sequence[SoftResourceTarget],
                 **kwargs) -> None:
        kwargs.pop("sla", None)
        super().__init__(env, app, monitoring, targets, sla=None, **kwargs)

    def _build_model(self, model_config: ScatterModelConfig | None):
        return SCTModel(model_config)
