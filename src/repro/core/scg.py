"""The Scatter-Concurrency-Goodput (SCG) model (paper §3) and its
throughput-based counterpart SCT (ConScale's model, §3.1).

Both models consume ``<concurrency, rate>`` sample pairs collected at a
fine granularity over a short window and estimate the optimal
concurrency as the knee of the main sequence curve:

- **SCG** pairs concurrency with *goodput* under a (propagated)
  response-time threshold — latency sensitive;
- **SCT** pairs concurrency with *throughput* — latency agnostic.

Estimation pipeline (phases 3–4 of Fig. 6): aggregate the scatter (mean
rate per distinct concurrency), fit a smoothing polynomial whose degree
is tuned incrementally (§3.3), and run Kneedle on the smooth curve.
"""

from __future__ import annotations

import logging
import typing as _t
from dataclasses import dataclass

import numpy as np

from repro.analysis.kneedle import KneeResult, find_knee
from repro.analysis.smoothing import (
    PolynomialFit,
    aggregate_scatter,
    fit_polynomial,
)

logger = logging.getLogger(__name__)

EstimateMethod = _t.Literal["knee", "argmax"]


@dataclass(frozen=True)
class ScatterModelConfig:
    """Tuning knobs shared by SCG and SCT.

    Attributes:
        min_degree / max_degree: polynomial degree search range (the
            paper finds 5–8 adequate; too low misses the knee, too high
            overfits noise).
        sensitivity: Kneedle ``S`` parameter.
        min_samples: minimum number of raw pairs to attempt estimation.
        min_distinct: minimum number of distinct concurrency levels.
        quantum: interval-mean concurrency values are rounded to this
            grid before per-level averaging, so scatter aggregation has
            levels to aggregate over.
        knee_quality: a knee is accepted only if the smoothed rate at
            the knee reaches this fraction of the curve's maximum — a
            "knee" the curve keeps climbing past is a fitting artifact,
            not a capacity knee.
        allow_argmax_fallback: when no knee is confirmed, fall back to
            the concurrency with the maximum smoothed rate.
    """

    min_degree: int = 4
    max_degree: int = 8
    sensitivity: float = 1.0
    min_samples: int = 40
    min_distinct: int = 6
    quantum: float = 0.5
    knee_quality: float = 0.85
    allow_argmax_fallback: bool = True

    def __post_init__(self) -> None:
        if self.min_degree < 1 or self.max_degree < self.min_degree:
            raise ValueError(
                f"invalid degree range [{self.min_degree}, "
                f"{self.max_degree}]")
        if self.min_samples < 1 or self.min_distinct < 3:
            raise ValueError("min_samples >= 1 and min_distinct >= 3 "
                             "required")
        if self.quantum <= 0:
            raise ValueError(f"quantum must be positive, got {self.quantum}")
        if not 0.0 <= self.knee_quality <= 1.0:
            raise ValueError(
                f"knee_quality must be in [0, 1], got {self.knee_quality}")


@dataclass(frozen=True)
class ConcurrencyEstimate:
    """A recommended optimal concurrency setting.

    Attributes:
        optimal_concurrency: the recommendation (>= 1).
        method: how it was obtained ("knee" or "argmax" fallback).
        knee: the Kneedle result (may be not-found for argmax).
        fit: the accepted polynomial fit.
        samples: number of raw pairs used.
        threshold: RT threshold active during collection (None for SCT).
        max_concurrency: highest concurrency observed in the window —
            recommendations are only evidenced up to this level.
        fit_r2: coefficient of determination of the accepted fit over
            the aggregated scatter (1.0 = the polynomial explains all
            per-level variation; low values flag noisy windows whose
            knees deserve less trust).
    """

    optimal_concurrency: int
    method: EstimateMethod
    knee: KneeResult
    fit: PolynomialFit
    samples: int
    threshold: float | None = None
    max_concurrency: float = 0.0
    fit_r2: float = float("nan")


class ScatterCurveModel:
    """Shared estimation machinery over ``<Q, rate>`` pairs."""

    #: Human-readable model name (subclasses override).
    name = "scatter-curve"

    def __init__(self, config: ScatterModelConfig | None = None) -> None:
        self.config = config or ScatterModelConfig()

    def estimate(self, concurrency: np.ndarray, rate: np.ndarray,
                 threshold: float | None = None
                 ) -> ConcurrencyEstimate | None:
        """Estimate the optimal concurrency from sample pairs.

        Returns ``None`` when the window does not hold enough signal
        (too few samples or distinct concurrency levels, or no usable
        curve) — callers keep the previous allocation in that case.
        """
        concurrency = np.asarray(concurrency, dtype=float)
        rate = np.asarray(rate, dtype=float)
        if concurrency.shape != rate.shape:
            raise ValueError(
                f"shape mismatch: {concurrency.shape} vs {rate.shape}")
        config = self.config
        if concurrency.size < config.min_samples:
            return None
        # Idle samples (zero concurrency) carry no information about the
        # service's capacity curve.
        busy = concurrency > 0
        quantized = np.round(concurrency[busy] / config.quantum) * \
            config.quantum
        q_values, gp_values = aggregate_scatter(quantized, rate[busy])
        distinct = int(np.unique(q_values).size)
        if distinct < config.min_distinct:
            return None
        # A degree close to the number of aggregated levels interpolates
        # the noise instead of smoothing it (wild oscillation between
        # levels); keep at least one excess degree of freedom.
        max_degree = min(config.max_degree, distinct - 2)
        if max_degree < config.min_degree:
            return None

        gp_variance = float(np.var(gp_values))

        def r_squared(fit: PolynomialFit) -> float:
            if gp_variance == 0.0:
                return 1.0 if fit.rmse == 0.0 else 0.0
            return 1.0 - (fit.rmse ** 2) / gp_variance

        fallback_fit: PolynomialFit | None = None
        for degree in range(config.min_degree, max_degree + 1):
            try:
                fit = fit_polynomial(q_values, gp_values, degree)
            except ValueError:  # pragma: no cover - guarded by max_degree
                break
            fallback_fit = fit
            knee = find_knee(fit.x, fit.y,
                             sensitivity=config.sensitivity)
            if knee.found and knee.knee_x > 0 and \
                    knee.knee_y >= config.knee_quality * float(fit.y.max()):
                logger.debug(
                    "%s: knee at Q=%.2f (rate=%.2f) with degree-%d fit "
                    "over %d levels", self.name, knee.knee_x, knee.knee_y,
                    degree, distinct)
                return ConcurrencyEstimate(
                    optimal_concurrency=max(1, int(round(knee.knee_x))),
                    method="knee", knee=knee, fit=fit,
                    samples=int(concurrency.size), threshold=threshold,
                    max_concurrency=float(q_values.max()),
                    fit_r2=r_squared(fit))
        if config.allow_argmax_fallback and fallback_fit is not None:
            best = int(np.argmax(fallback_fit.y))
            optimal = max(1, int(round(float(fallback_fit.x[best]))))
            logger.debug(
                "%s: no confirmed knee across degrees %d-%d; argmax "
                "fallback Q=%d", self.name, config.min_degree, max_degree,
                optimal)
            return ConcurrencyEstimate(
                optimal_concurrency=optimal, method="argmax",
                knee=find_knee(fallback_fit.x, fallback_fit.y,
                               sensitivity=self.config.sensitivity),
                fit=fallback_fit, samples=int(concurrency.size),
                threshold=threshold,
                max_concurrency=float(q_values.max()),
                fit_r2=r_squared(fallback_fit))
        return None


class SCGModel(ScatterCurveModel):
    """Scatter-Concurrency-**Goodput** model — Sora's estimator.

    Pair concurrency samples with goodput measured under the propagated
    response-time threshold, then hand the pairs to :meth:`estimate`.
    """

    name = "scg"


class SCTModel(ScatterCurveModel):
    """Scatter-Concurrency-**Throughput** model — ConScale's estimator.

    Identical machinery; callers feed throughput pairs (no threshold),
    making the model latency agnostic by construction.
    """

    name = "sct"

    def estimate(self, concurrency: np.ndarray, rate: np.ndarray,
                 threshold: float | None = None
                 ) -> ConcurrencyEstimate | None:
        if threshold is not None:
            raise ValueError(
                "SCT is latency-agnostic; do not pass a threshold")
        return super().estimate(concurrency, rate, threshold=None)
