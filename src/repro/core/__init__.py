"""The paper's primary contribution: the SCG model and Sora framework."""

from repro.core.deadline import DeadlinePropagator, PropagatedDeadline
from repro.core.estimator import (
    ConcurrencyEstimator,
    EstimateRecord,
    EstimatorConfig,
)
from repro.core.localization import (
    CriticalServiceLocator,
    LocalizationReport,
)
from repro.core.monitoring import MonitoringModule
from repro.core.scg import (
    ConcurrencyEstimate,
    ScatterCurveModel,
    ScatterModelConfig,
    SCGModel,
    SCTModel,
)
from repro.core.sora import (
    AdaptationAction,
    ConcurrencyAdaptationFramework,
    ConScaleController,
    FrameworkConfig,
    SoraController,
)
from repro.core.search import HillClimbConfig, HillClimbController
from repro.core.unified import UnifiedConfig, UnifiedSoraController
from repro.core.targets import (
    ClientPoolTarget,
    SoftResourceTarget,
    ThreadPoolTarget,
)

__all__ = [
    "AdaptationAction",
    "ClientPoolTarget",
    "ConcurrencyAdaptationFramework",
    "ConcurrencyEstimate",
    "ConcurrencyEstimator",
    "ConScaleController",
    "CriticalServiceLocator",
    "DeadlinePropagator",
    "EstimateRecord",
    "EstimatorConfig",
    "FrameworkConfig",
    "HillClimbConfig",
    "HillClimbController",
    "LocalizationReport",
    "MonitoringModule",
    "PropagatedDeadline",
    "SCGModel",
    "SCTModel",
    "ScatterCurveModel",
    "ScatterModelConfig",
    "SoftResourceTarget",
    "SoraController",
    "ThreadPoolTarget",
    "UnifiedConfig",
    "UnifiedSoraController",
]
