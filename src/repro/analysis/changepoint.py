"""Online change-point detection for regime shifts.

The SCG model's window mixes samples across workload or system-state
changes (hardware rescaling is handled by event hooks, but *external*
drift — a request-type change, a dataset growth — arrives unannounced).
A change-point detector lets the controller notice that the service's
operating regime moved and discard stale samples instead of averaging
across regimes (the overshoot source analyzed in DESIGN.md).

:class:`PageHinkley` implements the classic Page-Hinkley test on a
stream of observations (we feed it per-interval mean processing times):
it tracks the cumulative deviation of observations from their running
mean and signals when the deviation exceeds a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChangePoint:
    """A detected regime shift."""

    at_observation: int
    direction: str  # "up" or "down"
    magnitude: float


class PageHinkley:
    """Two-sided Page-Hinkley change detector.

    Args:
        delta: slack — deviations below this magnitude are ignored
            (robustness to noise), as a fraction of the running mean.
        threshold: cumulative deviation (in running-mean units) that
            triggers a detection.
        min_observations: number of samples needed to establish the
            baseline before detection can fire.
    """

    def __init__(self, delta: float = 0.1, threshold: float = 2.0,
                 min_observations: int = 20) -> None:
        if delta < 0:
            raise ValueError(f"negative delta {delta}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if min_observations < 2:
            raise ValueError("min_observations must be >= 2")
        self.delta = delta
        self.threshold = threshold
        self.min_observations = min_observations
        self.reset()

    def reset(self) -> None:
        """Restart the baseline (call after acting on a detection)."""
        self._count = 0
        self._mean = 0.0
        self._cum_up = 0.0
        self._cum_down = 0.0
        self._min_up = 0.0
        self._max_down = 0.0

    @property
    def observations(self) -> int:
        """Samples seen since the last reset."""
        return self._count

    @property
    def mean(self) -> float:
        """Running mean of the stream."""
        return self._mean

    def update(self, value: float) -> ChangePoint | None:
        """Feed one observation; returns a detection or ``None``.

        On detection the detector resets itself, so the caller can keep
        streaming without bookkeeping.
        """
        self._count += 1
        self._mean += (value - self._mean) / self._count
        if self._count < self.min_observations or self._mean == 0.0:
            return None
        slack = self.delta * abs(self._mean)
        deviation = value - self._mean
        # Upward shift accumulator (values rising above the mean).
        self._cum_up += deviation - slack
        self._min_up = min(self._min_up, self._cum_up)
        # Downward shift accumulator.
        self._cum_down += deviation + slack
        self._max_down = max(self._max_down, self._cum_down)

        scale = abs(self._mean)
        if self._cum_up - self._min_up > self.threshold * scale:
            change = ChangePoint(at_observation=self._count,
                                 direction="up",
                                 magnitude=(self._cum_up - self._min_up)
                                 / scale)
            self.reset()
            return change
        if self._max_down - self._cum_down > self.threshold * scale:
            change = ChangePoint(at_observation=self._count,
                                 direction="down",
                                 magnitude=(self._max_down -
                                            self._cum_down) / scale)
            self.reset()
            return change
        return None
