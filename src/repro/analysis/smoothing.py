"""Scatter-graph smoothing for knee detection (paper §3.3).

The SCG model fits a smoothing polynomial to the noisy
concurrency-goodput scatter before running Kneedle. The paper tunes the
polynomial degree *incrementally*: too low a degree cannot expose a
valid knee, too high a degree overfits measurement noise; degrees 5–8
typically fit a 1-minute profile. :func:`incremental_degree_fit`
implements that strategy: starting from ``min_degree``, raise the degree
until the fit stops improving materially (or the cap is reached).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PolynomialFit:
    """A fitted polynomial evaluated over a dense grid."""

    degree: int
    coefficients: np.ndarray
    x: np.ndarray
    y: np.ndarray
    rmse: float

    def __call__(self, x: _t.Sequence[float] | np.ndarray) -> np.ndarray:
        """Evaluate the fitted polynomial."""
        return np.polyval(self.coefficients, np.asarray(x, dtype=float))


def aggregate_scatter(x: np.ndarray, y: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Average ``y`` per distinct ``x`` ("for a specific concurrency Q_n
    we calculate the average goodput GP_n", §3.2), sorted by ``x``."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size == 0:
        return x, y
    order = np.argsort(x, kind="stable")
    x_sorted, y_sorted = x[order], y[order]
    unique_x, starts = np.unique(x_sorted, return_index=True)
    sums = np.add.reduceat(y_sorted, starts)
    counts = np.diff(np.append(starts, x_sorted.size))
    return unique_x, sums / counts


def fit_polynomial(x: np.ndarray, y: np.ndarray, degree: int,
                   grid_points: int = 200) -> PolynomialFit:
    """Least-squares polynomial fit evaluated on a dense grid.

    Raises ``ValueError`` if there are not enough distinct points to
    support ``degree``.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    if np.unique(x).size <= degree:
        raise ValueError(
            f"need more than {degree} distinct x values, have "
            f"{np.unique(x).size}")
    coefficients = np.polyfit(x, y, degree)
    fitted = np.polyval(coefficients, x)
    rmse = float(np.sqrt(np.mean((fitted - y) ** 2)))
    grid = np.linspace(float(x.min()), float(x.max()), grid_points)
    return PolynomialFit(degree=degree, coefficients=coefficients,
                         x=grid, y=np.polyval(coefficients, grid),
                         rmse=rmse)


def incremental_degree_fit(x: np.ndarray, y: np.ndarray, *,
                           min_degree: int = 3, max_degree: int = 8,
                           improvement_tolerance: float = 0.02,
                           grid_points: int = 200) -> PolynomialFit:
    """Fit with the minimum polynomial degree that matches the data.

    Degrees are tried from ``min_degree`` upward; the search stops at the
    first degree whose RMSE improvement over the previous one falls below
    ``improvement_tolerance`` (relative), mirroring the paper's
    "incremental tuning strategy to quickly identify the minimum
    polynomial degree" (§3.3). Degrees that the data cannot support are
    skipped; if none fits, ``ValueError`` propagates.
    """
    if min_degree > max_degree:
        raise ValueError(f"min_degree {min_degree} > max_degree {max_degree}")
    best: PolynomialFit | None = None
    for degree in range(min_degree, max_degree + 1):
        try:
            fit = fit_polynomial(x, y, degree, grid_points=grid_points)
        except ValueError:
            break  # not enough distinct points for higher degrees
        if best is not None:
            reference = best.rmse if best.rmse > 0 else 1.0
            if (best.rmse - fit.rmse) / reference < improvement_tolerance:
                return best
        best = fit
    if best is None:
        raise ValueError(
            f"cannot fit any degree in [{min_degree}, {max_degree}]: "
            f"only {np.unique(np.asarray(x)).size} distinct x values")
    return best
