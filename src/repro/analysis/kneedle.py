"""Kneedle knee-point detection (Satopaa et al., ICDCSW'11).

The SCG model's Estimation Phase finds the knee of the smoothed
concurrency-goodput curve — the concurrency beyond which extra
parallelism stops paying — and recommends it as the optimal soft
resource allocation (§3.2–3.3).

Algorithm (offline form):

1. normalize ``x``/``y`` to the unit square;
2. transform so the curve is concave increasing;
3. compute the difference curve ``d = y_n − x_n``;
4. local maxima of ``d`` are knee candidates; a candidate is confirmed
   if ``d`` drops below its sensitivity threshold
   ``T = d(max) − S·mean(Δx_n)`` before the next local maximum.

The sensitivity ``S`` trades early detection against false positives
(the paper uses the default ``S = 1``).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

Curve = _t.Literal["concave", "convex"]
Direction = _t.Literal["increasing", "decreasing"]


@dataclass(frozen=True)
class KneeResult:
    """Outcome of knee detection.

    Attributes:
        found: whether any knee was confirmed.
        knee_x / knee_y: coordinates of the selected knee in the
            original units (NaN when not found).
        all_knee_x: every confirmed knee, in x order.
        difference: the normalized difference curve (diagnostics).
        prominence: height of the normalized difference curve at the
            selected knee, in [0, 1] — how far the curve bulges above
            the straight line between its endpoints. Sharp capacity
            knees score high; gentle roll-offs score near 0 (NaN when
            not found). Surfaced as a knee-confidence diagnostic on
            control decisions.
    """

    found: bool
    knee_x: float
    knee_y: float
    all_knee_x: tuple[float, ...]
    difference: np.ndarray
    prominence: float = float("nan")

    def __bool__(self) -> bool:
        return self.found


def _transform(x_n: np.ndarray, y_n: np.ndarray, curve: Curve,
               direction: Direction) -> tuple[np.ndarray, np.ndarray]:
    """Reflect axes so that the curve is concave increasing."""
    if curve == "concave" and direction == "increasing":
        return x_n, y_n
    if curve == "concave" and direction == "decreasing":
        return (1.0 - x_n)[::-1], y_n[::-1]
    if curve == "convex" and direction == "increasing":
        return (1.0 - x_n)[::-1], (1.0 - y_n)[::-1]
    if curve == "convex" and direction == "decreasing":
        return x_n, 1.0 - y_n
    raise ValueError(f"invalid curve/direction: {curve}/{direction}")


def find_knee(x: _t.Sequence[float] | np.ndarray,
              y: _t.Sequence[float] | np.ndarray, *,
              curve: Curve = "concave",
              direction: Direction = "increasing",
              sensitivity: float = 1.0,
              select: _t.Literal["first", "prominent"] = "first"
              ) -> KneeResult:
    """Detect the knee of an ``x``-sorted curve.

    Args:
        x: strictly or weakly increasing abscissa.
        y: curve values (smooth them first; see
            :mod:`repro.analysis.smoothing`).
        curve / direction: curve shape, as in the Kneedle paper.
        sensitivity: the ``S`` parameter; larger is more conservative.
        select: which confirmed knee to report — the ``first`` one (the
            kneed library's default) or the most ``prominent`` one (the
            largest difference value).

    Returns:
        A :class:`KneeResult`; ``found`` is False for degenerate inputs
        (fewer than 3 points, flat curves, no confirmed knee).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if sensitivity < 0:
        raise ValueError(f"sensitivity must be >= 0, got {sensitivity}")
    not_found = KneeResult(found=False, knee_x=float("nan"),
                           knee_y=float("nan"), all_knee_x=(),
                           difference=np.empty(0))
    if x.size < 3:
        return not_found
    if np.any(np.diff(x) < 0):
        raise ValueError("x must be sorted ascending")

    x_span = float(x.max() - x.min())
    y_span = float(y.max() - y.min())
    if x_span == 0.0 or y_span == 0.0:
        return not_found
    x_n = (x - x.min()) / x_span
    y_n = (y - y.min()) / y_span
    x_t, y_t = _transform(x_n, y_n, curve, direction)
    difference = y_t - x_t

    # Local maxima of the difference curve (candidate knees).
    interior = np.arange(1, difference.size - 1)
    is_max = ((difference[interior] > difference[interior - 1]) &
              (difference[interior] >= difference[interior + 1]))
    maxima = interior[is_max]
    if maxima.size == 0:
        return not_found

    mean_spacing = float(np.mean(np.abs(np.diff(x_t))))
    confirmed: list[int] = []
    for position, index in enumerate(maxima):
        threshold = difference[index] - sensitivity * mean_spacing
        limit = maxima[position + 1] if position + 1 < maxima.size \
            else difference.size
        if np.any(difference[index + 1:limit] < threshold):
            confirmed.append(int(index))
    if not confirmed:
        # A terminal local maximum with no room to decay still marks the
        # curve's flattening when it is the global maximum (offline use).
        last = int(maxima[-1])
        if last >= difference.size - 2 and \
                difference[last] == difference.max():
            confirmed = [last]
        else:
            return not_found

    # Map transformed indices back to original-array indices.
    def original_index(transformed_index: int) -> int:
        if curve == "convex" and direction == "decreasing":
            return transformed_index
        if curve == "concave" and direction == "increasing":
            return transformed_index
        return difference.size - 1 - transformed_index

    original = sorted(original_index(i) for i in confirmed)
    if select == "prominent":
        chosen_t = max(confirmed, key=lambda i: difference[i])
        chosen = original_index(chosen_t)
    else:
        chosen = original[0]
        # original_index is a self-inverse reflection (or identity), so
        # it also maps the chosen original index back to its position in
        # the transformed difference curve.
        chosen_t = original_index(chosen)
    return KneeResult(
        found=True,
        knee_x=float(x[chosen]),
        knee_y=float(y[chosen]),
        all_knee_x=tuple(float(x[i]) for i in original),
        difference=difference,
        prominence=float(difference[chosen_t]),
    )
