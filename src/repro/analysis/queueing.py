"""Closed queueing-network analysis (exact Mean Value Analysis).

The simulator's service model — processor-sharing stations visited by a
closed population of think-submit-wait users — is a product-form
network, so its steady state is exactly computable by MVA (Reiser &
Lavenberg). This module provides that solver; the test suite uses it to
validate the simulator against theory, and it is handy for sizing
experiments before running them.

Single-class exact MVA recursion, for stations ``k`` with visit ratio
``v_k`` and mean service demand ``s_k``:

- queueing (PS or FCFS) station: ``R_k(n) = s_k * (1 + Q_k(n-1))``
- delay (infinite-server) station: ``R_k(n) = s_k``
- ``X(n) = n / (Z + sum_k v_k R_k(n))``; ``Q_k(n) = X(n) v_k R_k(n)``

Processor sharing is *insensitive* to the service distribution, so the
solver is exact for the simulator's lognormal demands as long as each
station has one core and no admission limit. Multi-core stations are
solved with the *exact* load-dependent MVA recursion (service rate
``min(j, c)/s`` at occupancy ``j``, tracking the marginal queue-length
probabilities), which matches the simulator's egalitarian multi-core PS
discipline; the conformance harness (:mod:`repro.validation`) holds the
simulator to the same tolerance for multi-core stations as for
single-core ones, with a slightly looser response-time bound reflecting
simulation noise rather than model error (see EXPERIMENTS.md).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass


@dataclass(frozen=True)
class Station:
    """One service center.

    Attributes:
        name: label for reports.
        demand: mean service demand per visit (seconds).
        visits: visit ratio relative to one user request.
        kind: "queueing" (PS/FCFS single server), "delay"
            (infinite-server, e.g. think time), or "multi" (c-server
            PS, solved with a load-dependent correction).
        servers: server count for "multi" stations.
    """

    name: str
    demand: float
    visits: float = 1.0
    kind: _t.Literal["queueing", "delay", "multi"] = "queueing"
    servers: int = 1

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ValueError(f"negative demand {self.demand}")
        if self.visits < 0:
            raise ValueError(f"negative visits {self.visits}")
        if self.kind == "multi" and self.servers < 1:
            raise ValueError(f"servers must be >= 1, got {self.servers}")


@dataclass(frozen=True)
class MvaResult:
    """Steady-state solution for a population ``n``.

    Attributes:
        population: number of circulating users.
        throughput: system throughput (user requests per second).
        response_times: per-station residence time per *request*
            (visits * per-visit residence).
        queue_lengths: mean jobs at each station.
        cycle_time: mean end-to-end response time of one request
            (excluding think time).
    """

    population: int
    throughput: float
    response_times: dict[str, float]
    queue_lengths: dict[str, float]

    @property
    def cycle_time(self) -> float:
        """Total response time across every station (one cycle)."""
        return sum(self.response_times.values())

    def utilization(self, station: Station) -> float:
        """Utilization of a station (per server for multi)."""
        demand = station.visits * station.demand
        base = self.throughput * demand
        if station.kind == "multi":
            return base / station.servers
        return base


def solve_mva_all(stations: _t.Sequence[Station], population: int,
                  think_time: float = 0.0) -> list[MvaResult]:
    """Exact MVA at *every* population ``0..N`` in one pass.

    The exact recursion steps through each intermediate population to
    reach ``N`` regardless; this variant captures them all, so a sweep
    over populations (the fluid fast path's quasi-static trace walk)
    costs one recursion instead of one per distinct population —
    ``O(N^2)`` total rather than ``O(N^3)`` with load-dependent
    stations. ``result[n]`` is the solution at population ``n``.
    """
    if population < 0:
        raise ValueError(f"negative population {population}")
    if think_time < 0:
        raise ValueError(f"negative think_time {think_time}")
    names = [s.name for s in stations]
    if len(set(names)) != len(names):
        raise ValueError("station names must be unique")

    results = [MvaResult(population=0, throughput=0.0,
                         response_times={s.name: 0.0 for s in stations},
                         queue_lengths={s.name: 0.0 for s in stations})]
    queues = {s.name: 0.0 for s in stations}
    marginals = {s.name: [1.0] for s in stations if s.kind == "multi"}
    response: dict[str, float] = {s.name: 0.0 for s in stations}
    for n in range(1, population + 1):
        for s in stations:
            if s.kind == "delay":
                per_visit = s.demand
            elif s.kind == "multi":
                prior = marginals[s.name]
                per_visit = s.demand * sum(
                    (j / min(j, s.servers)) * prior[j - 1]
                    for j in range(1, n + 1)) if s.demand > 0 else 0.0
            else:
                per_visit = s.demand * (1.0 + queues[s.name])
            response[s.name] = s.visits * per_visit
        denominator = think_time + sum(response.values())
        throughput = n / denominator if denominator > 0 else float("inf")
        for s in stations:
            if s.kind == "multi":
                if s.demand == 0:
                    queues[s.name] = 0.0
                    marginals[s.name] = [1.0] + [0.0] * n
                    continue
                prior = marginals[s.name]
                updated = [0.0] * (n + 1)
                for j in range(1, n + 1):
                    rate = min(j, s.servers) / s.demand
                    updated[j] = (throughput * s.visits / rate) * \
                        prior[j - 1]
                updated[0] = max(0.0, 1.0 - sum(updated[1:]))
                marginals[s.name] = updated
                queues[s.name] = sum(j * p for j, p in enumerate(updated))
            else:
                queues[s.name] = throughput * response[s.name]
        results.append(MvaResult(
            population=n, throughput=throughput,
            response_times=dict(response),
            queue_lengths=dict(queues)))
    return results


def solve_mva(stations: _t.Sequence[Station], population: int,
              think_time: float = 0.0) -> MvaResult:
    """Exact single-class MVA (load-dependent for multi-core stations).

    Single-server and delay stations use the classic arrival-theorem
    recursion. Multi-core ("multi") stations use the exact
    load-dependent form: with service rate ``mu(j) = min(j, c) / s`` at
    occupancy ``j``, the residence per visit at population ``n`` is

    .. math:: R_k(n) = \\sum_{j=1}^{n} \\frac{j}{\\mu_k(j)}\\,
              p_k(j-1 \\mid n-1)

    where ``p_k(. | n-1)`` are the station's marginal queue-length
    probabilities from the previous population, updated each step by
    ``p_k(j|n) = (X v_k / mu_k(j)) p_k(j-1|n-1)``.

    Args:
        stations: the service centers.
        population: closed population size ``N``.
        think_time: delay between completing a request and issuing the
            next one (the ``Z`` term).

    Returns:
        The solution at ``N`` (intermediate populations are computed
        internally by the standard recursion).
    """
    if population < 0:
        raise ValueError(f"negative population {population}")
    if think_time < 0:
        raise ValueError(f"negative think_time {think_time}")
    names = [s.name for s in stations]
    if len(set(names)) != len(names):
        raise ValueError("station names must be unique")

    queues = {s.name: 0.0 for s in stations}
    # Marginal occupancy distribution p_k(j | n) for load-dependent
    # stations, indexed by j; starts at population 0 (surely empty).
    marginals = {s.name: [1.0] for s in stations if s.kind == "multi"}
    throughput = 0.0
    response: dict[str, float] = {s.name: 0.0 for s in stations}
    for n in range(1, population + 1):
        for s in stations:
            if s.kind == "delay":
                per_visit = s.demand
            elif s.kind == "multi":
                prior = marginals[s.name]
                per_visit = s.demand * sum(
                    (j / min(j, s.servers)) * prior[j - 1]
                    for j in range(1, n + 1)) if s.demand > 0 else 0.0
            else:
                per_visit = s.demand * (1.0 + queues[s.name])
            response[s.name] = s.visits * per_visit
        denominator = think_time + sum(response.values())
        throughput = n / denominator if denominator > 0 else float("inf")
        for s in stations:
            if s.kind == "multi":
                if s.demand == 0:
                    queues[s.name] = 0.0
                    marginals[s.name] = [1.0] + [0.0] * n
                    continue
                prior = marginals[s.name]
                updated = [0.0] * (n + 1)
                for j in range(1, n + 1):
                    rate = min(j, s.servers) / s.demand
                    updated[j] = (throughput * s.visits / rate) * \
                        prior[j - 1]
                # Numerical guard: the tail can overshoot 1 by rounding.
                updated[0] = max(0.0, 1.0 - sum(updated[1:]))
                marginals[s.name] = updated
                queues[s.name] = sum(j * p for j, p in enumerate(updated))
            else:
                queues[s.name] = throughput * response[s.name]

    return MvaResult(
        population=population,
        throughput=throughput,
        response_times=dict(response),
        queue_lengths=dict(queues),
    )


def solve_mva_sweep(stations: _t.Sequence[Station],
                    populations: _t.Sequence[int],
                    think_time: float = 0.0) -> list[MvaResult]:
    """MVA solutions at several population sizes."""
    return [solve_mva(stations, n, think_time) for n in populations]


def solve_mva_schweitzer(stations: _t.Sequence[Station],
                         population: int, think_time: float = 0.0,
                         tol: float = 1e-10,
                         max_iter: int = 100_000) -> MvaResult:
    """Approximate MVA (Schweitzer-Bard fixed point).

    The exact recursion costs ``O(N)`` populations (``O(N^2)`` with
    load-dependent stations) — hopeless at the million-user scale the
    fluid fast path targets. Schweitzer's approximation replaces the
    arrival-theorem term ``Q_k(n-1)`` with ``Q_k(n) * (n-1)/n`` and
    iterates to a fixed point, making the cost independent of ``N``.
    Multi-server stations use the Seidmann transform: a ``c``-server
    station of demand ``s`` becomes a queueing station of demand
    ``s/c`` in series with a pure delay of ``s*(c-1)/c`` — exact at
    both the light- and heavy-traffic limits.

    Accuracy is the textbook AMVA profile: exact for pure delay
    networks, worst (a few percent on throughput, more on queue
    lengths) around the saturation knee ``N*``; the fluid validation
    suite pins the error against :func:`solve_mva` on the conformance
    family. Same result contract as :func:`solve_mva`.
    """
    if population < 0:
        raise ValueError(f"negative population {population}")
    if think_time < 0:
        raise ValueError(f"negative think_time {think_time}")
    names = [s.name for s in stations]
    if len(set(names)) != len(names):
        raise ValueError("station names must be unique")
    if population == 0:
        return MvaResult(population=0, throughput=0.0,
                         response_times={s.name: 0.0 for s in stations},
                         queue_lengths={s.name: 0.0 for s in stations})

    # Seidmann transform: (queueing_demand, fixed_delay) per station.
    split: list[tuple[Station, float, float]] = []
    for s in stations:
        if s.kind == "delay":
            split.append((s, 0.0, s.demand))
        elif s.kind == "multi":
            c = s.servers
            split.append((s, s.demand / c, s.demand * (c - 1) / c))
        else:
            split.append((s, s.demand, 0.0))

    n = population
    scale = (n - 1) / n
    total = sum(s.visits * s.demand for s in stations) or 1.0
    # Contended (queueing-stage) population only: the Seidmann delay
    # stage holds jobs but exerts no contention on arrivals.
    contended = {s.name: n * (s.visits * s.demand) / total
                 for s in stations}
    queues: dict[str, float] = {}
    throughput = 0.0
    response: dict[str, float] = {}
    for _ in range(max_iter):
        for s, q_demand, d_delay in split:
            per_visit_q = q_demand * (1.0 + scale * contended[s.name])
            response[s.name] = s.visits * (d_delay + per_visit_q)
        denominator = think_time + sum(response.values())
        throughput = n / denominator if denominator > 0 else float("inf")
        delta = 0.0
        for s, q_demand, d_delay in split:
            resp = response[s.name]
            updated = throughput * (resp - s.visits * d_delay)
            diff = updated - contended[s.name]
            if diff > delta:
                delta = diff
            elif -diff > delta:
                delta = -diff
            contended[s.name] = updated
            queues[s.name] = throughput * resp
        if delta <= tol * max(1.0, n):
            break
    return MvaResult(population=population, throughput=throughput,
                     response_times=dict(response),
                     queue_lengths=dict(queues))


def bottleneck(stations: _t.Sequence[Station]) -> Station:
    """The station with the largest total demand (asymptotic limit)."""
    loaded = [s for s in stations if s.kind != "delay"]
    if not loaded:
        raise ValueError("no queueing stations")
    return max(loaded, key=lambda s: s.visits * s.demand /
               (s.servers if s.kind == "multi" else 1))


def asymptotic_bounds(stations: _t.Sequence[Station],
                      think_time: float = 0.0
                      ) -> tuple[float, float]:
    """Operational-law bounds ``(X_max, N_star)``.

    ``X_max = 1 / D_bottleneck`` is the saturation throughput;
    ``N_star = (D_total + Z) / D_bottleneck`` is the population at which
    the system saturates.
    """
    heavy = bottleneck(stations)
    d_max = heavy.visits * heavy.demand / (
        heavy.servers if heavy.kind == "multi" else 1)
    d_total = sum(s.visits * s.demand for s in stations
                  if s.kind != "delay")
    return 1.0 / d_max, (d_total + think_time) / d_max
