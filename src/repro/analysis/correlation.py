"""Pearson correlation (used for critical service localization, §3.2)."""

from __future__ import annotations

import typing as _t

import numpy as np


def pearson(x: _t.Sequence[float] | np.ndarray,
            y: _t.Sequence[float] | np.ndarray) -> float:
    """Pearson correlation coefficient of two equal-length samples.

    Degenerate inputs (fewer than two points, or zero variance in either
    sample) return 0.0 rather than NaN: a constant processing time
    cannot explain end-to-end variation, which is exactly the semantics
    the localizer needs.
    """
    a = np.asarray(x, dtype=float)
    b = np.asarray(y, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        return 0.0
    a_centered = a - a.mean()
    b_centered = b - b.mean()
    denom = float(np.sqrt(np.sum(a_centered ** 2) * np.sum(b_centered ** 2)))
    if denom == 0.0:
        return 0.0
    return float(np.sum(a_centered * b_centered) / denom)
