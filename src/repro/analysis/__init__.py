"""Statistical analysis: Kneedle knee detection, smoothing, correlation."""

from repro.analysis.changepoint import ChangePoint, PageHinkley
from repro.analysis.correlation import pearson
from repro.analysis.kneedle import KneeResult, find_knee
from repro.analysis.queueing import (
    MvaResult,
    Station,
    asymptotic_bounds,
    bottleneck,
    solve_mva,
    solve_mva_sweep,
)
from repro.analysis.smoothing import (
    PolynomialFit,
    aggregate_scatter,
    fit_polynomial,
    incremental_degree_fit,
)

__all__ = [
    "ChangePoint",
    "KneeResult",
    "PageHinkley",
    "MvaResult",
    "Station",
    "asymptotic_bounds",
    "bottleneck",
    "solve_mva",
    "solve_mva_sweep",
    "PolynomialFit",
    "aggregate_scatter",
    "find_knee",
    "fit_polynomial",
    "incremental_degree_fit",
    "pearson",
]
