"""Core-limited processor-sharing CPU with multithreading overhead.

This is the hardware substrate under every microservice replica. Jobs
(CPU bursts of in-flight requests) share the CPU in classic egalitarian
processor-sharing: with ``n`` runnable jobs and ``c`` cores, each job
progresses at ``min(1, c/n)`` core-rate. When ``n`` exceeds the core
count, a context-switch penalty shrinks the *effective* aggregate rate::

    aggregate_rate(n) = min(n, c) / (1 + overhead * max(0, n - c))

This is the mechanism the paper names for why liberal thread allocations
degrade performance ("non-trivial multithreading overhead", §2.3): extra
concurrency beyond the core count both stretches every in-flight request
(latency) and burns capacity (throughput).

The implementation uses the standard *virtual time* technique for PS
queues: virtual progress ``V(t)`` advances at the per-job rate, and a job
submitted with ``w`` core-seconds of work completes when ``V`` has grown
by ``w``. Occupancy changes only alter the slope of ``V``, never the
completion *order*, so a single heap suffices and no re-sorting is needed.

Vertical scaling (changing the core limit at runtime) is supported via
:meth:`set_cores` and takes effect immediately for in-flight jobs.
"""

from __future__ import annotations

import heapq
import math
import typing as _t
from itertools import count

from repro.sim.engine import URGENT, Environment
from repro.sim.events import Event

_EPSILON = 1e-9


class ProcessorSharingCpu:
    """A processor-sharing CPU with a runtime-adjustable core limit.

    Args:
        env: simulation environment.
        cores: core limit (may be fractional, e.g. a 0.5-CPU quota).
        overhead: context-switch penalty per runnable job beyond the core
            count; 0 disables the penalty.
        name: label used in reprs and error messages.
    """

    def __init__(self, env: Environment, cores: float = 1.0,
                 overhead: float = 0.0, name: str = "cpu") -> None:
        if cores <= 0:
            raise ValueError(f"core limit must be positive, got {cores}")
        if overhead < 0:
            raise ValueError(f"negative overhead {overhead}")
        self.env = env
        self.name = name
        self._cores = float(cores)
        self._overhead = float(overhead)

        self._virtual = 0.0              # integral of per-job rate
        self._last_update = env.now
        self._heap: list[tuple[float, int, Event]] = []
        self._jobs = 0
        self._job_id = count()
        self._wake_generation = 0

        self._busy_core_seconds = 0.0    # integral of min(n, c)
        self._work_done = 0.0            # integral of effective rate
        self._capacity_core_seconds = 0.0  # integral of the core limit

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cores(self) -> float:
        """Current core limit."""
        return self._cores

    @property
    def overhead(self) -> float:
        """Context-switch penalty coefficient."""
        return self._overhead

    @property
    def active_jobs(self) -> int:
        """Number of jobs currently sharing the CPU."""
        return self._jobs

    def aggregate_rate(self, jobs: int | None = None) -> float:
        """Effective core-seconds of useful work per second at occupancy
        ``jobs`` (defaults to the current occupancy)."""
        n = self._jobs if jobs is None else jobs
        if n <= 0:
            return 0.0
        penalty = 1.0 + self._overhead * max(0.0, n - self._cores)
        return min(float(n), self._cores) / penalty

    def busy_core_seconds(self) -> float:
        """Cumulative busy core-seconds up to the current time.

        This is what a cAdvisor-style monitor sees: cores occupied,
        including capacity burned on context switching. Utilization over a
        window is ``delta(busy) / (delta(t) * cores)``.
        """
        self._advance()
        return self._busy_core_seconds

    def work_done(self) -> float:
        """Cumulative *useful* core-seconds completed (excludes overhead)."""
        self._advance()
        return self._work_done

    def capacity_core_seconds(self) -> float:
        """Cumulative core-seconds of *allocated* capacity (integral of
        the core limit over time). ``busy/capacity`` over a window is the
        utilization an HPA-style monitor acts on."""
        self._advance()
        return self._capacity_core_seconds

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def submit(self, work: float) -> Event:
        """Submit a job needing ``work`` core-seconds; returns an event
        that succeeds when the job completes."""
        if work < 0:
            raise ValueError(f"negative work {work}")
        done = Event(self.env)
        if work == 0.0:
            done.succeed()
            return done
        self._advance()
        finish_v = self._virtual + work
        heapq.heappush(self._heap, (finish_v, next(self._job_id), done))
        self._jobs += 1
        self._reschedule()
        return done

    def set_cores(self, cores: float) -> None:
        """Vertically scale the CPU; in-flight jobs immediately run at the
        new rate."""
        if cores <= 0:
            raise ValueError(f"core limit must be positive, got {cores}")
        self._advance()
        self._cores = float(cores)
        self._reschedule()

    def set_overhead(self, overhead: float) -> None:
        """Change the context-switch penalty coefficient."""
        if overhead < 0:
            raise ValueError(f"negative overhead {overhead}")
        self._advance()
        self._overhead = float(overhead)
        self._reschedule()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _per_job_rate(self) -> float:
        if self._jobs == 0:
            return 0.0
        return self.aggregate_rate() / self._jobs

    def _advance(self) -> None:
        """Integrate virtual time and accounting up to ``env.now``."""
        now = self.env.now
        dt = now - self._last_update
        if dt <= 0:
            self._last_update = now
            return
        if self._jobs > 0:
            rate = self.aggregate_rate()
            self._virtual += (rate / self._jobs) * dt
            self._busy_core_seconds += min(self._jobs, self._cores) * dt
            self._work_done += rate * dt
        self._capacity_core_seconds += self._cores * dt
        self._last_update = now

    def _reschedule(self) -> None:
        """Schedule (or reschedule) the next completion wake-up."""
        self._wake_generation += 1
        generation = self._wake_generation
        if not self._heap:
            return
        rate = self._per_job_rate()
        if rate <= 0:  # pragma: no cover - jobs>0 implies rate>0
            return
        next_finish_v = self._heap[0][0]
        delay = max(0.0, (next_finish_v - self._virtual) / rate)
        when = self.env.now + delay
        if math.isinf(when):  # pragma: no cover - defensive
            return
        self.env.call_at(when, lambda: self._wake(generation),
                         priority=URGENT)

    def _wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a later reschedule (lazy invalidation)
        self._advance()
        completed: list[Event] = []
        while self._heap and self._heap[0][0] <= self._virtual + _EPSILON:
            _finish_v, _jid, done = heapq.heappop(self._heap)
            self._jobs -= 1
            completed.append(done)
        self._reschedule()
        for done in completed:
            done.succeed()

    def __repr__(self) -> str:
        return (f"<ProcessorSharingCpu {self.name!r} cores={self._cores} "
                f"jobs={self._jobs}>")
