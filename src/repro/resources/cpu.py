"""Core-limited processor-sharing CPU with multithreading overhead.

This is the hardware substrate under every microservice replica. Jobs
(CPU bursts of in-flight requests) share the CPU in classic egalitarian
processor-sharing: with ``n`` runnable jobs and ``c`` cores, each job
progresses at ``min(1, c/n)`` core-rate. When ``n`` exceeds the core
count, a context-switch penalty shrinks the *effective* aggregate rate::

    aggregate_rate(n) = min(n, c) / (1 + overhead * max(0, n - c))

This is the mechanism the paper names for why liberal thread allocations
degrade performance ("non-trivial multithreading overhead", §2.3): extra
concurrency beyond the core count both stretches every in-flight request
(latency) and burns capacity (throughput).

The implementation uses the standard *virtual time* technique for PS
queues: virtual progress ``V(t)`` advances at the per-job rate, and a job
submitted with ``w`` core-seconds of work completes when ``V`` has grown
by ``w``. Occupancy changes only alter the slope of ``V``, never the
completion *order*, so a single heap suffices and no re-sorting is needed.

Vertical scaling (changing the core limit at runtime) is supported via
:meth:`set_cores` and takes effect immediately for in-flight jobs.
"""

from __future__ import annotations

import heapq
import math
from heapq import heappush
from itertools import count

from repro.sim.engine import URGENT, Environment
from repro.sim.events import Event

_EPSILON = 1e-9


class ProcessorSharingCpu:
    """A processor-sharing CPU with a runtime-adjustable core limit.

    Args:
        env: simulation environment.
        cores: core limit (may be fractional, e.g. a 0.5-CPU quota).
        overhead: context-switch penalty per runnable job beyond the core
            count; 0 disables the penalty.
        name: label used in reprs and error messages.
    """

    def __init__(self, env: Environment, cores: float = 1.0,
                 overhead: float = 0.0, name: str = "cpu") -> None:
        if cores <= 0:
            raise ValueError(f"core limit must be positive, got {cores}")
        if overhead < 0:
            raise ValueError(f"negative overhead {overhead}")
        self.env = env
        self.name = name
        self._cores = float(cores)
        self._overhead = float(overhead)

        self._virtual = 0.0              # integral of per-job rate
        self._last_update = env.now
        self._heap: list[tuple[float, int, Event]] = []
        self._jobs = 0
        self._job_id = count()
        #: Time of the earliest outstanding wake timer (inf = none).
        #: Occupancy changes only ever push the next completion *later*
        #: (more jobs -> slower virtual time), so an already-scheduled
        #: earlier timer simply fires, finds nothing due, and
        #: reschedules — no per-submit timer churn.
        self._next_wake = float("inf")

        self._busy_core_seconds = 0.0    # integral of min(n, c)
        self._work_done = 0.0            # integral of effective rate
        self._capacity_core_seconds = 0.0  # integral of the core limit

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cores(self) -> float:
        """Current core limit."""
        return self._cores

    @property
    def overhead(self) -> float:
        """Context-switch penalty coefficient."""
        return self._overhead

    @property
    def active_jobs(self) -> int:
        """Number of jobs currently sharing the CPU."""
        return self._jobs

    def aggregate_rate(self, jobs: int | None = None) -> float:
        """Effective core-seconds of useful work per second at occupancy
        ``jobs`` (defaults to the current occupancy)."""
        n = self._jobs if jobs is None else jobs
        if n <= 0:
            return 0.0
        penalty = 1.0 + self._overhead * max(0.0, n - self._cores)
        return min(float(n), self._cores) / penalty

    def busy_core_seconds(self) -> float:
        """Cumulative busy core-seconds up to the current time.

        This is what a cAdvisor-style monitor sees: cores occupied,
        including capacity burned on context switching. Utilization over a
        window is ``delta(busy) / (delta(t) * cores)``.
        """
        self._advance()
        return self._busy_core_seconds

    def work_done(self) -> float:
        """Cumulative *useful* core-seconds completed (excludes overhead)."""
        self._advance()
        return self._work_done

    def capacity_core_seconds(self) -> float:
        """Cumulative core-seconds of *allocated* capacity (integral of
        the core limit over time). ``busy/capacity`` over a window is the
        utilization an HPA-style monitor acts on."""
        self._advance()
        return self._capacity_core_seconds

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def submit(self, work: float) -> Event:
        """Submit a job needing ``work`` core-seconds; returns an event
        that succeeds when the job completes.

        This is the hottest entry point of the scheduler, so
        :meth:`_advance` and :meth:`_reschedule` are fused into the
        method body (identical arithmetic, no call overhead).
        """
        if work < 0:
            raise ValueError(f"negative work {work}")
        env = self.env
        done = Event(env)
        if work == 0.0:
            done.succeed()
            return done
        now = env._now
        jobs = self._jobs
        cores = self._cores
        overhead = self._overhead
        dt = now - self._last_update
        if dt > 0.0:
            if jobs > 0:
                over = jobs - cores
                penalty = 1.0 + overhead * over if over > 0.0 else 1.0
                rate = (jobs if jobs < cores else cores) / penalty
                self._virtual += (rate / jobs) * dt
                self._busy_core_seconds += \
                    (jobs if jobs < cores else cores) * dt
                self._work_done += rate * dt
            self._capacity_core_seconds += cores * dt
            self._last_update = now
        heapq.heappush(self._heap, (self._virtual + work,
                                    next(self._job_id), done))
        self._jobs = jobs = jobs + 1
        over = jobs - cores
        penalty = 1.0 + overhead * over if over > 0.0 else 1.0
        rate = (jobs if jobs < cores else cores) / (penalty * jobs)
        delay = (self._heap[0][0] - self._virtual) / rate
        when = now + delay if delay > 0.0 else now
        if when < self._next_wake:
            self._next_wake = when
            event = Event(env)
            event.callbacks.append(self._wake)
            event._ok = True
            event._value = None
            heappush(env._heap, (when, URGENT, next(env._eid), event))
        return done

    def set_cores(self, cores: float) -> None:
        """Vertically scale the CPU; in-flight jobs immediately run at the
        new rate."""
        if cores <= 0:
            raise ValueError(f"core limit must be positive, got {cores}")
        self._advance()
        self._cores = float(cores)
        self._reschedule()

    def set_overhead(self, overhead: float) -> None:
        """Change the context-switch penalty coefficient."""
        if overhead < 0:
            raise ValueError(f"negative overhead {overhead}")
        self._advance()
        self._overhead = float(overhead)
        self._reschedule()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _per_job_rate(self) -> float:
        if self._jobs == 0:
            return 0.0
        return self.aggregate_rate() / self._jobs

    def _advance(self) -> None:
        """Integrate virtual time and accounting up to ``env.now``."""
        now = self.env._now
        dt = now - self._last_update
        if dt <= 0.0:
            return
        jobs = self._jobs
        cores = self._cores
        if jobs > 0:
            # aggregate_rate() inlined: this runs on every submit/wake.
            over = jobs - cores
            penalty = 1.0 + self._overhead * over if over > 0.0 else 1.0
            rate = (jobs if jobs < cores else cores) / penalty
            self._virtual += (rate / jobs) * dt
            self._busy_core_seconds += (jobs if jobs < cores else cores) * dt
            self._work_done += rate * dt
        self._capacity_core_seconds += cores * dt
        self._last_update = now

    def _reschedule(self) -> None:
        """Ensure a wake timer is pending at (or before) the next
        completion.

        A timer that fires before anything is due is a cheap recheck
        (:meth:`_wake` recomputes and re-arms); a timer is only *added*
        when the next completion moved earlier than every outstanding
        timer. This keeps the common burst-of-submits pattern at one
        outstanding timer instead of one per submit.
        """
        if not self._heap:
            return
        jobs = self._jobs
        if jobs <= 0:  # pragma: no cover - heap non-empty implies jobs>0
            return
        # _per_job_rate()/aggregate_rate() inlined for the hot path.
        cores = self._cores
        over = jobs - cores
        penalty = 1.0 + self._overhead * over if over > 0.0 else 1.0
        rate = (jobs if jobs < cores else cores) / (penalty * jobs)
        next_finish_v = self._heap[0][0]
        env = self.env
        delay = (next_finish_v - self._virtual) / rate
        when = env._now + delay if delay > 0.0 else env._now
        if when >= self._next_wake:
            return  # pending timer fires first and will recheck
        if math.isinf(when):  # pragma: no cover - defensive
            return
        self._next_wake = when
        # Equivalent of env.call_at(when, ..., priority=URGENT) without
        # the closure wrapper: the wake event carries the bound method
        # directly as its callback.
        event = Event(env)
        event.callbacks.append(self._wake)
        event._ok = True
        event._value = None
        heappush(env._heap, (when, URGENT, next(env._eid), event))

    def _wake(self, _event: Event | None = None) -> None:
        """Timer callback: complete everything due, then re-arm.

        Like :meth:`submit` this fuses :meth:`_advance` and
        :meth:`_reschedule` inline, and re-arms by pushing the *fired*
        wake event back onto the engine heap (the engine has already
        detached its callback list, so the object is free for reuse and
        is never in the heap twice).
        """
        env = self.env
        now = env._now
        jobs = self._jobs
        cores = self._cores
        overhead = self._overhead
        dt = now - self._last_update
        if dt > 0.0:
            if jobs > 0:
                over = jobs - cores
                penalty = 1.0 + overhead * over if over > 0.0 else 1.0
                rate = (jobs if jobs < cores else cores) / penalty
                self._virtual += (rate / jobs) * dt
                self._busy_core_seconds += \
                    (jobs if jobs < cores else cores) * dt
                self._work_done += rate * dt
            self._capacity_core_seconds += cores * dt
            self._last_update = now
        self._next_wake = float("inf")
        heap = self._heap
        threshold = self._virtual + _EPSILON
        completed: list[Event] | None = None
        if heap and heap[0][0] <= threshold:
            completed = []
            pop = heapq.heappop
            while heap and heap[0][0] <= threshold:
                completed.append(pop(heap)[2])
            self._jobs = jobs = jobs - len(completed)
        if heap and jobs > 0:
            over = jobs - cores
            penalty = 1.0 + overhead * over if over > 0.0 else 1.0
            rate = (jobs if jobs < cores else cores) / (penalty * jobs)
            delay = (heap[0][0] - self._virtual) / rate
            when = now + delay if delay > 0.0 else now
            self._next_wake = when
            if _event is not None:
                _event.callbacks = [self._wake]
                event = _event
            else:  # pragma: no cover - _wake always fires from a timer
                event = Event(env)
                event.callbacks.append(self._wake)
                event._ok = True
                event._value = None
            heappush(env._heap, (when, URGENT, next(env._eid), event))
        if completed is not None:
            # done.succeed() inlined: the done events are created in
            # submit() and triggered nowhere else, so the already-
            # triggered check cannot fire (_ok is True from __init__).
            # A multi-completion storm rides one scheduler entry via
            # schedule_batch — same consecutive serials, same stream.
            if len(completed) == 1:
                done = completed[0]
                done._value = None
                heappush(env._heap, (now, 1, next(env._eid), done))
            else:
                for done in completed:
                    done._value = None
                env.schedule_batch(completed)

    def __repr__(self) -> str:
        return (f"<ProcessorSharingCpu {self.name!r} cores={self._cores} "
                f"jobs={self._jobs}>")
