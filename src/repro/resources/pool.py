"""Soft resource pools: the objects Sora adapts.

A :class:`SoftResourcePool` models any concurrency-gating software
resource — a server thread pool, a database connection pool, or an RPC
client connection pool. It is a counted token gate with a FIFO admission
queue:

- ``acquire()`` returns an event that succeeds once a token is granted;
  requests that find the pool exhausted wait in arrival order.
- ``release()`` returns a token and wakes the head waiter.
- ``resize()`` changes the capacity online. Growth grants queued waiters
  immediately; shrinkage is *lazy* — outstanding tokens above the new
  capacity are reclaimed as they are released, exactly how a live thread
  pool drains surplus workers.

The pool keeps the statistics the SCG/SCT models sample: instantaneous
concurrency (tokens in use), queue length, and waiting-time accounting.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.sim.engine import Environment
from repro.sim.events import PENDING as _PENDING
from repro.sim.events import Event


class PoolRequest(Event):
    """A pending or granted acquisition; also the event to wait on."""

    __slots__ = ("enqueued_at", "granted_at", "cancelled")

    def __init__(self, env: Environment) -> None:
        # Inlined Event.__init__ — pools churn through one request per
        # admission, so the base-class call is worth eliding.
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self.defused = False
        self.enqueued_at = env._now
        self.granted_at: float | None = None
        self.cancelled = False

    @property
    def wait_time(self) -> float:
        """Seconds spent queued before the grant (0 if ungranted)."""
        if self.granted_at is None:
            return 0.0
        return self.granted_at - self.enqueued_at


class SoftResourcePool:
    """A resizable counted token gate with FIFO admission.

    Args:
        env: simulation environment.
        capacity: initial number of tokens.
        name: label for metrics and error messages ("cart.threads", ...).
    """

    def __init__(self, env: Environment, capacity: int,
                 name: str = "pool") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.name = name
        self._capacity = int(capacity)
        self._in_use = 0
        self._waiters: deque[PoolRequest] = deque()

        # Cumulative counters for monitors.
        self.total_requests = 0
        self.total_granted = 0
        self.total_wait_time = 0.0
        self._in_use_integral = 0.0
        self._queue_integral = 0.0
        self._last_update = env.now
        self._resize_log: list[tuple[float, int]] = [(env.now, capacity)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Current allocated pool size."""
        return self._capacity

    @property
    def in_use(self) -> int:
        """Tokens currently held — the service's *concurrency*."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a token."""
        return len(self._waiters)

    @property
    def available(self) -> int:
        """Tokens free to grant right now."""
        return max(0, self._capacity - self._in_use)

    @property
    def resize_log(self) -> list[tuple[float, int]]:
        """``(time, capacity)`` records of every resize, oldest first."""
        return list(self._resize_log)

    def in_use_integral(self) -> float:
        """Cumulative token-seconds held up to now.

        Differencing this across a sampling interval yields the
        interval's *mean* concurrency — the ``Q`` of the SCG model's
        ``<Q, GP>`` pairs.
        """
        self._integrate()
        return self._in_use_integral

    def mean_in_use(self, duration: float | None = None) -> float:
        """Time-averaged concurrency since creation (or over ``duration``
        ending now, computed by the caller via differencing)."""
        self._integrate()
        elapsed = duration if duration is not None else self.env.now
        if elapsed <= 0:
            return 0.0
        return self._in_use_integral / elapsed

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def acquire(self) -> PoolRequest:
        """Request a token; the returned event succeeds when granted."""
        self._integrate()
        request = PoolRequest(self.env)
        self.total_requests += 1
        if self._in_use < self._capacity and not self._waiters:
            self._grant(request)
        else:
            self._waiters.append(request)
        return request

    def release(self) -> None:
        """Return a token; wakes the head waiter if capacity allows."""
        if self._in_use <= 0:
            raise RuntimeError(f"pool {self.name!r}: release without acquire")
        self._integrate()
        self._in_use -= 1
        self._grant_waiters()

    def cancel(self, request: PoolRequest) -> None:
        """Abandon a queued (ungranted) request.

        Safe to call on granted requests only if the caller will not also
        release; granted requests must be released instead.
        """
        if request.granted_at is not None:
            raise RuntimeError(
                f"pool {self.name!r}: cannot cancel a granted request")
        request.cancelled = True
        # Physically removed lazily by _grant_waiters.

    def resize(self, capacity: int) -> None:
        """Change the pool size online (grow grants waiters; shrink is
        lazy)."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if capacity == self._capacity:
            return
        self._integrate()
        self._capacity = int(capacity)
        self._resize_log.append((self.env.now, self._capacity))
        self._grant_waiters()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _grant(self, request: PoolRequest) -> None:
        self._in_use += 1
        granted_at = self.env._now
        request.granted_at = granted_at
        self.total_granted += 1
        self.total_wait_time += granted_at - request.enqueued_at
        request.succeed()

    def _grant_waiters(self) -> None:
        granted: list[PoolRequest] | None = None
        now = self.env._now
        while self._waiters and self._in_use < self._capacity:
            request = self._waiters.popleft()
            if request.cancelled:
                continue
            # _grant() inlined minus the succeed(): a growth resize can
            # release a storm of waiters at one timestamp, which rides a
            # single scheduler entry via schedule_batch below.
            self._in_use += 1
            request.granted_at = now
            self.total_granted += 1
            self.total_wait_time += now - request.enqueued_at
            if granted is None:
                granted = [request]
            else:
                granted.append(request)
        if granted is not None:
            if len(granted) == 1:
                granted[0].succeed()
            else:
                for request in granted:
                    request._value = None  # succeed() minus the push
                self.env.schedule_batch(granted)
        # Trim cancelled requests at the head so queue_length stays honest.
        while self._waiters and self._waiters[0].cancelled:
            self._waiters.popleft()

    def _integrate(self) -> None:
        now = self.env._now
        dt = now - self._last_update
        if dt > 0.0:
            self._in_use_integral += self._in_use * dt
            self._queue_integral += len(self._waiters) * dt
            self._last_update = now

    def __repr__(self) -> str:
        return (f"<SoftResourcePool {self.name!r} {self._in_use}/"
                f"{self._capacity} queued={len(self._waiters)}>")
