"""Hardware and soft resource models.

- :class:`ProcessorSharingCpu` — core-limited CPU with context-switch
  overhead (the hardware resource that autoscalers scale).
- :class:`SoftResourcePool` — thread/connection pools (the soft resource
  that Sora adapts).
"""

from repro.resources.cpu import ProcessorSharingCpu
from repro.resources.pool import PoolRequest, SoftResourcePool

__all__ = ["PoolRequest", "ProcessorSharingCpu", "SoftResourcePool"]
