"""Streaming critical-path analytics (CRISP-style aggregation).

The exhaustive pipeline — warehouse stores every trace, localization
re-walks every call tree per control round — does not survive sampling
or fleet-scale trace volume. This module folds each finished trace's
critical path into bounded-memory aggregates *before* any sampling
decision, so localization and the explainability report can run off
aggregates even when the warehouse stores 5% of traces:

* per-service P² sketches (:class:`~repro.obs.sketch.QuantileSketch`)
  of critical-path **self time** (the paper's :math:`PT_{s_i}`) and of
  **contribution** (self time as a fraction of path duration);
* streaming Pearson accumulators per service over the same
  ``(PT_s, RT_CP)`` pairs the exhaustive
  :meth:`~repro.core.localization.CriticalServiceLocator.locate` uses;
* a space-saving **top-K path-pattern table** (path services tuple →
  count, mean duration) standing in for exhaustive
  :func:`~repro.tracing.critical_path.critical_path_frequencies`;
* **exemplar** trace ids — the slowest end-to-end trace and the
  slowest self-time trace per service — which the OpenMetrics export
  attaches to latency histogram samples and the dashboard links.

Everything is O(services + K) memory and O(path length) per trace.
The aggregator is a pure observer: it reads finished span trees and
never touches simulation state, so attaching it cannot perturb replay
fingerprints.
"""

from __future__ import annotations

import math
import typing as _t

from repro.obs.sketch import QuantileSketch
from repro.tracing.critical_path import extract_critical_path
from repro.tracing.span import Span

#: Quantiles tracked by every sketch in the aggregator.
QUANTILES = (0.5, 0.95, 0.99)


class StreamingPearson:
    """Pearson correlation from running moments, O(1) memory.

    Matches :func:`repro.analysis.correlation.pearson` semantics:
    fewer than two samples, or zero variance in either coordinate,
    yields 0.0.
    """

    __slots__ = ("n", "sx", "sy", "sxx", "syy", "sxy")

    def __init__(self) -> None:
        self.n = 0
        self.sx = self.sy = self.sxx = self.syy = self.sxy = 0.0

    def add(self, x: float, y: float) -> None:
        """Fold one ``(x, y)`` observation into the moments."""
        self.n += 1
        self.sx += x
        self.sy += y
        self.sxx += x * x
        self.syy += y * y
        self.sxy += x * y

    def state_dict(self) -> list[float]:
        """The six running moments, JSON-ready and bit-exact."""
        return [self.n, self.sx, self.sy, self.sxx, self.syy, self.sxy]

    def load_state(self, state: _t.Sequence[float]) -> None:
        """Inverse of :meth:`state_dict`."""
        self.n = int(state[0])
        (self.sx, self.sy, self.sxx,
         self.syy, self.sxy) = (float(v) for v in state[1:6])

    def value(self) -> float:
        """Pearson correlation over everything added so far."""
        n = self.n
        if n < 2:
            return 0.0
        cov = n * self.sxy - self.sx * self.sy
        var_x = n * self.sxx - self.sx * self.sx
        var_y = n * self.syy - self.sy * self.sy
        denom = math.sqrt(max(0.0, var_x) * max(0.0, var_y))
        if denom == 0.0:
            return 0.0
        return max(-1.0, min(1.0, cov / denom))


class TopKPaths:
    """Space-saving heavy-hitter table over critical-path patterns.

    Bounded at ``capacity`` entries: when a new pattern arrives at a
    full table, the minimum-count entry is replaced and the newcomer
    inherits its count (+1) with that count recorded as ``error`` —
    the standard Metwally et al. guarantee that true counts are
    over-estimated by at most ``error``.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # pattern -> [count, error, duration_sum]
        self._table: dict[tuple[str, ...], list[float]] = {}

    def offer(self, pattern: tuple[str, ...], duration: float) -> None:
        """Count one occurrence of ``pattern`` (space-saving sketch)."""
        entry = self._table.get(pattern)
        if entry is not None:
            entry[0] += 1
            entry[2] += duration
            return
        if len(self._table) < self.capacity:
            self._table[pattern] = [1, 0, duration]
            return
        victim = min(self._table, key=lambda k: self._table[k][0])
        count, _error, _dsum = self._table.pop(victim)
        self._table[pattern] = [count + 1, count, duration]

    def top(self, k: int | None = None) -> list[dict]:
        """Patterns by descending estimated count, JSON-ready."""
        ranked = sorted(self._table.items(),
                        key=lambda kv: (-kv[1][0], kv[0]))
        if k is not None:
            ranked = ranked[:k]
        return [
            {"services": list(pattern), "count": int(count),
             "error": int(error),
             "mean_duration": dsum / count if count else 0.0}
            for pattern, (count, error, dsum) in ranked
        ]

    def frequencies(self) -> dict[tuple[str, ...], int]:
        """Estimated counts keyed by pattern (localization shape)."""
        return {pattern: int(entry[0])
                for pattern, entry in self._table.items()}

    def state_dict(self) -> dict:
        """JSON-ready exact state, insertion order preserved.

        Order matters: eviction ties in :meth:`offer` break on dict
        iteration order, so a restored table must replay insertions in
        the original sequence to stay byte-deterministic.
        """
        return {
            "capacity": self.capacity,
            "table": [[list(pattern), count, error, dsum]
                      for pattern, (count, error, dsum)
                      in self._table.items()],
        }

    def load_state(self, state: dict) -> None:
        """Inverse of :meth:`state_dict`."""
        self.capacity = int(state["capacity"])
        self._table = {
            tuple(pattern): [count, error, dsum]
            for pattern, count, error, dsum in state["table"]
        }

    def __len__(self) -> int:
        return len(self._table)


class MeanAccumulator:
    """Running count/mean, the cheap sibling of a quantile sketch.

    Contribution fractions only ever surface as means (report column,
    snapshot), so tracking full P² markers for them would double the
    per-trace sketch cost for nothing.
    """

    __slots__ = ("count", "_total")

    def __init__(self) -> None:
        self.count = 0
        self._total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self._total += value

    @property
    def mean(self) -> float:
        return self._total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {"count": self.count, "mean": self.mean}

    def state_dict(self) -> list[float]:
        return [self.count, self._total]

    def load_state(self, state: _t.Sequence[float]) -> None:
        self.count = int(state[0])
        self._total = float(state[1])


class Exemplar(_t.NamedTuple):
    """A trace id pinned to a metric value, OpenMetrics-style."""

    trace_id: int
    value: float
    timestamp: float


class CriticalPathAggregator:
    """Folds finished traces into per-service critical-path aggregates.

    Args:
        quantiles: quantiles every sketch tracks.
        top_k: capacity of the path-pattern heavy-hitter table.
    """

    def __init__(self, quantiles: _t.Sequence[float] = QUANTILES,
                 top_k: int = 32) -> None:
        self.quantiles = tuple(quantiles)
        self.traces_observed = 0
        #: End-to-end critical-path duration sketch (RT_CP).
        self.duration = QuantileSketch(self.quantiles)
        #: service -> PT_s sketch along critical paths.
        self.self_time: dict[str, QuantileSketch] = {}
        #: service -> PT_s / RT_CP contribution-fraction mean.
        self.contribution: dict[str, MeanAccumulator] = {}
        #: service -> streaming PCC(PT_s, RT_CP).
        self._pearson: dict[str, StreamingPearson] = {}
        self.paths = TopKPaths(capacity=top_k)
        #: Slowest end-to-end trace seen so far.
        self.slowest: Exemplar | None = None
        #: service -> slowest critical-path self-time exemplar.
        self.slowest_by_service: dict[str, Exemplar] = {}
        #: Optional :class:`~repro.obs.registry.Histogram` fed every
        #: end-to-end duration with the trace id linked as exemplar
        #: (wired by ``Observability.attach_trace_analytics``).
        self.latency_histogram = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def observe(self, root: Span) -> None:
        """Fold one finished trace's critical path into the aggregates."""
        path = extract_critical_path(root)
        duration = path.duration
        departed = _t.cast(float, root.departure)
        self.traces_observed += 1
        self.duration.observe(duration)
        if self.slowest is None or duration > self.slowest.value:
            self.slowest = Exemplar(root.trace_id, duration, departed)
        if self.latency_histogram is not None:
            self.latency_histogram.observe(duration)
            self.latency_histogram.link_exemplar(
                root.trace_id, duration, departed)
        self.paths.offer(path.services, duration)
        inv = 1.0 / duration if duration > 0.0 else 0.0
        self_time = self.self_time
        contribution = self.contribution
        pearson = self._pearson
        slowest_by_service = self.slowest_by_service
        for span in path.spans:
            service = span.service
            pt = span.self_time()
            sketch = self_time.get(service)
            if sketch is None:
                sketch = self_time[service] = QuantileSketch(
                    self.quantiles)
                contribution[service] = MeanAccumulator()
                pearson[service] = StreamingPearson()
            sketch.observe(pt)
            contribution[service].observe(pt * inv)
            pearson[service].add(pt, duration)
            best = slowest_by_service.get(service)
            if best is None or pt > best.value:
                slowest_by_service[service] = Exemplar(
                    root.trace_id, pt, departed)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def services(self) -> list[str]:
        """Services seen on any critical path, sorted."""
        return sorted(self.self_time)

    def correlations(self) -> dict[str, float]:
        """Streaming PCC(PT_s, RT_CP) per service."""
        return {service: acc.value()
                for service, acc in self._pearson.items()}

    def path_frequencies(self) -> dict[tuple[str, ...], int]:
        """Estimated critical-path pattern counts (top-K table)."""
        return self.paths.frequencies()

    def state_dict(self) -> dict:
        """Exact aggregate state for checkpoint/restore.

        Everything a restored aggregator needs to keep producing the
        same correlations, path frequencies, and exemplars it would
        have produced without the restart; ``latency_histogram`` is an
        externally wired observer and deliberately not captured.
        """
        return {
            "traces_observed": self.traces_observed,
            "duration": self.duration.state_dict(),
            "self_time": {service: sketch.state_dict()
                          for service, sketch in self.self_time.items()},
            "contribution": {service: acc.state_dict()
                             for service, acc
                             in self.contribution.items()},
            "pearson": {service: acc.state_dict()
                        for service, acc in self._pearson.items()},
            "paths": self.paths.state_dict(),
            "slowest": (list(self.slowest)
                        if self.slowest is not None else None),
            "slowest_by_service": {
                service: list(exemplar)
                for service, exemplar
                in self.slowest_by_service.items()},
        }

    def load_state(self, state: dict) -> None:
        """Inverse of :meth:`state_dict` (quantiles must match)."""
        self.traces_observed = int(state["traces_observed"])
        self.duration = QuantileSketch.from_state(state["duration"])
        self.self_time = {
            service: QuantileSketch.from_state(sketch_state)
            for service, sketch_state in state["self_time"].items()}
        self.contribution = {}
        for service, acc_state in state["contribution"].items():
            acc = MeanAccumulator()
            acc.load_state(acc_state)
            self.contribution[service] = acc
        self._pearson = {}
        for service, moments in state["pearson"].items():
            acc = StreamingPearson()
            acc.load_state(moments)
            self._pearson[service] = acc
        self.paths.load_state(state["paths"])
        self.slowest = (Exemplar(int(state["slowest"][0]),
                                 float(state["slowest"][1]),
                                 float(state["slowest"][2]))
                        if state["slowest"] is not None else None)
        self.slowest_by_service = {
            service: Exemplar(int(raw[0]), float(raw[1]), float(raw[2]))
            for service, raw in state["slowest_by_service"].items()}

    def snapshot(self) -> dict:
        """JSON-ready summary of every aggregate."""
        return {
            "traces_observed": self.traces_observed,
            "duration": self.duration.snapshot(),
            "services": {
                service: {
                    "self_time": self.self_time[service].snapshot(),
                    "contribution": self.contribution[service].snapshot(),
                    "correlation": round(
                        self._pearson[service].value(), 6),
                    "exemplar": (
                        self.slowest_by_service[service]._asdict()
                        if service in self.slowest_by_service else None),
                }
                for service in self.services()
            },
            "top_paths": self.paths.top(10),
            "slowest": (self.slowest._asdict()
                        if self.slowest is not None else None),
        }
