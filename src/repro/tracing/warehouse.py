"""Trace warehouse: storage and time-window queries over finished traces.

Stands in for the paper's Jaeger collector + Neo4j/Mongo trace warehouse:
completed request traces (root spans) are appended as they finish, and a
per-service index of span completions supports the fine-grained metric
extraction the SCG model performs (arrival/departure timestamps per
service at millisecond granularity).
"""

from __future__ import annotations

import bisect
import typing as _t
from collections import deque

from repro.tracing.span import Span


class TraceWarehouse:
    """Bounded store of finished traces with per-service indexes.

    Args:
        max_traces: ring-buffer capacity; oldest traces are evicted (the
            real system retains a sliding window of trace data too).
    """

    def __init__(self, max_traces: int = 200_000) -> None:
        self._traces: deque[Span] = deque(maxlen=max_traces)
        # service -> parallel lists (departure_times, spans), kept sorted
        # by departure since traces arrive in completion order.
        self._by_service: dict[str, tuple[list[float], list[Span]]] = {}
        self.total_recorded = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def record(self, root: Span) -> None:
        """Store a finished trace (all spans must have departed).

        The traversal is ``Span.walk()`` unrolled (same pre-order):
        this runs once per completed request, so the generator frame
        and per-span property calls are worth eliding.
        """
        if root.departure is None:
            raise ValueError("cannot record an unfinished trace")
        self._traces.append(root)
        self.total_recorded += 1
        by_service = self._by_service
        stack = [root]
        pop = stack.pop
        extend = stack.extend
        while stack:
            span = pop()
            departure = span.departure
            if departure is None:
                raise ValueError(
                    f"span {span.service} of trace {span.trace_id} "
                    "has not finished")
            entry = by_service.get(span.service)
            if entry is None:
                entry = ([], [])
                by_service[span.service] = entry
            times, spans = entry
            if times and departure < times[-1]:
                index = bisect.bisect_right(times, departure)
                times.insert(index, departure)
                spans.insert(index, span)
            else:
                times.append(departure)
                spans.append(span)
            children = span.children
            if children:
                extend(reversed(children))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def traces(self, since: float = 0.0,
               until: float = float("inf")) -> list[Span]:
        """Finished traces whose root departed within ``[since, until)``."""
        return [root for root in self._traces
                if since <= _t.cast(float, root.departure) < until]

    def spans_for(self, service: str, since: float = 0.0,
                  until: float = float("inf")) -> list[Span]:
        """Spans of ``service`` that departed within ``[since, until)``."""
        entry = self._by_service.get(service)
        if entry is None:
            return []
        times, spans = entry
        lo = bisect.bisect_left(times, since)
        hi = bisect.bisect_left(times, until)
        return spans[lo:hi]

    def services(self) -> list[str]:
        """Names of all services observed so far."""
        return sorted(self._by_service)

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def prune(self, before: float) -> int:
        """Drop traces and index entries that departed before ``before``.

        Long-running monitors call this periodically so memory stays
        proportional to the analysis window, not the run length.
        Returns the number of traces dropped.
        """
        dropped = 0
        while self._traces and _t.cast(
                float, self._traces[0].departure) < before:
            self._traces.popleft()
            dropped += 1
        for service, (times, spans) in self._by_service.items():
            cut = bisect.bisect_left(times, before)
            if cut:
                del times[:cut]
                del spans[:cut]
        return dropped

    def __len__(self) -> int:
        return len(self._traces)
