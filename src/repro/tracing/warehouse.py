"""Trace warehouse: storage and time-window queries over finished traces.

Stands in for the paper's Jaeger collector + Neo4j/Mongo trace warehouse:
completed request traces (root spans) are appended as they finish, and a
per-service index of span completions supports the fine-grained metric
extraction the SCG model performs (arrival/departure timestamps per
service at millisecond granularity).

Scale hooks (attached via :meth:`TraceWarehouse.attach`):

* an optional :class:`~repro.tracing.sampling.TraceSampler` decides per
  finished trace whether the span tree is stored at all;
* an optional
  :class:`~repro.tracing.analytics.CriticalPathAggregator` observes
  **every** finished trace *before* the sampling decision, so streaming
  aggregates stay exact even when the ring stores 5% of traces.

``total_recorded`` likewise counts every finished trace regardless of
sampling: the replay-fingerprint summary folds it in, and sampling is
an observability concern that must never change simulated outcomes.
"""

from __future__ import annotations

import bisect
import typing as _t
from collections import deque

from repro.tracing.span import Span

if _t.TYPE_CHECKING:
    from repro.tracing.analytics import CriticalPathAggregator
    from repro.tracing.sampling import TraceSampler


class TraceWarehouse:
    """Bounded store of finished traces with per-service indexes.

    Args:
        max_traces: ring-buffer capacity; oldest traces are evicted (the
            real system retains a sliding window of trace data too).
        sampler: optional keep/drop policy applied per finished trace.
        analytics: optional streaming aggregator fed every finished
            trace ahead of the sampling decision.
    """

    def __init__(self, max_traces: int = 200_000,
                 sampler: "TraceSampler | None" = None,
                 analytics: "CriticalPathAggregator | None" = None) -> None:
        self._traces: deque[Span] = deque(maxlen=max_traces)
        # service -> parallel lists (departure_times, spans), kept sorted
        # by departure since traces arrive in completion order.
        self._by_service: dict[str, tuple[list[float], list[Span]]] = {}
        self.total_recorded = 0
        self.sampler = sampler
        self.analytics = analytics

    def attach(self, sampler: "TraceSampler | None" = None,
               analytics: "CriticalPathAggregator | None" = None) -> None:
        """Attach a sampler and/or aggregator after construction.

        Scenario builders create the warehouse; observability wiring
        happens later (CLI flags, matrix cells), so attachment is a
        separate step. Passing ``None`` leaves that slot unchanged.
        """
        if sampler is not None:
            self.sampler = sampler
        if analytics is not None:
            self.analytics = analytics

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def record(self, root: Span) -> None:
        """Account for a finished trace and (if sampled in) store it.

        The traversal is ``Span.walk()`` unrolled (same pre-order):
        this runs once per completed request, so the generator frame
        and per-span property calls are worth eliding.
        """
        if root.departure is None:
            raise ValueError("cannot record an unfinished trace")
        self.total_recorded += 1
        if self.analytics is not None:
            self.analytics.observe(root)
        if self.sampler is not None and not self.sampler.sample(root):
            return
        ring = self._traces
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            # The append below will silently evict the oldest root from
            # the deque; drop its spans from the indexes first so the
            # per-service views never reference evicted traces.
            self._unindex(ring[0])
        ring.append(root)
        by_service = self._by_service
        stack = [root]
        pop = stack.pop
        extend = stack.extend
        while stack:
            span = pop()
            departure = span.departure
            if departure is None:
                raise ValueError(
                    f"span {span.service} of trace {span.trace_id} "
                    "has not finished")
            entry = by_service.get(span.service)
            if entry is None:
                entry = ([], [])
                by_service[span.service] = entry
            times, spans = entry
            if times and departure < times[-1]:
                index = bisect.bisect_right(times, departure)
                times.insert(index, departure)
                spans.insert(index, span)
            else:
                times.append(departure)
                spans.append(span)
            children = span.children
            if children:
                extend(reversed(children))

    def _unindex(self, root: Span) -> None:
        """Remove every span of ``root`` from the per-service indexes."""
        by_service = self._by_service
        stack = [root]
        while stack:
            span = stack.pop()
            entry = by_service.get(span.service)
            if entry is not None:
                times, spans = entry
                departure = _t.cast(float, span.departure)
                i = bisect.bisect_left(times, departure)
                n = len(spans)
                while (i < n and times[i] == departure
                       and spans[i] is not span):
                    i += 1
                if i < n and spans[i] is span:
                    del times[i]
                    del spans[i]
            if span.children:
                stack.extend(span.children)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def traces(self, since: float = 0.0,
               until: float = float("inf")) -> list[Span]:
        """Finished traces whose root departed within ``[since, until)``."""
        return [root for root in self._traces
                if since <= _t.cast(float, root.departure) < until]

    def spans_for(self, service: str, since: float = 0.0,
                  until: float = float("inf")) -> list[Span]:
        """Spans of ``service`` that departed within ``[since, until)``."""
        entry = self._by_service.get(service)
        if entry is None:
            return []
        times, spans = entry
        lo = bisect.bisect_left(times, since)
        hi = bisect.bisect_left(times, until)
        return spans[lo:hi]

    def services(self) -> list[str]:
        """Names of all services observed so far."""
        return sorted(self._by_service)

    def coverage(self) -> dict:
        """Sampling-coverage snapshot (meaningful sans sampler too)."""
        snap: dict = {"total_recorded": self.total_recorded,
                      "stored": len(self._traces)}
        if self.sampler is not None:
            snap.update(self.sampler.coverage())
        else:
            snap["sampler"] = "none"
        if self.analytics is not None:
            snap["analytics_traces_observed"] = (
                self.analytics.traces_observed)
        return snap

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def prune(self, before: float) -> int:
        """Drop traces and index entries that departed before ``before``.

        Long-running monitors call this periodically so memory stays
        proportional to the analysis window, not the run length.
        Returns the number of traces dropped.
        """
        dropped = 0
        while self._traces and _t.cast(
                float, self._traces[0].departure) < before:
            self._traces.popleft()
            dropped += 1
        for service, (times, spans) in self._by_service.items():
            cut = bisect.bisect_left(times, before)
            if cut:
                del times[:cut]
                del spans[:cut]
        return dropped

    def __len__(self) -> int:
        return len(self._traces)
