"""Pluggable trace samplers: head-based and tail-based retention.

At fleet scale the warehouse cannot store every finished trace (the
Alibaba elastic-provisioning practice report calls trace volume the
dominant observability cost), yet Sora's localization signal lives in
the *tail*: the SLO-violating, cancelled, and fault-tagged traces.
These samplers decide, per finished trace, whether the warehouse keeps
the span tree. Two disciplines are provided:

* :class:`HeadSampler` — classic probabilistic head sampling. The
  keep/drop decision is drawn per trace, independent of its outcome,
  mirroring a decision taken at trace *start* (head) and propagated.
* :class:`TailSampler` — tail-based sampling over the complete span
  tree. Because the simulator hands us the *finished* trace, the
  sampler sees the whole tree at decision time (the real-system
  analogue buffers in-flight spans until the root completes) and can
  guarantee retention of every SLO-violating trace, every trace with a
  cancelled span (quorum/hedge stragglers, timeouts), and every trace
  flagged by a caller-supplied predicate — while downsampling the
  healthy bulk at a configured rate.

Determinism: samplers draw randomness only from the generator handed
to them. Use :func:`sampler_stream` to derive a dedicated stream from
the run's :class:`~repro.workload.random_streams.RandomStreams` so
sampling decisions never perturb the simulation's own RNG streams —
this is what keeps sampled and unsampled runs byte-identical in the
replay fingerprints (see ``tests/test_tracing_sampling.py``).
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.tracing.span import Span

#: Name of the dedicated RNG stream sampling decisions draw from.
SAMPLER_STREAM = "tracing.sampler"


def sampler_stream(streams) -> np.random.Generator:
    """The dedicated sampler RNG stream of a ``RandomStreams`` bundle.

    Streams are independently keyed by name, so adding this consumer
    leaves every simulation stream's sequence untouched.
    """
    return streams.stream(SAMPLER_STREAM)


class TraceSampler:
    """Base class: a keep/drop decision per finished trace, with stats.

    Subclasses implement :meth:`_decide` returning ``(keep, reason)``;
    this base keeps the coverage bookkeeping (total seen, kept, kept by
    reason, SLO-violator retention) that the dashboard's
    sampling-coverage panel and the matrix runner's per-cell stats
    render.
    """

    #: Short name used in coverage snapshots and CLI flags.
    kind = "base"

    def __init__(self, slo_threshold: float | None = None) -> None:
        #: End-to-end latency above which a trace counts as an SLO
        #: violation for retention accounting (and, for the tail
        #: sampler, guaranteed retention).
        self.slo_threshold = slo_threshold
        self.total = 0
        self.kept = 0
        self.kept_by_reason: dict[str, int] = {}
        self.slo_violating_total = 0
        self.slo_violating_kept = 0

    # ------------------------------------------------------------------
    def sample(self, root: Span) -> bool:
        """Decide whether the warehouse should store ``root``."""
        keep, reason = self._decide(root)
        self.total += 1
        violating = (self.slo_threshold is not None
                     and root.duration > self.slo_threshold)
        if violating:
            self.slo_violating_total += 1
        if keep:
            self.kept += 1
            self.kept_by_reason[reason] = (
                self.kept_by_reason.get(reason, 0) + 1)
            if violating:
                self.slo_violating_kept += 1
        return keep

    def _decide(self, root: Span) -> tuple[bool, str]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    @property
    def stored_fraction(self) -> float:
        """Fraction of seen traces that were kept (0 when none seen)."""
        return self.kept / self.total if self.total else 0.0

    @property
    def slo_retention(self) -> float:
        """Fraction of SLO-violating traces retained (1.0 when none)."""
        if not self.slo_violating_total:
            return 1.0
        return self.slo_violating_kept / self.slo_violating_total

    def coverage(self) -> dict:
        """JSON-ready sampling-coverage snapshot."""
        return {
            "sampler": self.kind,
            "total": self.total,
            "kept": self.kept,
            "stored_fraction": round(self.stored_fraction, 6),
            "kept_by_reason": dict(sorted(self.kept_by_reason.items())),
            "slo_threshold": self.slo_threshold,
            "slo_violating": {
                "total": self.slo_violating_total,
                "kept": self.slo_violating_kept,
                "retention": round(self.slo_retention, 6),
            },
        }


class HeadSampler(TraceSampler):
    """Probabilistic head sampling: keep each trace with ``rate``.

    The decision is a single uniform draw that does not look at the
    trace's outcome — the tail signal is downsampled along with the
    bulk, which is exactly the failure mode tail sampling fixes.
    """

    kind = "head"

    def __init__(self, rate: float, rng: np.random.Generator,
                 slo_threshold: float | None = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        super().__init__(slo_threshold=slo_threshold)
        self.rate = rate
        self._rng = rng

    def _decide(self, root: Span) -> tuple[bool, str]:
        return (bool(self._rng.random() < self.rate), "head")

    def coverage(self) -> dict:
        snap = super().coverage()
        snap["rate"] = self.rate
        return snap


class TailSampler(TraceSampler):
    """Tail-based sampling with guaranteed retention of the tail.

    Keeps, unconditionally and in priority order:

    1. ``"slo"`` — traces whose end-to-end duration exceeds
       ``slo_threshold``;
    2. ``"cancelled"`` — traces containing a cancelled span
       (quorum/hedge stragglers, timed-out sub-calls): partial work is
       the error signal in a simulator where failed requests never
       reach the warehouse;
    3. ``"flagged"`` — traces for which ``keep_if(root)`` is true
       (e.g. fault-window tagging by the harness).

    Everything else (the healthy bulk) survives with probability
    ``rate``, reported under reason ``"bulk"``.
    """

    kind = "tail"

    def __init__(self, rate: float, rng: np.random.Generator,
                 slo_threshold: float | None = None,
                 keep_if: _t.Callable[[Span], bool] | None = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        super().__init__(slo_threshold=slo_threshold)
        self.rate = rate
        self._rng = rng
        self.keep_if = keep_if

    def _decide(self, root: Span) -> tuple[bool, str]:
        if (self.slo_threshold is not None
                and root.duration > self.slo_threshold):
            return (True, "slo")
        if self._has_cancelled(root):
            return (True, "cancelled")
        if self.keep_if is not None and self.keep_if(root):
            return (True, "flagged")
        return (bool(self._rng.random() < self.rate), "bulk")

    @staticmethod
    def _has_cancelled(root: Span) -> bool:
        stack = [root]
        while stack:
            span = stack.pop()
            if span.cancelled:
                return True
            if span.children:
                stack.extend(span.children)
        return False

    def coverage(self) -> dict:
        snap = super().coverage()
        snap["rate"] = self.rate
        return snap
