"""Trace export in a Jaeger-compatible JSON shape.

The paper's monitoring stack stores OpenTracing spans via Jaeger; this
module serializes simulated traces into the same structure Jaeger's
HTTP API returns (``data[].spans[]`` with microsecond timestamps and
``CHILD_OF`` references), so external tooling — or a human with `jq` —
can inspect simulated request flows exactly like production ones.
"""

from __future__ import annotations

import json
import typing as _t
from bisect import bisect_right

from repro.tracing.span import Span

if _t.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.events import TargetDecision

#: Simulated time zero maps to this epoch microsecond (arbitrary but
#: stable, so exported traces are reproducible byte-for-byte).
EPOCH_US = 1_600_000_000_000_000

#: ``(time, decision)`` pairs as returned by
#: :meth:`repro.obs.events.DecisionLog.applied`.
AppliedDecisions = _t.Sequence[tuple[float, "TargetDecision"]]


def _decision_tags(arrival: float,
                   decisions: AppliedDecisions) -> list[dict]:
    """Audit tags for the allocation decision active at ``arrival``.

    Picks the latest applied decision at or before the trace's arrival,
    so a span links back to the control round that set the soft-resource
    allocation it ran under.
    """
    times = [time for time, _decision in decisions]
    index = bisect_right(times, arrival) - 1
    if index < 0:
        return []
    _time, decision = decisions[index]
    tags = [
        {"key": "sora.target", "type": "string",
         "value": decision.target},
        {"key": "sora.allocation", "type": "int64",
         "value": decision.after},
        {"key": "sora.reason", "type": "string",
         "value": decision.reason},
    ]
    if decision.threshold is not None:
        tags.append({"key": "sora.threshold_ms", "type": "float64",
                     "value": round(decision.threshold * 1e3, 3)})
    if decision.knee_concurrency is not None:
        tags.append({"key": "sora.knee_concurrency", "type": "float64",
                     "value": round(decision.knee_concurrency, 3)})
    return tags


def _self_time_us(span: Span) -> int:
    """Self time in whole microseconds, from the *quantized* intervals.

    Mirrors :meth:`Span.self_time` (duration minus the union of child
    wall-clock intervals) but runs on the same rounded microsecond
    values the document serializes. Rounding the float self time
    instead can land one microsecond off after an import re-quantizes
    every timestamp — with quantized inputs the tag is a pure function
    of the serialized fields and export -> import -> export holds.
    """
    total = max(0, round(span.duration * 1e6))
    intervals = sorted(
        (round(c.arrival * 1e6),
         round(c.arrival * 1e6) + max(0, round(c.duration * 1e6)))
        for c in span.children if c.departure is not None)
    covered = 0
    cursor: int | None = None
    end_cursor = 0
    for start, end in intervals:
        if cursor is None or start > end_cursor:
            if cursor is not None:
                covered += end_cursor - cursor
            cursor, end_cursor = start, end
        else:
            end_cursor = max(end_cursor, end)
    if cursor is not None:
        covered += end_cursor - cursor
    return max(0, total - covered)


def _span_dict(span: Span, trace_id: str) -> dict:
    # round(), not int(): truncation would turn float error just below
    # a microsecond boundary (5999.999...) into an off-by-one, breaking
    # byte-stability of export -> import -> export.
    start_us = EPOCH_US + round(span.arrival * 1e6)
    # Clamp: a cancelled span's departure is stamped at interrupt time,
    # which float error can place a hair before its arrival; Jaeger
    # durations must be non-negative.
    duration_us = max(0, round(span.duration * 1e6))
    references = []
    if span.parent is not None:
        references.append({
            "refType": "CHILD_OF",
            "traceID": trace_id,
            "spanID": format(span.parent.span_id, "016x"),
        })
    tags = [
        {"key": "operation", "type": "string", "value": span.operation},
        # Clamped to the span's duration: the importer caps the service
        # start at departure, so a larger tag would not survive a trip.
        {"key": "queue_wait_us", "type": "int64",
         "value": min(round(span.queue_wait * 1e6), duration_us)},
        {"key": "self_time_us", "type": "int64",
         "value": _self_time_us(span)},
    ]
    if span.replica is not None:
        tags.append({"key": "replica", "type": "string",
                     "value": span.replica})
    if span.cancelled:
        # Only emitted when set, so pre-existing exports of untouched
        # traces stay byte-identical.
        tags.append({"key": "cancelled", "type": "bool", "value": True})
    return {
        "traceID": trace_id,
        "spanID": format(span.span_id, "016x"),
        "operationName": f"{span.service}.{span.operation}",
        "references": references,
        "startTime": start_us,
        "duration": duration_us,
        "tags": tags,
        "processID": span.service,
    }


def trace_to_jaeger(root: Span, *,
                    decisions: AppliedDecisions | None = None) -> dict:
    """One finished trace as a Jaeger ``data[]`` element.

    Args:
        root: the finished root span.
        decisions: optional applied adaptation decisions (see
            :meth:`repro.obs.events.DecisionLog.applied`); when given,
            the root span is tagged with the allocation, threshold, and
            knee point in force when the trace arrived.
    """
    if not root.finished:
        raise ValueError("cannot export an unfinished trace")
    trace_id = format(root.trace_id, "032x")
    spans = [_span_dict(span, trace_id) for span in root.walk()]
    if decisions:
        spans[0]["tags"].extend(_decision_tags(root.arrival, decisions))
    processes = {
        span.service: {"serviceName": span.service, "tags": []}
        for span in root.walk()
    }
    return {"traceID": trace_id, "spans": spans, "processes": processes}


def export_traces(roots: _t.Iterable[Span], *, indent: int | None = None,
                  decisions: AppliedDecisions | None = None) -> str:
    """Serialize traces to a Jaeger-API-shaped JSON document."""
    document = {"data": [trace_to_jaeger(root, decisions=decisions)
                         for root in roots]}
    return json.dumps(document, indent=indent, sort_keys=True)


def write_traces(path: str, roots: _t.Iterable[Span], *,
                 decisions: AppliedDecisions | None = None) -> int:
    """Write traces to ``path``; returns the number exported."""
    data = [trace_to_jaeger(root, decisions=decisions)
            for root in roots]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"data": data}, handle, sort_keys=True)
    return len(data)


def _tag_value(span_dict: dict, key: str) -> _t.Any | None:
    for tag in span_dict.get("tags", ()):
        if tag.get("key") == key:
            return tag.get("value")
    return None


def _trace_from_jaeger(element: dict) -> Span:
    trace_id = int(element["traceID"], 16)
    by_id: dict[str, Span] = {}
    children: dict[str, list[str]] = {}
    root_id: str | None = None
    for span_dict in element["spans"]:
        arrival = (span_dict["startTime"] - EPOCH_US) / 1e6
        span = Span(trace_id=trace_id,
                    service=span_dict["processID"],
                    operation=_tag_value(span_dict, "operation") or "",
                    arrival=arrival,
                    replica=_tag_value(span_dict, "replica"))
        # Preserve the exported identity instead of the fresh counter
        # value so export -> import -> export is a fixed point.
        span.span_id = int(span_dict["spanID"], 16)
        queue_wait_us = _tag_value(span_dict, "queue_wait_us") or 0
        span.departure = arrival + span_dict.get("duration", 0) / 1e6
        # Foreign documents may omit the queue_wait tag or carry one
        # larger than a (zero-)duration span; clamp so service start
        # never passes departure.
        span.started = min(arrival + queue_wait_us / 1e6,
                           span.departure)
        span.cancelled = bool(_tag_value(span_dict, "cancelled"))
        by_id[span_dict["spanID"]] = span
        parents = [ref["spanID"]
                   for ref in span_dict.get("references", ())
                   if ref.get("refType") == "CHILD_OF"
                   and "spanID" in ref]
        if parents:
            children.setdefault(parents[0], []).append(
                span_dict["spanID"])
        else:
            root_id = span_dict["spanID"]
    if root_id is None:
        raise ValueError(f"trace {element['traceID']} has no root span")
    for parent_id, child_ids in children.items():
        parent = by_id[parent_id]
        for child_id in child_ids:
            child = by_id[child_id]
            child.parent = parent
            parent.children.append(child)
    return by_id[root_id]


def traces_from_jaeger(document: str | dict) -> list[Span]:
    """Parse a Jaeger-API-shaped document back into span trees.

    Inverse of :func:`export_traces` up to the microsecond timestamp
    truncation the Jaeger shape imposes: a second export of the parsed
    spans reproduces the document byte-for-byte.
    """
    if isinstance(document, str):
        document = json.loads(document)
    return [_trace_from_jaeger(element) for element in document["data"]]
