"""Trace export in a Jaeger-compatible JSON shape.

The paper's monitoring stack stores OpenTracing spans via Jaeger; this
module serializes simulated traces into the same structure Jaeger's
HTTP API returns (``data[].spans[]`` with microsecond timestamps and
``CHILD_OF`` references), so external tooling — or a human with `jq` —
can inspect simulated request flows exactly like production ones.
"""

from __future__ import annotations

import json
import typing as _t

from repro.tracing.span import Span

#: Simulated time zero maps to this epoch microsecond (arbitrary but
#: stable, so exported traces are reproducible byte-for-byte).
EPOCH_US = 1_600_000_000_000_000


def _span_dict(span: Span, trace_id: str) -> dict:
    start_us = EPOCH_US + int(span.arrival * 1e6)
    duration_us = int(span.duration * 1e6)
    references = []
    if span.parent is not None:
        references.append({
            "refType": "CHILD_OF",
            "traceID": trace_id,
            "spanID": format(span.parent.span_id, "016x"),
        })
    tags = [
        {"key": "operation", "type": "string", "value": span.operation},
        {"key": "queue_wait_us", "type": "int64",
         "value": int(span.queue_wait * 1e6)},
        {"key": "self_time_us", "type": "int64",
         "value": int(span.self_time() * 1e6)},
    ]
    if span.replica is not None:
        tags.append({"key": "replica", "type": "string",
                     "value": span.replica})
    return {
        "traceID": trace_id,
        "spanID": format(span.span_id, "016x"),
        "operationName": f"{span.service}.{span.operation}",
        "references": references,
        "startTime": start_us,
        "duration": duration_us,
        "tags": tags,
        "processID": span.service,
    }


def trace_to_jaeger(root: Span) -> dict:
    """One finished trace as a Jaeger ``data[]`` element."""
    if not root.finished:
        raise ValueError("cannot export an unfinished trace")
    trace_id = format(root.trace_id, "032x")
    spans = [_span_dict(span, trace_id) for span in root.walk()]
    processes = {
        span.service: {"serviceName": span.service, "tags": []}
        for span in root.walk()
    }
    return {"traceID": trace_id, "spans": spans, "processes": processes}


def export_traces(roots: _t.Iterable[Span], *, indent: int | None = None
                  ) -> str:
    """Serialize traces to a Jaeger-API-shaped JSON document."""
    document = {"data": [trace_to_jaeger(root) for root in roots]}
    return json.dumps(document, indent=indent, sort_keys=True)


def write_traces(path: str, roots: _t.Iterable[Span]) -> int:
    """Write traces to ``path``; returns the number exported."""
    data = [trace_to_jaeger(root) for root in roots]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"data": data}, handle, sort_keys=True)
    return len(data)
