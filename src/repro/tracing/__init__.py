"""Distributed tracing substrate (Jaeger/Zipkin stand-in).

Spans record per-service arrival/departure timestamps; the
:class:`TraceWarehouse` indexes finished traces for the SCG model's
fine-grained metric extraction; :func:`extract_critical_path` finds the
maximal-duration root-to-leaf chain of a request call tree. For runs
too large to store every trace, :mod:`repro.tracing.sampling` provides
head/tail samplers and :mod:`repro.tracing.analytics` a streaming
critical-path aggregator that preserves the localization signal on
bounded memory.
"""

from repro.tracing.analytics import (
    CriticalPathAggregator,
    Exemplar,
    StreamingPearson,
    TopKPaths,
)
from repro.tracing.export import (
    export_traces,
    trace_to_jaeger,
    traces_from_jaeger,
    write_traces,
)
from repro.tracing.critical_path import (
    CriticalPath,
    critical_path_frequencies,
    extract_critical_path,
)
from repro.tracing.sampling import (
    SAMPLER_STREAM,
    HeadSampler,
    TailSampler,
    TraceSampler,
    sampler_stream,
)
from repro.tracing.span import Span
from repro.tracing.warehouse import TraceWarehouse

__all__ = [
    "CriticalPath",
    "CriticalPathAggregator",
    "Exemplar",
    "HeadSampler",
    "SAMPLER_STREAM",
    "Span",
    "StreamingPearson",
    "TailSampler",
    "TopKPaths",
    "TraceSampler",
    "TraceWarehouse",
    "critical_path_frequencies",
    "export_traces",
    "extract_critical_path",
    "sampler_stream",
    "trace_to_jaeger",
    "traces_from_jaeger",
    "write_traces",
]
