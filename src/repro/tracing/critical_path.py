"""Critical path extraction from request call trees.

A *critical path* of a call graph is the path of maximal duration that
starts with the user request and ends with the final response (paper
§3.1, footnote 1). Under synchronous RPC semantics the parent span
always encloses its children, so the path is built top-down: at each
span, descend into the child whose completion *determines* the parent's
critical timing — the longest child among each group of time-overlapping
(parallel) children; with purely sequential children, the longest child
is the one that dominates the parent's variability.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.tracing.span import Span


@dataclass(frozen=True)
class CriticalPath:
    """An ordered root-to-leaf chain of spans with timing attribution."""

    spans: tuple[Span, ...]

    @property
    def services(self) -> tuple[str, ...]:
        """Service names along the path, root first."""
        return tuple(span.service for span in self.spans)

    @property
    def duration(self) -> float:
        """End-to-end duration of the path (root residence time)."""
        return self.spans[0].duration

    def self_times(self) -> dict[str, float]:
        """Per-service processing time (:math:`PT_{s_i}`) along the path."""
        return {span.service: span.self_time() for span in self.spans}

    def upstream_of(self, service: str) -> tuple[Span, ...]:
        """Spans strictly above ``service`` on the path (its upstreams)."""
        result: list[Span] = []
        for span in self.spans:
            if span.service == service:
                return tuple(result)
            result.append(span)
        raise ValueError(f"{service!r} is not on this critical path")

    def __contains__(self, service: str) -> bool:
        return any(span.service == service for span in self.spans)


def _dominant_child(span: Span) -> Span | None:
    """The child that contributes most to this span's critical timing."""
    finished = [c for c in span.children if c.finished]
    if not finished:
        return None
    # Group children into overlapping (parallel) clusters; the cluster
    # ending last gates the parent's completion, and within it the
    # longest child is critical.
    finished.sort(key=lambda c: c.arrival)
    clusters: list[list[Span]] = []
    cluster_end = -float("inf")
    for child in finished:
        if not clusters or child.arrival >= cluster_end:
            clusters.append([child])
            cluster_end = _t.cast(float, child.departure)
        else:
            clusters[-1].append(child)
            cluster_end = max(cluster_end, _t.cast(float, child.departure))
    last_cluster = clusters[-1]
    return max(last_cluster, key=lambda c: c.duration)


def extract_critical_path(root: Span) -> CriticalPath:
    """Walk the call tree from ``root`` and return its critical path.

    The result is memoized on the root span: a finished trace is
    immutable, and the SCG analysis windows overlap, so deadline
    propagation and localization would otherwise re-walk the same call
    trees every adaptation cycle.
    """
    cached = root._critical_path
    if cached is not None:
        return cached
    if not root.finished:
        raise ValueError("trace is not finished")
    chain = [root]
    node: Span | None = root
    while node is not None:
        node = _dominant_child(node)
        if node is not None:
            chain.append(node)
    path = CriticalPath(spans=tuple(chain))
    root._critical_path = path
    return path


def critical_path_frequencies(
        roots: _t.Iterable[Span]) -> dict[tuple[str, ...], int]:
    """How often each distinct critical path occurred in ``roots``.

    Useful for observing the paper's point that call graphs are dynamic:
    the same request type can exercise different critical paths run to
    run (Fig. 5).
    """
    counts: dict[tuple[str, ...], int] = {}
    for root in roots:
        path = extract_critical_path(root).services
        counts[path] = counts.get(path, 0) + 1
    return counts
