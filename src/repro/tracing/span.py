"""Distributed-tracing spans.

The paper's monitoring module records, per request and per microservice,
the arrival and departure timestamps of every message (OpenTracing-style,
via Jaeger/Zipkin). A :class:`Span` is one service's share of one
request: it carries the queueing/arrival timestamp, the processing-start
timestamp (token granted), the departure timestamp, and parent/child
links forming the request's call tree.

Span ids are deterministic **per run**: the simulation allocates them
from :meth:`repro.sim.engine.Environment.next_span_id`, so two
identically seeded runs in the same process export identical ids (the
module-global counter below only backs spans constructed outside any
environment, e.g. hand-built trees in tests or Jaeger imports).
"""

from __future__ import annotations

import typing as _t
from itertools import count

_span_ids = count(1)


class Span:
    """One service invocation within a request's call tree."""

    __slots__ = (
        "span_id", "trace_id", "service", "replica", "operation",
        "parent", "children", "arrival", "started", "departure",
        "cancelled", "_critical_path",
    )

    def __init__(self, trace_id: int, service: str, operation: str,
                 arrival: float, parent: "Span | None" = None,
                 replica: str | None = None,
                 span_id: int | None = None) -> None:
        self.span_id = span_id if span_id is not None else next(_span_ids)
        #: Memoized critical path when this span is a finished trace
        #: root (see :func:`repro.tracing.extract_critical_path`).
        self._critical_path = None
        self.trace_id = trace_id
        self.service = service
        self.operation = operation
        self.replica = replica
        self.parent = parent
        self.children: list[Span] = []
        #: Request arrival at the service (enqueue time).
        self.arrival = arrival
        #: Processing start (soft-resource token granted).
        self.started: float | None = None
        #: Response departure from the service.
        self.departure: float | None = None
        #: Whether the span was cut short by cancellation (quorum/hedge
        #: straggler interrupts, call timeouts). Cancelled spans still
        #: carry a valid departure — stamped when the interrupt unwinds.
        self.cancelled = False
        if parent is not None:
            parent.children.append(self)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether the span has departed."""
        return self.departure is not None

    @property
    def duration(self) -> float:
        """End-to-end residence time at this service (queue + work +
        downstream waits)."""
        if self.departure is None:
            raise ValueError(f"span {self.span_id} has not finished")
        return self.departure - self.arrival

    @property
    def queue_wait(self) -> float:
        """Time spent waiting for the service's soft resource."""
        if self.started is None:
            return 0.0
        return self.started - self.arrival

    def self_time(self) -> float:
        """Processing time of this service *excluding* downstream waits.

        This is the paper's :math:`PT_{s_i}` (request + response
        processing of service :math:`s_i`): the span's duration minus the
        union of its children's wall-clock intervals (overlapping parallel
        calls are not double-counted).
        """
        total = self.duration
        intervals = sorted(
            (c.arrival, c.departure) for c in self.children
            if c.departure is not None)
        covered = 0.0
        cursor: float | None = None
        end_cursor = 0.0
        for start, end in intervals:
            if cursor is None or start > end_cursor:
                if cursor is not None:
                    covered += end_cursor - cursor
                cursor, end_cursor = start, end
            else:
                end_cursor = max(end_cursor, end)
        if cursor is not None:
            covered += end_cursor - cursor
        return max(0.0, total - covered)

    # ------------------------------------------------------------------
    # Tree helpers
    # ------------------------------------------------------------------
    def walk(self) -> _t.Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        stack = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, service: str) -> "Span | None":
        """First descendant (or self) belonging to ``service``."""
        for span in self.walk():
            if span.service == service:
                return span
        return None

    def depth(self) -> int:
        """Distance from the root span (root = 0)."""
        depth, span = 0, self
        while span.parent is not None:
            depth += 1
            span = span.parent
        return depth

    def __repr__(self) -> str:
        when = (f"[{self.arrival:.4f}..{self.departure:.4f}]"
                if self.departure is not None else f"[{self.arrival:.4f}..)")
        return f"<Span {self.service}/{self.operation} {when}>"
